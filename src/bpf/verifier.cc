#include "src/bpf/verifier.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/bpf/helpers.h"
#include "src/bpf/insn.h"
#include "src/bpf/loop_analysis.h"
#include "src/bpf/verifier_state.h"

namespace concord {
namespace {

// One node in the exploration tree. A node is created at every control
// transfer (jump target, branch arm, loop-header checkpoint); the parent
// chain of the node a path is currently under IS the path, which is how
// rejection messages recover their branch history.
struct ExploreNode {
  int parent = -1;
  std::size_t entry_pc = 0;
  // Outstanding (not yet fully explored) leaf paths in this subtree. When it
  // drops to zero the subtree is complete and a loop-header snapshot here
  // becomes eligible for pruning — never before, so pruning can't justify
  // termination circularly (the kernel's branches==0 discipline).
  std::uint32_t branches = 1;
  bool completed = false;
  // Loop headers only: the abstract state on entry, used for infinite-loop
  // detection (exact repeat vs an in-progress ancestor) and pruning
  // (coverage by a completed exploration).
  std::unique_ptr<AbstractState> snapshot;
};

// A forked path waiting to be explored: its state, the tree node it hangs
// off, and how many times it has taken each back edge so far.
struct PendingPath {
  AbstractState state;
  int node = 0;
  std::vector<std::uint64_t> trips;
};

class VerifierImpl {
 public:
  VerifierImpl(Program& program, const Verifier::Options& options,
               Verifier::Analysis* analysis)
      : program_(program),
        options_(options),
        analysis_(analysis),
        map_lookup_sites_(program.insns.size(), Program::kNoMapSite) {}

  Status Run() {
    CONCORD_RETURN_IF_ERROR(StructuralChecks());
    loops_ = LoopAnalysis::Analyze(program_.insns, imm64_second_);
    header_visits_.assign(program_.insns.size(), 0);
    header_snapshots_.assign(program_.insns.size(), {});
    loop_trip_max_.assign(loops_.back_edges().size(), 0);
    CONCORD_RETURN_IF_ERROR(Explore());
    if (analysis_ != nullptr) {
      analysis_->states_processed = states_processed_;
      for (std::size_t e = 0; e < loops_.back_edges().size(); ++e) {
        Verifier::LoopReport report;
        report.back_edge_pc = loops_.back_edges()[e].from_pc;
        report.header_pc = loops_.back_edges()[e].header_pc;
        report.max_trips = loop_trip_max_[e];
        analysis_->loops.push_back(report);
      }
    }
    return Status::Ok();
  }

  std::uint32_t used_capabilities() const { return used_capabilities_; }
  std::vector<std::int32_t> TakeMapLookupSites() {
    return std::move(map_lookup_sites_);
  }

 private:
  // ---- rejection messages carry the abstract path --------------------------
  std::string PathString(std::size_t cur_pc) const {
    std::vector<std::size_t> pcs;
    for (int n = cur_node_; n >= 0; n = nodes_[n].parent) {
      pcs.push_back(nodes_[n].entry_pc);
    }
    std::reverse(pcs.begin(), pcs.end());
    pcs.push_back(cur_pc);
    // Collapse consecutive repeats (checkpoints at the pc we are already at).
    pcs.erase(std::unique(pcs.begin(), pcs.end()), pcs.end());

    std::string out;
    const std::size_t n = pcs.size();
    constexpr std::size_t kHead = 4;
    constexpr std::size_t kTail = 16;
    for (std::size_t i = 0; i < n; ++i) {
      if (n > kHead + kTail + 1 && i == kHead) {
        out += " -> ...";
        i = n - kTail - 1;
        continue;
      }
      if (!out.empty()) {
        out += " -> ";
      }
      out += std::to_string(pcs[i]);
    }
    return out;
  }

  std::string At(std::size_t pc, const Insn& insn,
                 const std::string& msg) const {
    return "insn " + std::to_string(pc) + " (" + DisassembleInsn(insn) +
           "): " + msg + " [path: " + PathString(pc) + "]";
  }

  // ---- pass 1: instruction-local validity and jump targets -----------------
  Status StructuralChecks() {
    const auto& insns = program_.insns;
    if (insns.empty()) {
      return InvalidArgumentError("empty program");
    }
    if (insns.size() > kMaxProgramInsns) {
      return ResourceExhaustedError("program exceeds " +
                                    std::to_string(kMaxProgramInsns) +
                                    " instructions");
    }
    if (program_.ctx_desc == nullptr) {
      return InvalidArgumentError("program has no context descriptor");
    }

    imm64_second_.assign(insns.size(), false);
    for (std::size_t pc = 0; pc < insns.size(); ++pc) {
      if (imm64_second_[pc]) {
        continue;  // pseudo slot, validated with its first half
      }
      const Insn& insn = insns[pc];
      CONCORD_RETURN_IF_ERROR(CheckInsnShape(pc, insn));
      if (insn.Class() == kBpfClassLd) {
        if (pc + 1 >= insns.size()) {
          return InvalidArgumentError(AtNoPath(pc, insn, "truncated lddw"));
        }
        const Insn& second = insns[pc + 1];
        if (second.opcode != 0 || second.dst != 0 || second.src != 0 ||
            second.off != 0) {
          return InvalidArgumentError(
              AtNoPath(pc, insn, "malformed lddw second slot"));
        }
        imm64_second_[pc + 1] = true;
      }
    }

    // Jump-target validation. Back edges are legal as of verifier v2; the
    // termination argument moved into the abstract interpreter (loop-header
    // state checkpoints + per-path trip budgets).
    for (std::size_t pc = 0; pc < insns.size(); ++pc) {
      if (imm64_second_[pc]) {
        continue;
      }
      const Insn& insn = insns[pc];
      if (insn.Class() != kBpfClassJmp && insn.Class() != kBpfClassJmp32) {
        continue;
      }
      const std::uint8_t op = insn.JmpOp();
      if (op == kBpfExit || op == kBpfCall) {
        continue;
      }
      const std::int64_t target = static_cast<std::int64_t>(pc) + 1 +
                                  static_cast<std::int64_t>(insn.off);
      if (target < 0 || target >= static_cast<std::int64_t>(insns.size())) {
        return InvalidArgumentError(AtNoPath(pc, insn, "jump out of bounds"));
      }
      if (imm64_second_[static_cast<std::size_t>(target)]) {
        return InvalidArgumentError(
            AtNoPath(pc, insn, "jump into the middle of a lddw"));
      }
    }
    return Status::Ok();
  }

  // Structural-pass variant of At(): no exploration has happened yet, so
  // there is no path to report.
  static std::string AtNoPath(std::size_t pc, const Insn& insn,
                              const std::string& msg) {
    return "insn " + std::to_string(pc) + " (" + DisassembleInsn(insn) +
           "): " + msg;
  }

  Status CheckInsnShape(std::size_t pc, const Insn& insn) {
    if (insn.dst >= kBpfNumRegs || insn.src >= kBpfNumRegs) {
      return InvalidArgumentError(AtNoPath(pc, insn, "register out of range"));
    }
    switch (insn.Class()) {
      case kBpfClassAlu64:
      case kBpfClassAlu32: {
        switch (insn.AluOp()) {
          case kBpfAdd:
          case kBpfSub:
          case kBpfMul:
          case kBpfDiv:
          case kBpfOr:
          case kBpfAnd:
          case kBpfLsh:
          case kBpfRsh:
          case kBpfNeg:
          case kBpfMod:
          case kBpfXor:
          case kBpfMov:
          case kBpfArsh:
            break;
          default:
            return InvalidArgumentError(AtNoPath(pc, insn, "unknown ALU op"));
        }
        if ((insn.AluOp() == kBpfDiv || insn.AluOp() == kBpfMod) &&
            !insn.UsesSrcReg() && insn.imm == 0) {
          return InvalidArgumentError(
              AtNoPath(pc, insn, "division by constant zero"));
        }
        if (insn.dst == kBpfReg10) {
          return PermissionDeniedError(
              AtNoPath(pc, insn, "write to frame pointer r10"));
        }
        return Status::Ok();
      }
      case kBpfClassJmp:
      case kBpfClassJmp32: {
        switch (insn.JmpOp()) {
          case kBpfJeq:
          case kBpfJgt:
          case kBpfJge:
          case kBpfJset:
          case kBpfJne:
          case kBpfJsgt:
          case kBpfJsge:
          case kBpfJlt:
          case kBpfJle:
          case kBpfJslt:
          case kBpfJsle:
            return Status::Ok();
          case kBpfJa:
          case kBpfCall:
          case kBpfExit:
            if (insn.Class() == kBpfClassJmp32) {
              return InvalidArgumentError(AtNoPath(
                  pc, insn, "ja/call/exit are not valid in the JMP32 class"));
            }
            return Status::Ok();
          default:
            return InvalidArgumentError(AtNoPath(pc, insn, "unknown JMP op"));
        }
      }
      case kBpfClassLdx:
      case kBpfClassSt:
        if (insn.Mode() != kBpfModeMem) {
          return InvalidArgumentError(
              AtNoPath(pc, insn, "unsupported memory mode"));
        }
        if (ByteWidth(insn.Size()) == 0) {
          return InvalidArgumentError(AtNoPath(pc, insn, "bad access size"));
        }
        return Status::Ok();
      case kBpfClassStx:
        if (insn.Mode() != kBpfModeMem && insn.Mode() != kBpfModeAtomic) {
          return InvalidArgumentError(
              AtNoPath(pc, insn, "unsupported memory mode"));
        }
        if (ByteWidth(insn.Size()) == 0) {
          return InvalidArgumentError(AtNoPath(pc, insn, "bad access size"));
        }
        if (insn.Mode() == kBpfModeAtomic && ByteWidth(insn.Size()) < 4) {
          return InvalidArgumentError(
              AtNoPath(pc, insn, "atomic add requires word or dword size"));
        }
        return Status::Ok();
      case kBpfClassLd:
        if (insn.Mode() != kBpfModeImm || insn.Size() != kBpfSizeDw) {
          return InvalidArgumentError(
              AtNoPath(pc, insn, "only lddw is supported in class LD"));
        }
        if (insn.dst == kBpfReg10) {
          return PermissionDeniedError(
              AtNoPath(pc, insn, "write to frame pointer r10"));
        }
        return Status::Ok();
      default:
        return InvalidArgumentError(
            AtNoPath(pc, insn, "unknown instruction class"));
    }
  }

  // ---- pass 2: abstract interpretation over all paths ----------------------

  int NewNode(int parent, std::size_t entry_pc) {
    ExploreNode node;
    node.parent = parent;
    node.entry_pc = entry_pc;
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size() - 1);
  }

  // A path reached exit (or was pruned): retire it, completing every subtree
  // it was the last outstanding leaf of.
  void CompletePath(int node) {
    for (int n = node; n >= 0;) {
      ExploreNode& e = nodes_[static_cast<std::size_t>(n)];
      if (--e.branches != 0) {
        break;
      }
      e.completed = true;
      n = e.parent;
    }
  }

  Status ChargeState() {
    if (++states_processed_ <= options_.max_states) {
      return Status::Ok();
    }
    std::string msg = "program too complex to verify: explored " +
                      std::to_string(states_processed_) +
                      " abstract states (budget " +
                      std::to_string(options_.max_states) + ")";
    // Attribute the blowup: the hottest loop header, or branch explosion.
    std::size_t hot_pc = 0;
    std::size_t hot_visits = 0;
    for (std::size_t pc = 0; pc < header_visits_.size(); ++pc) {
      if (header_visits_[pc] > hot_visits) {
        hot_visits = header_visits_[pc];
        hot_pc = pc;
      }
    }
    if (hot_visits > 0) {
      msg += "; hottest loop header at insn " + std::to_string(hot_pc) + " (" +
             std::to_string(hot_visits) + " state visits)";
    } else {
      msg += "; no loops involved (branch explosion)";
    }
    return ResourceExhaustedError(msg);
  }

  Status Explore() {
    AbstractState initial;
    initial.pc = 0;
    initial.regs[kBpfReg1].type = RegType::kPtrToCtx;
    initial.regs[kBpfReg10].type = RegType::kPtrToStack;

    NewNode(-1, 0);  // root
    std::vector<PendingPath> pending;
    pending.push_back(PendingPath{
        std::move(initial), 0,
        std::vector<std::uint64_t>(loops_.back_edges().size(), 0)});

    while (!pending.empty()) {
      PendingPath path = std::move(pending.back());
      pending.pop_back();
      CONCORD_RETURN_IF_ERROR(ChargeState());
      CONCORD_RETURN_IF_ERROR(RunPath(std::move(path), pending));
    }
    return Status::Ok();
  }

  // Counts a trip through the back edge at `from_pc` against the per-path
  // budget.
  Status CountTrip(std::size_t from_pc, const Insn& insn,
                   std::vector<std::uint64_t>& trips) {
    const int e = loops_.EdgeIndex(from_pc);
    if (e < 0) {
      return InternalError(At(from_pc, insn, "untracked back edge"));
    }
    const auto idx = static_cast<std::size_t>(e);
    ++trips[idx];
    loop_trip_max_[idx] = std::max(loop_trip_max_[idx], trips[idx]);
    if (trips[idx] > options_.max_loop_trips) {
      return ResourceExhaustedError(
          At(from_pc, insn,
             "loop exceeded " + std::to_string(options_.max_loop_trips) +
                 " iterations (back edge to insn " +
                 std::to_string(loops_.back_edges()[idx].header_pc) + ")"));
    }
    return Status::Ok();
  }

  // Transfers control of the running path to `to_pc` (a resolved jump),
  // recording the transfer as a path node and counting back-edge trips.
  Status Goto(std::size_t from_pc, const Insn& insn, std::size_t to_pc,
              PendingPath& path) {
    if (to_pc <= from_pc) {
      CONCORD_RETURN_IF_ERROR(CountTrip(from_pc, insn, path.trips));
    }
    cur_node_ = NewNode(cur_node_, to_pc);
    path.state.pc = to_pc;
    return Status::Ok();
  }

  // Executes one path until it exits, is pruned, or forks (forked states go
  // to `pending`).
  Status RunPath(PendingPath path, std::vector<PendingPath>& pending) {
    const auto& insns = program_.insns;
    AbstractState& state = path.state;
    cur_node_ = path.node;

    while (true) {
      if (state.pc >= insns.size()) {
        return PermissionDeniedError(
            "control falls off the end of the program [path: " +
            PathString(insns.size()) + "]");
      }
      const std::size_t pc = state.pc;
      const Insn& insn = insns[pc];

      if (loops_.IsHeader(pc)) {
        CONCORD_RETURN_IF_ERROR(ChargeState());
        ++header_visits_[pc];
        // Infinite loop: the exact same abstract state at the same header as
        // an ancestor still being explored means another identical iteration
        // is coming — no progress, ever.
        for (int n = cur_node_; n >= 0; n = nodes_[static_cast<std::size_t>(n)].parent) {
          const ExploreNode& e = nodes_[static_cast<std::size_t>(n)];
          if (e.entry_pc == pc && e.snapshot != nullptr &&
              *e.snapshot == state) {
            return PermissionDeniedError(At(
                pc, insn,
                "infinite loop detected: abstract state repeats at the loop "
                "header with no progress"));
          }
        }
        // Pruning: a completed exploration from a covering state already
        // proved every outcome reachable from here.
        bool pruned = false;
        for (const int idx : header_snapshots_[pc]) {
          const ExploreNode& e = nodes_[static_cast<std::size_t>(idx)];
          if (e.completed && AbstractState::Covers(*e.snapshot, state)) {
            pruned = true;
            break;
          }
        }
        if (pruned) {
          CompletePath(cur_node_);
          return Status::Ok();
        }
        // Checkpoint this visit.
        const int ck = NewNode(cur_node_, pc);
        nodes_[static_cast<std::size_t>(ck)].snapshot =
            std::make_unique<AbstractState>(state);
        header_snapshots_[pc].push_back(ck);
        cur_node_ = ck;
      }

      switch (insn.Class()) {
        case kBpfClassAlu64:
        case kBpfClassAlu32:
          CONCORD_RETURN_IF_ERROR(StepAlu(pc, insn, state));
          state.pc = pc + 1;
          break;
        case kBpfClassLdx:
          CONCORD_RETURN_IF_ERROR(StepLoad(pc, insn, state));
          state.pc = pc + 1;
          break;
        case kBpfClassStx:
        case kBpfClassSt:
          CONCORD_RETURN_IF_ERROR(StepStore(pc, insn, state));
          state.pc = pc + 1;
          break;
        case kBpfClassLd: {
          const std::uint64_t lo = static_cast<std::uint32_t>(insn.imm);
          const std::uint64_t hi =
              static_cast<std::uint32_t>(insns[pc + 1].imm);
          state.regs[insn.dst] = RegState::Known(lo | (hi << 32));
          state.pc = pc + 2;
          break;
        }
        case kBpfClassJmp32: {
          bool path_done = false;
          CONCORD_RETURN_IF_ERROR(
              StepCondJmp(pc, insn, path, pending, path_done));
          if (path_done) {
            return Status::Ok();
          }
          break;
        }
        case kBpfClassJmp: {
          const std::uint8_t op = insn.JmpOp();
          if (op == kBpfExit) {
            const RegState& r0 = state.regs[kBpfReg0];
            if (r0.type == RegType::kUninit) {
              return PermissionDeniedError(
                  At(pc, insn, "exit with uninitialized r0"));
            }
            if (r0.IsPointer()) {
              return PermissionDeniedError(
                  At(pc, insn, "exit would leak a pointer in r0"));
            }
            if (analysis_ != nullptr) {
              RecordExit(r0.var);
            }
            CompletePath(cur_node_);
            return Status::Ok();
          }
          if (op == kBpfCall) {
            CONCORD_RETURN_IF_ERROR(StepCall(pc, insn, state));
            state.pc = pc + 1;
            break;
          }
          if (op == kBpfJa) {
            CONCORD_RETURN_IF_ERROR(
                Goto(pc, insn, static_cast<std::size_t>(pc + 1 + insn.off),
                     path));
            break;
          }
          bool path_done = false;
          CONCORD_RETURN_IF_ERROR(
              StepCondJmp(pc, insn, path, pending, path_done));
          if (path_done) {
            return Status::Ok();
          }
          break;
        }
        default:
          return InternalError(At(pc, insn, "class escaped structural checks"));
      }
    }
  }

  void RecordExit(const ScalarValue& r0) {
    if (!analysis_->has_exit) {
      analysis_->has_exit = true;
      analysis_->r0_exit = r0;
      return;
    }
    ScalarValue& u = analysis_->r0_exit;
    u.umin = std::min(u.umin, r0.umin);
    u.umax = std::max(u.umax, r0.umax);
    u.smin = std::min(u.smin, r0.smin);
    u.smax = std::max(u.smax, r0.smax);
    u.tnum = TnumUnion(u.tnum, r0.tnum);
  }

  Status StepAlu(std::size_t pc, const Insn& insn, AbstractState& state) {
    RegState& dst = state.regs[insn.dst];
    const bool is64 = insn.Class() == kBpfClassAlu64;
    const std::uint8_t op = insn.AluOp();

    RegState src = insn.UsesSrcReg()
                       ? state.regs[insn.src]
                       : RegState::Known(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(insn.imm)));
    if (insn.UsesSrcReg() && src.type == RegType::kUninit) {
      return PermissionDeniedError(
          At(pc, insn, "read of uninitialized register"));
    }

    if (op == kBpfMov) {
      if (!is64 && src.IsPointer()) {
        return PermissionDeniedError(At(pc, insn, "32-bit mov of a pointer"));
      }
      if (is64) {
        dst = src;
      } else {
        dst = RegState::Ranged(ScalarCast32(src.var));
      }
      return Status::Ok();
    }

    if (op == kBpfNeg) {
      if (dst.type == RegType::kUninit) {
        return PermissionDeniedError(
            At(pc, insn, "neg of uninitialized register"));
      }
      if (dst.IsPointer()) {
        return PermissionDeniedError(At(pc, insn, "arithmetic on pointer"));
      }
      dst.var = ScalarAluTransfer(kBpfSub, ScalarValue::Const(0), dst.var,
                                  is64);
      return Status::Ok();
    }

    if (dst.type == RegType::kUninit) {
      return PermissionDeniedError(
          At(pc, insn, "ALU on uninitialized register"));
    }

    // Pointer arithmetic: ptr +/- scalar, 64-bit only. Constant offsets fold
    // into `off`; a ranged scalar becomes (or extends) the variable part,
    // proven in-bounds at the access site by its tracked range.
    if (dst.IsPointer()) {
      if (!is64) {
        return PermissionDeniedError(At(pc, insn, "32-bit ALU on pointer"));
      }
      if (op != kBpfAdd && op != kBpfSub) {
        return PermissionDeniedError(
            At(pc, insn, "only +/- allowed on pointers"));
      }
      if (dst.type == RegType::kMapValueOrNull) {
        return PermissionDeniedError(At(
            pc, insn,
            "arithmetic on possibly-null map value (null-check first)"));
      }
      if (src.IsPointer()) {
        return PermissionDeniedError(At(pc, insn, "pointer +/- pointer"));
      }
      if (src.IsConstScalar()) {
        const auto delta = static_cast<std::int64_t>(src.var.ConstValue());
        dst.off += (op == kBpfAdd) ? delta : -delta;
        return Status::Ok();
      }
      if (dst.type == RegType::kPtrToCtx) {
        return PermissionDeniedError(
            At(pc, insn,
               "context pointer offset must be a compile-time constant"));
      }
      if (op == kBpfSub) {
        return PermissionDeniedError(
            At(pc, insn,
               "variable pointer subtraction is not supported (the offset "
               "must be a compile-time constant)"));
      }
      dst.var = ScalarAluTransfer(kBpfAdd, dst.var, src.var, true);
      return Status::Ok();
    }

    if (src.IsPointer()) {
      return PermissionDeniedError(
          At(pc, insn, "pointer used as scalar operand"));
    }

    dst.var = ScalarAluTransfer(op, dst.var, src.var, is64);
    return Status::Ok();
  }

  Status CheckStackRange(std::size_t pc, const Insn& insn, std::int64_t lo,
                         std::int64_t hi_excl, bool must_be_init,
                         const AbstractState& state) const {
    if (lo < -kBpfStackSize || hi_excl > 0) {
      return PermissionDeniedError(At(pc, insn, "stack access out of bounds"));
    }
    if (must_be_init) {
      for (std::int64_t b = lo; b < hi_excl; ++b) {
        if (!state.stack_init[static_cast<std::size_t>(b + kBpfStackSize)]) {
          return PermissionDeniedError(
              At(pc, insn, "read of uninitialized stack byte"));
        }
      }
    }
    return Status::Ok();
  }

  // The variable part of a pointer, range-validated so that fixed + var
  // arithmetic below cannot overflow. Stack offsets may be negative; map
  // value offsets may not.
  Status CheckVarPart(std::size_t pc, const Insn& insn, const ScalarValue& var,
                      bool allow_negative) const {
    constexpr std::int64_t kLimit = 1 << 20;  // far beyond any valid object
    if (var.smax > kLimit || var.smin < (allow_negative ? -kLimit : 0)) {
      return PermissionDeniedError(
          At(pc, insn,
             allow_negative
                 ? "pointer variable offset is not proven in range"
                 : "pointer variable offset may be negative or is unbounded"));
    }
    return Status::Ok();
  }

  // Alignment of fixed + variable offset: every bit below the access width
  // must be known, and zero, in fixed + tnum(var).
  static bool AlignedAccess(std::int64_t fixed, const ScalarValue& var,
                            int width) {
    const Tnum t =
        TnumAdd(Tnum::Const(static_cast<std::uint64_t>(fixed)), var.tnum);
    const auto low = static_cast<std::uint64_t>(width - 1);
    return ((t.value | t.mask) & low) == 0;
  }

  Status StepLoad(std::size_t pc, const Insn& insn, AbstractState& state) {
    const RegState& base = state.regs[insn.src];
    const int width = ByteWidth(insn.Size());
    const std::int64_t fixed = base.off + insn.off;

    switch (base.type) {
      case RegType::kPtrToCtx: {
        // Context pointers never acquire a variable part (rejected in
        // StepAlu), so this is an exact-offset check as in v1.
        if (fixed < 0 || (fixed % width) != 0) {
          return PermissionDeniedError(
              At(pc, insn, "misaligned context access"));
        }
        const ContextField* field = program_.ctx_desc->FindField(
            static_cast<std::uint32_t>(fixed),
            static_cast<std::uint32_t>(width));
        if (field == nullptr) {
          return PermissionDeniedError(
              At(pc, insn, "context load does not match any declared field"));
        }
        state.regs[insn.dst] = RegState::Scalar();
        return Status::Ok();
      }
      case RegType::kPtrToStack: {
        CONCORD_RETURN_IF_ERROR(
            CheckVarPart(pc, insn, base.var, /*allow_negative=*/true));
        if (!AlignedAccess(fixed, base.var, width)) {
          return PermissionDeniedError(At(pc, insn, "misaligned stack access"));
        }
        CONCORD_RETURN_IF_ERROR(CheckStackRange(
            pc, insn, fixed + base.var.smin, fixed + base.var.smax + width,
            /*must_be_init=*/true, state));
        state.regs[insn.dst] = RegState::Scalar();
        return Status::Ok();
      }
      case RegType::kPtrToMapValue: {
        BpfMap* map = program_.maps[base.map_index];
        CONCORD_RETURN_IF_ERROR(
            CheckVarPart(pc, insn, base.var, /*allow_negative=*/false));
        const std::int64_t lo = fixed + base.var.smin;
        const std::int64_t hi = fixed + base.var.smax + width;
        if (lo < 0 || hi > static_cast<std::int64_t>(map->value_size()) ||
            !AlignedAccess(fixed, base.var, width)) {
          return PermissionDeniedError(
              At(pc, insn, "map value access out of bounds"));
        }
        RecordMapAccess(pc, base.map_index,
                        Verifier::MapAccessSite::Kind::kLoad);
        state.regs[insn.dst] = RegState::Scalar();
        return Status::Ok();
      }
      case RegType::kMapValueOrNull:
        return PermissionDeniedError(At(
            pc, insn,
            "dereference of possibly-null map value (null-check first)"));
      case RegType::kScalar:
      case RegType::kUninit:
        return PermissionDeniedError(At(pc, insn, "load from non-pointer"));
    }
    return InternalError("unreachable");
  }

  Status StepStore(std::size_t pc, const Insn& insn, AbstractState& state) {
    const RegState& base = state.regs[insn.dst];
    const int width = ByteWidth(insn.Size());
    const std::int64_t fixed = base.off + insn.off;

    if (insn.Class() == kBpfClassStx) {
      const RegState& src = state.regs[insn.src];
      if (src.type == RegType::kUninit) {
        return PermissionDeniedError(
            At(pc, insn, "store of uninitialized register"));
      }
      if (src.IsPointer()) {
        return PermissionDeniedError(
            At(pc, insn, "pointer spill to memory is not supported"));
      }
    }

    const bool is_atomic =
        insn.Class() == kBpfClassStx && insn.Mode() == kBpfModeAtomic;
    switch (base.type) {
      case RegType::kPtrToCtx: {
        if (is_atomic) {
          return PermissionDeniedError(
              At(pc, insn, "atomic add to context is not allowed"));
        }
        if (fixed < 0 || (fixed % width) != 0) {
          return PermissionDeniedError(
              At(pc, insn, "misaligned context access"));
        }
        const ContextField* field = program_.ctx_desc->FindField(
            static_cast<std::uint32_t>(fixed),
            static_cast<std::uint32_t>(width));
        if (field == nullptr) {
          return PermissionDeniedError(
              At(pc, insn, "context store does not match any declared field"));
        }
        if (!field->writable) {
          return PermissionDeniedError(
              At(pc, insn,
                 "store to read-only context field '" + field->name + "'"));
        }
        if (analysis_ != nullptr) {
          analysis_->writes_ctx = true;
        }
        return Status::Ok();
      }
      case RegType::kPtrToStack: {
        CONCORD_RETURN_IF_ERROR(
            CheckVarPart(pc, insn, base.var, /*allow_negative=*/true));
        if (!AlignedAccess(fixed, base.var, width)) {
          return PermissionDeniedError(At(pc, insn, "misaligned stack access"));
        }
        // Atomic add reads before writing: the bytes must already be
        // initialized. A store through a variable offset must also find the
        // whole reachable range initialized, because we cannot tell which
        // bytes it actually wrote (it never *sets* init bits).
        const bool exact = base.var.IsConst();
        const std::int64_t lo = fixed + base.var.smin;
        const std::int64_t hi = fixed + base.var.smax + width;
        CONCORD_RETURN_IF_ERROR(CheckStackRange(
            pc, insn, lo, hi, /*must_be_init=*/is_atomic || !exact, state));
        if (exact) {
          const std::int64_t at = fixed +
                                  static_cast<std::int64_t>(
                                      base.var.ConstValue());
          for (std::int64_t b = at; b < at + width; ++b) {
            state.stack_init[static_cast<std::size_t>(b + kBpfStackSize)] =
                true;
          }
        }
        return Status::Ok();
      }
      case RegType::kPtrToMapValue: {
        BpfMap* map = program_.maps[base.map_index];
        CONCORD_RETURN_IF_ERROR(
            CheckVarPart(pc, insn, base.var, /*allow_negative=*/false));
        const std::int64_t lo = fixed + base.var.smin;
        const std::int64_t hi = fixed + base.var.smax + width;
        if (lo < 0 || hi > static_cast<std::int64_t>(map->value_size()) ||
            !AlignedAccess(fixed, base.var, width)) {
          return PermissionDeniedError(
              At(pc, insn, "map value access out of bounds"));
        }
        RecordMapAccess(pc, base.map_index,
                        is_atomic ? Verifier::MapAccessSite::Kind::kAtomicAdd
                                  : Verifier::MapAccessSite::Kind::kStore);
        return Status::Ok();
      }
      case RegType::kMapValueOrNull:
        return PermissionDeniedError(At(
            pc, insn,
            "store through possibly-null map value (null-check first)"));
      case RegType::kScalar:
      case RegType::kUninit:
        return PermissionDeniedError(At(pc, insn, "store to non-pointer"));
    }
    return InternalError("unreachable");
  }

  void RecordMapAccess(std::size_t pc, std::uint32_t map_index,
                       Verifier::MapAccessSite::Kind kind) {
    if (analysis_ == nullptr) {
      return;
    }
    for (const auto& site : analysis_->map_access_sites) {
      if (site.pc == pc && site.map_index == map_index && site.kind == kind) {
        return;
      }
    }
    analysis_->map_access_sites.push_back({pc, map_index, kind});
  }

  Status StepCall(std::size_t pc, const Insn& insn, AbstractState& state) {
    const HelperDef* helper =
        HelperRegistry::Global().Find(static_cast<std::uint32_t>(insn.imm));
    if (helper == nullptr) {
      return PermissionDeniedError(At(pc, insn, "unknown helper"));
    }
    if ((helper->capabilities & ~options_.allowed_capabilities) != 0) {
      return PermissionDeniedError(
          At(pc, insn,
             "helper '" + helper->name +
                 "' is not permitted at this attach point"));
    }

    std::uint32_t pending_map_index = 0;
    bool have_map_index = false;
    for (int i = 0; i < 5; ++i) {
      const RegState& arg = state.regs[i + 1];
      switch (helper->args[i]) {
        case HelperArgKind::kNone:
          break;
        case HelperArgKind::kScalar:
          if (arg.type != RegType::kScalar) {
            return PermissionDeniedError(
                At(pc, insn, "helper arg " + std::to_string(i + 1) +
                                 " must be an initialized scalar"));
          }
          break;
        case HelperArgKind::kConstMapIndex: {
          if (!arg.IsConstScalar()) {
            return PermissionDeniedError(At(
                pc, insn, "map index argument must be a compile-time constant"));
          }
          const std::uint64_t value = arg.var.ConstValue();
          if (value >= program_.maps.size()) {
            return PermissionDeniedError(
                At(pc, insn, "map index " + std::to_string(value) +
                                 " out of range (program declares " +
                                 std::to_string(program_.maps.size()) +
                                 " maps)"));
          }
          pending_map_index = static_cast<std::uint32_t>(value);
          have_map_index = true;
          break;
        }
        case HelperArgKind::kStackKeyPtr:
        case HelperArgKind::kStackValuePtr: {
          if (!have_map_index) {
            return InternalError(
                At(pc, insn, "helper signature: stack ptr without map index"));
          }
          if (arg.type != RegType::kPtrToStack) {
            return PermissionDeniedError(
                At(pc, insn, "helper arg " + std::to_string(i + 1) +
                                 " must point into the stack"));
          }
          if (!arg.var.IsConst()) {
            return PermissionDeniedError(
                At(pc, insn,
                   "helper stack pointer must have a compile-time constant "
                   "offset"));
          }
          BpfMap* map = program_.maps[pending_map_index];
          const int size = static_cast<int>(
              helper->args[i] == HelperArgKind::kStackKeyPtr
                  ? map->key_size()
                  : map->value_size());
          const std::int64_t at =
              arg.off + static_cast<std::int64_t>(arg.var.ConstValue());
          CONCORD_RETURN_IF_ERROR(
              CheckStackRange(pc, insn, at, at + size, true, state));
          break;
        }
      }
    }

    used_capabilities_ |= helper->capabilities;

    // Record the constant map index each lookup site resolves to; the JIT
    // inlines per-CPU array lookups only for sites where every verified path
    // agrees on the map.
    if (static_cast<std::uint32_t>(insn.imm) == kHelperMapLookupElem &&
        have_map_index) {
      std::int32_t& site = map_lookup_sites_[pc];
      const std::int32_t index = static_cast<std::int32_t>(pending_map_index);
      if (site == Program::kNoMapSite) {
        site = index;
      } else if (site != index) {
        site = Program::kPolymorphicMapSite;
      }
    }

    if (analysis_ != nullptr) {
      if (std::find(analysis_->helpers_called.begin(),
                    analysis_->helpers_called.end(),
                    static_cast<std::uint32_t>(insn.imm)) ==
          analysis_->helpers_called.end()) {
        analysis_->helpers_called.push_back(
            static_cast<std::uint32_t>(insn.imm));
      }
      if ((helper->capabilities & kCapMapWrite) != 0) {
        analysis_->writes_map = true;
      }
      for (int r = 6; r <= 9; ++r) {
        if (state.regs[r].type == RegType::kPtrToCtx) {
          analysis_->ctx_ptr_across_call_pcs.push_back(pc);
          break;
        }
      }
    }

    // Call clobbers r1-r5; r0 takes the helper's return type.
    for (int r = 1; r <= 5; ++r) {
      state.regs[r] = RegState::Uninit();
    }
    if (helper->ret == HelperRetKind::kMapValueOrNull) {
      RegState r0;
      r0.type = RegType::kMapValueOrNull;
      r0.map_index = pending_map_index;
      state.regs[kBpfReg0] = r0;
    } else {
      state.regs[kBpfReg0] = RegState::Scalar();
    }
    return Status::Ok();
  }

  // Forks the running path at a two-armed branch: the taken arm is queued,
  // the fall-through arm continues in place.
  Status Fork(std::size_t pc, const Insn& insn, PendingPath& path,
              AbstractState&& taken, std::size_t taken_pc,
              std::size_t fall_pc, std::vector<PendingPath>& pending) {
    ExploreNode& parent = nodes_[static_cast<std::size_t>(cur_node_)];
    ++parent.branches;
    const int taken_node = NewNode(cur_node_, taken_pc);
    const int fall_node = NewNode(cur_node_, fall_pc);

    PendingPath forked{std::move(taken), taken_node, path.trips};
    forked.state.pc = taken_pc;
    if (taken_pc <= pc) {
      CONCORD_RETURN_IF_ERROR(CountTrip(pc, insn, forked.trips));
    }
    pending.push_back(std::move(forked));

    cur_node_ = fall_node;
    path.state.pc = fall_pc;
    return Status::Ok();
  }

  Status StepCondJmp(std::size_t pc, const Insn& insn, PendingPath& path,
                     std::vector<PendingPath>& pending, bool& path_done) {
    AbstractState& state = path.state;
    const std::uint8_t op = insn.JmpOp();
    const RegState& dst = state.regs[insn.dst];
    if (dst.type == RegType::kUninit) {
      return PermissionDeniedError(
          At(pc, insn, "branch on uninitialized register"));
    }
    RegState src = insn.UsesSrcReg()
                       ? state.regs[insn.src]
                       : RegState::Known(static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(insn.imm)));
    if (insn.UsesSrcReg() && src.type == RegType::kUninit) {
      return PermissionDeniedError(
          At(pc, insn, "branch on uninitialized register"));
    }

    const std::size_t taken_pc = pc + 1 + insn.off;
    const std::size_t fall_pc = pc + 1;
    const bool is32 = insn.Class() == kBpfClassJmp32;

    // Null-check refinement for MAP_VALUE_OR_NULL. Only the 64-bit compare
    // counts: a 32-bit view of a pointer being zero proves nothing.
    const bool null_test = !is32 && (op == kBpfJeq || op == kBpfJne) &&
                           !insn.UsesSrcReg() && insn.imm == 0 &&
                           dst.type == RegType::kMapValueOrNull;
    if (null_test) {
      RegState non_null;
      non_null.type = RegType::kPtrToMapValue;
      non_null.map_index = dst.map_index;

      AbstractState taken = state;
      if (op == kBpfJeq) {  // taken => null
        taken.regs[insn.dst] = RegState::Known(0);
        state.regs[insn.dst] = non_null;
      } else {  // JNE: taken => non-null
        taken.regs[insn.dst] = non_null;
        state.regs[insn.dst] = RegState::Known(0);
      }
      return Fork(pc, insn, path, std::move(taken), taken_pc, fall_pc,
                  pending);
    }

    if (dst.IsPointer() || src.IsPointer()) {
      return PermissionDeniedError(
          At(pc, insn, "comparisons involving pointers are not allowed"));
    }

    // Decide the branch from the tracked ranges where possible; this prunes
    // dead arms and is what terminates counter-bounded loops.
    const BranchOutcome outcome = EvalBranch(op, is32, dst.var, src.var);
    if (outcome == BranchOutcome::kAlways) {
      return Goto(pc, insn, taken_pc, path);
    }
    if (outcome == BranchOutcome::kNever) {
      state.pc = fall_pc;
      return Status::Ok();
    }

    // Both arms look feasible: refine each under its branch assumption. A
    // refinement contradiction (tnum vs interval) kills that arm after all.
    AbstractState taken = state;
    ScalarValue taken_imm = src.var;
    ScalarValue fall_imm = src.var;
    const bool taken_ok = RefineBranch(
        op, /*taken=*/true, is32, taken.regs[insn.dst].var,
        insn.UsesSrcReg() ? taken.regs[insn.src].var : taken_imm);
    const bool fall_ok = RefineBranch(
        op, /*taken=*/false, is32, state.regs[insn.dst].var,
        insn.UsesSrcReg() ? state.regs[insn.src].var : fall_imm);

    if (taken_ok && fall_ok) {
      return Fork(pc, insn, path, std::move(taken), taken_pc, fall_pc,
                  pending);
    }
    if (taken_ok) {
      state = std::move(taken);
      return Goto(pc, insn, taken_pc, path);
    }
    if (fall_ok) {
      state.pc = fall_pc;
      return Status::Ok();
    }
    // Neither arm is feasible: the ranges reaching this compare are
    // contradictory, i.e. the instruction is unreachable. Retire the path.
    CompletePath(cur_node_);
    path_done = true;
    return Status::Ok();
  }

  Program& program_;
  const Verifier::Options& options_;
  Verifier::Analysis* analysis_;
  std::vector<std::int32_t> map_lookup_sites_;
  std::vector<bool> imm64_second_;
  LoopAnalysis loops_;
  std::uint32_t used_capabilities_ = 0;

  std::vector<ExploreNode> nodes_;
  int cur_node_ = 0;
  std::size_t states_processed_ = 0;
  std::vector<std::size_t> header_visits_;
  std::vector<std::vector<int>> header_snapshots_;  // per-pc checkpoint nodes
  std::vector<std::uint64_t> loop_trip_max_;
};

}  // namespace

Status Verifier::Verify(Program& program, const Options& options,
                        Analysis* analysis) {
  program.verified = false;
  program.used_capabilities = 0;
  program.map_lookup_sites.clear();
  VerifierImpl impl(program, options, analysis);
  CONCORD_RETURN_IF_ERROR(impl.Run());
  program.used_capabilities = impl.used_capabilities();
  program.map_lookup_sites = impl.TakeMapLookupSites();
  program.verified = true;
  return Status::Ok();
}

}  // namespace concord
