// Instruction set of the policy virtual machine.
//
// The encoding deliberately mirrors classic eBPF (pre-5.3, i.e. without
// bounded-loop support): 8-bit opcode = 3-bit class + source bit + operation,
// two 4-bit register fields, a 16-bit signed jump/memory offset and a 32-bit
// immediate. Mirroring eBPF keeps the verifier discussion in DESIGN.md
// honest — the safety argument ("no back edges, tracked register types,
// bounded stack") is the same one the paper leans on.
//
// Differences from kernel eBPF, all simplifications:
//  - maps are referenced by *index into the program's declared map table*
//    (a constant scalar argument) instead of LD_IMM64 with a map fd;
//  - no tail calls, no subprograms; of the atomic family only
//    fetch-less BPF_ADD (xadd) is supported;
//  - BPF_END (byteswap) is omitted.

#ifndef SRC_BPF_INSN_H_
#define SRC_BPF_INSN_H_

#include <cstdint>
#include <string>

namespace concord {

// --- opcode classes (low 3 bits) -------------------------------------------
inline constexpr std::uint8_t kBpfClassLd = 0x00;
inline constexpr std::uint8_t kBpfClassLdx = 0x01;
inline constexpr std::uint8_t kBpfClassSt = 0x02;
inline constexpr std::uint8_t kBpfClassStx = 0x03;
inline constexpr std::uint8_t kBpfClassAlu32 = 0x04;
inline constexpr std::uint8_t kBpfClassJmp = 0x05;
inline constexpr std::uint8_t kBpfClassJmp32 = 0x06;  // compares 32-bit views
inline constexpr std::uint8_t kBpfClassAlu64 = 0x07;

// --- source bit (ALU / JMP) -------------------------------------------------
inline constexpr std::uint8_t kBpfSrcK = 0x00;  // use immediate
inline constexpr std::uint8_t kBpfSrcX = 0x08;  // use src register

// --- ALU operations (high 4 bits) ------------------------------------------
inline constexpr std::uint8_t kBpfAdd = 0x00;
inline constexpr std::uint8_t kBpfSub = 0x10;
inline constexpr std::uint8_t kBpfMul = 0x20;
inline constexpr std::uint8_t kBpfDiv = 0x30;
inline constexpr std::uint8_t kBpfOr = 0x40;
inline constexpr std::uint8_t kBpfAnd = 0x50;
inline constexpr std::uint8_t kBpfLsh = 0x60;
inline constexpr std::uint8_t kBpfRsh = 0x70;
inline constexpr std::uint8_t kBpfNeg = 0x80;
inline constexpr std::uint8_t kBpfMod = 0x90;
inline constexpr std::uint8_t kBpfXor = 0xa0;
inline constexpr std::uint8_t kBpfMov = 0xb0;
inline constexpr std::uint8_t kBpfArsh = 0xc0;

// --- JMP operations (high 4 bits) ------------------------------------------
inline constexpr std::uint8_t kBpfJa = 0x00;
inline constexpr std::uint8_t kBpfJeq = 0x10;
inline constexpr std::uint8_t kBpfJgt = 0x20;
inline constexpr std::uint8_t kBpfJge = 0x30;
inline constexpr std::uint8_t kBpfJset = 0x40;
inline constexpr std::uint8_t kBpfJne = 0x50;
inline constexpr std::uint8_t kBpfJsgt = 0x60;
inline constexpr std::uint8_t kBpfJsge = 0x70;
inline constexpr std::uint8_t kBpfCall = 0x80;
inline constexpr std::uint8_t kBpfExit = 0x90;
inline constexpr std::uint8_t kBpfJlt = 0xa0;
inline constexpr std::uint8_t kBpfJle = 0xb0;
inline constexpr std::uint8_t kBpfJslt = 0xc0;
inline constexpr std::uint8_t kBpfJsle = 0xd0;

// --- memory access size (bits 3-4) -----------------------------------------
inline constexpr std::uint8_t kBpfSizeW = 0x00;   // 4 bytes
inline constexpr std::uint8_t kBpfSizeH = 0x08;   // 2 bytes
inline constexpr std::uint8_t kBpfSizeB = 0x10;   // 1 byte
inline constexpr std::uint8_t kBpfSizeDw = 0x18;  // 8 bytes

// --- memory access mode (high 3 bits) ---------------------------------------
inline constexpr std::uint8_t kBpfModeImm = 0x00;  // LD_IMM64 (two slots)
inline constexpr std::uint8_t kBpfModeMem = 0x60;
inline constexpr std::uint8_t kBpfModeAtomic = 0xc0;  // STX only: *(dst+off) += src

// --- registers ---------------------------------------------------------------
inline constexpr std::uint8_t kBpfReg0 = 0;   // return value / helper result
inline constexpr std::uint8_t kBpfReg1 = 1;   // context pointer on entry; helper arg 1
inline constexpr std::uint8_t kBpfReg10 = 10; // frame pointer (read-only)
inline constexpr int kBpfNumRegs = 11;
inline constexpr int kBpfStackSize = 512;

struct Insn {
  std::uint8_t opcode = 0;
  std::uint8_t dst : 4 = 0;  // destination register
  std::uint8_t src : 4 = 0;  // source register
  std::int16_t off = 0;      // jump displacement or memory offset
  std::int32_t imm = 0;

  std::uint8_t Class() const { return opcode & 0x07; }
  std::uint8_t AluOp() const { return opcode & 0xf0; }
  std::uint8_t JmpOp() const { return opcode & 0xf0; }
  std::uint8_t Size() const { return opcode & 0x18; }
  std::uint8_t Mode() const {
    return static_cast<std::uint8_t>(opcode & 0xe0);
  }
  bool UsesSrcReg() const { return (opcode & kBpfSrcX) != 0; }
};

static_assert(sizeof(Insn) == 8, "instructions must be 8 bytes, as in eBPF");

// Number of bytes for a memory-size field.
inline int ByteWidth(std::uint8_t size_field) {
  switch (size_field) {
    case kBpfSizeB:
      return 1;
    case kBpfSizeH:
      return 2;
    case kBpfSizeW:
      return 4;
    case kBpfSizeDw:
      return 8;
    default:
      return 0;
  }
}

// --- convenience constructors (used by tests and the builder) ---------------

inline Insn AluImm(std::uint8_t op, std::uint8_t dst, std::int32_t imm,
                   bool is64 = true) {
  return Insn{static_cast<std::uint8_t>(op | kBpfSrcK |
                                        (is64 ? kBpfClassAlu64 : kBpfClassAlu32)),
              dst, 0, 0, imm};
}

inline Insn AluReg(std::uint8_t op, std::uint8_t dst, std::uint8_t src,
                   bool is64 = true) {
  return Insn{static_cast<std::uint8_t>(op | kBpfSrcX |
                                        (is64 ? kBpfClassAlu64 : kBpfClassAlu32)),
              dst, src, 0, 0};
}

inline Insn MovImm(std::uint8_t dst, std::int32_t imm) {
  return AluImm(kBpfMov, dst, imm);
}

inline Insn MovReg(std::uint8_t dst, std::uint8_t src) {
  return AluReg(kBpfMov, dst, src);
}

inline Insn JmpImm(std::uint8_t op, std::uint8_t dst, std::int32_t imm,
                   std::int16_t off, bool is64 = true) {
  return Insn{static_cast<std::uint8_t>(op | kBpfSrcK |
                                        (is64 ? kBpfClassJmp : kBpfClassJmp32)),
              dst, 0, off, imm};
}

inline Insn JmpReg(std::uint8_t op, std::uint8_t dst, std::uint8_t src,
                   std::int16_t off, bool is64 = true) {
  return Insn{static_cast<std::uint8_t>(op | kBpfSrcX |
                                        (is64 ? kBpfClassJmp : kBpfClassJmp32)),
              dst, src, off, 0};
}

inline Insn Jump(std::int16_t off) {
  return Insn{static_cast<std::uint8_t>(kBpfJa | kBpfClassJmp), 0, 0, off, 0};
}

inline Insn LoadMem(std::uint8_t size, std::uint8_t dst, std::uint8_t src,
                    std::int16_t off) {
  return Insn{static_cast<std::uint8_t>(kBpfModeMem | size | kBpfClassLdx), dst, src,
              off, 0};
}

inline Insn StoreMemReg(std::uint8_t size, std::uint8_t dst, std::uint8_t src,
                        std::int16_t off) {
  return Insn{static_cast<std::uint8_t>(kBpfModeMem | size | kBpfClassStx), dst, src,
              off, 0};
}

inline Insn StoreMemImm(std::uint8_t size, std::uint8_t dst, std::int16_t off,
                        std::int32_t imm) {
  return Insn{static_cast<std::uint8_t>(kBpfModeMem | size | kBpfClassSt), dst, 0,
              off, imm};
}

// Atomic fetch-less add: *(size*)(dst + off) += src. Word and double-word
// only, as in eBPF's BPF_ATOMIC | BPF_ADD.
inline Insn AtomicAdd(std::uint8_t size, std::uint8_t dst, std::uint8_t src,
                      std::int16_t off) {
  return Insn{static_cast<std::uint8_t>(kBpfModeAtomic | size | kBpfClassStx), dst,
              src, off, 0};
}

inline Insn Call(std::int32_t helper_id) {
  return Insn{static_cast<std::uint8_t>(kBpfCall | kBpfClassJmp), 0, 0, 0, helper_id};
}

inline Insn Exit() {
  return Insn{static_cast<std::uint8_t>(kBpfExit | kBpfClassJmp), 0, 0, 0, 0};
}

// LD_IMM64 occupies two instruction slots; this returns the first, the second
// must be a pseudo-insn whose imm holds the upper 32 bits.
inline Insn LoadImm64First(std::uint8_t dst, std::uint64_t value) {
  return Insn{static_cast<std::uint8_t>(kBpfModeImm | kBpfSizeDw | kBpfClassLd), dst,
              0, 0, static_cast<std::int32_t>(value & 0xffffffffu)};
}
inline Insn LoadImm64Second(std::uint64_t value) {
  return Insn{0, 0, 0, 0, static_cast<std::int32_t>(value >> 32)};
}

// Renders one instruction as human-readable text (best effort; used in
// verifier diagnostics and the disassembler).
std::string DisassembleInsn(const Insn& insn);

}  // namespace concord

#endif  // SRC_BPF_INSN_H_
