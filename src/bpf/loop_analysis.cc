#include "src/bpf/loop_analysis.h"

namespace concord {

LoopAnalysis LoopAnalysis::Analyze(const std::vector<Insn>& insns,
                                   const std::vector<bool>& imm64_second) {
  LoopAnalysis la;
  la.is_header_.assign(insns.size(), false);
  la.edge_at_.assign(insns.size(), -1);

  for (std::size_t pc = 0; pc < insns.size(); ++pc) {
    if (imm64_second[pc]) {
      continue;
    }
    const Insn& insn = insns[pc];
    if (insn.Class() != kBpfClassJmp && insn.Class() != kBpfClassJmp32) {
      continue;
    }
    const std::uint8_t op = insn.JmpOp();
    if (op == kBpfExit || op == kBpfCall) {
      continue;
    }
    const std::int64_t target = static_cast<std::int64_t>(pc) + 1 +
                                static_cast<std::int64_t>(insn.off);
    if (target < 0 || target > static_cast<std::int64_t>(pc)) {
      continue;  // forward edge (or out of bounds, rejected elsewhere)
    }
    const auto header = static_cast<std::size_t>(target);
    la.edge_at_[pc] = static_cast<int>(la.back_edges_.size());
    la.back_edges_.push_back(BackEdge{pc, header});
    la.is_header_[header] = true;
  }
  return la;
}

}  // namespace concord
