#include "src/bpf/helpers.h"

#include <cstdio>

#include "src/base/fault.h"
#include "src/base/time.h"
#include "src/bpf/program.h"
#include "src/topology/thread_context.h"

namespace concord {
namespace {

// --- core helper implementations -------------------------------------------
// Arguments arrive as raw u64s; pointer arguments are host addresses into the
// VM stack, already validated by the verifier.

std::uint64_t HelperKtimeGetNs(std::uint64_t, std::uint64_t, std::uint64_t,
                               std::uint64_t, std::uint64_t, VmEnv&) {
  return MonotonicNowNs();
}

std::uint64_t HelperGetSmpProcessorId(std::uint64_t, std::uint64_t, std::uint64_t,
                                      std::uint64_t, std::uint64_t, VmEnv&) {
  return Self().vcpu;
}

std::uint64_t HelperGetNumaNodeId(std::uint64_t, std::uint64_t, std::uint64_t,
                                  std::uint64_t, std::uint64_t, VmEnv&) {
  return Self().socket;
}

std::uint64_t HelperGetCurrentTaskId(std::uint64_t, std::uint64_t, std::uint64_t,
                                     std::uint64_t, std::uint64_t, VmEnv&) {
  return Self().task_id;
}

std::uint64_t HelperGetTaskPriority(std::uint64_t, std::uint64_t, std::uint64_t,
                                    std::uint64_t, std::uint64_t, VmEnv&) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(Self().priority.load(std::memory_order_relaxed)));
}

std::uint64_t HelperGetTaskClass(std::uint64_t, std::uint64_t, std::uint64_t,
                                 std::uint64_t, std::uint64_t, VmEnv&) {
  return Self().task_class.load(std::memory_order_relaxed);
}

std::uint64_t HelperGetLocksHeld(std::uint64_t, std::uint64_t, std::uint64_t,
                                 std::uint64_t, std::uint64_t, VmEnv&) {
  return Self().locks_held.load(std::memory_order_relaxed);
}

std::uint64_t HelperGetCsEwmaNs(std::uint64_t, std::uint64_t, std::uint64_t,
                                std::uint64_t, std::uint64_t, VmEnv&) {
  return Self().cs_length_ewma_ns.load(std::memory_order_relaxed);
}

// Task-indexed context reads: the hypervisor/scheduler-semantics use case
// (§3.1.1) — policies reason about *other* waiters' scheduling state, so
// these take a task id instead of reading the calling thread.
ThreadContext* TaskAt(std::uint64_t task_id) {
  ThreadRegistry& registry = ThreadRegistry::Global();
  if (task_id >= registry.num_registered()) {
    return nullptr;
  }
  return &registry.Get(static_cast<std::uint32_t>(task_id));
}

std::uint64_t HelperGetTaskQuotaNs(std::uint64_t task_id, std::uint64_t,
                                   std::uint64_t, std::uint64_t, std::uint64_t,
                                   VmEnv&) {
  ThreadContext* ctx = TaskAt(task_id);
  return ctx == nullptr ? 0
                        : ctx->time_quota_ns.load(std::memory_order_relaxed);
}

std::uint64_t HelperGetTaskPreemptible(std::uint64_t task_id, std::uint64_t,
                                       std::uint64_t, std::uint64_t,
                                       std::uint64_t, VmEnv&) {
  ThreadContext* ctx = TaskAt(task_id);
  return ctx == nullptr ? 1
                        : ctx->preemptible.load(std::memory_order_relaxed);
}

BpfMap* MapAt(VmEnv& env, std::uint64_t index) {
  if (env.program == nullptr || index >= env.program->maps.size()) {
    return nullptr;
  }
  return env.program->maps[static_cast<std::size_t>(index)];
}

std::uint64_t HelperMapLookupElem(std::uint64_t map_index, std::uint64_t key_ptr,
                                  std::uint64_t, std::uint64_t, std::uint64_t,
                                  VmEnv& env) {
  if (CONCORD_FAULT_POINT("bpf.map_lookup")) {
    return 0;  // injected miss: policies must tolerate a null map value
  }
  BpfMap* map = MapAt(env, map_index);
  if (map == nullptr) {
    return 0;
  }
  return reinterpret_cast<std::uint64_t>(
      map->Lookup(reinterpret_cast<const void*>(key_ptr)));
}

std::uint64_t HelperMapUpdateElem(std::uint64_t map_index, std::uint64_t key_ptr,
                                  std::uint64_t value_ptr, std::uint64_t,
                                  std::uint64_t, VmEnv& env) {
  if (CONCORD_FAULT_POINT("bpf.helper")) {
    return static_cast<std::uint64_t>(-1);
  }
  BpfMap* map = MapAt(env, map_index);
  if (map == nullptr) {
    return static_cast<std::uint64_t>(-1);
  }
  // Program-side update: per-CPU maps write only the calling CPU's slot
  // (kernel BPF contract); single-instance maps fall through to Update.
  Status status = map->UpdateThisCpu(reinterpret_cast<const void*>(key_ptr),
                                     reinterpret_cast<const void*>(value_ptr));
  return status.ok() ? 0 : static_cast<std::uint64_t>(-1);
}

std::uint64_t HelperMapDeleteElem(std::uint64_t map_index, std::uint64_t key_ptr,
                                  std::uint64_t, std::uint64_t, std::uint64_t,
                                  VmEnv& env) {
  if (CONCORD_FAULT_POINT("bpf.helper")) {
    return static_cast<std::uint64_t>(-1);
  }
  BpfMap* map = MapAt(env, map_index);
  if (map == nullptr) {
    return static_cast<std::uint64_t>(-1);
  }
  Status status = map->Delete(reinterpret_cast<const void*>(key_ptr));
  return status.ok() ? 0 : static_cast<std::uint64_t>(-1);
}

std::uint64_t HelperTracePrintk(std::uint64_t tag, std::uint64_t v1,
                                std::uint64_t v2, std::uint64_t, std::uint64_t,
                                VmEnv&) {
  std::fprintf(stderr, "[bpf-trace tag=%llu] %llu %llu\n",
               static_cast<unsigned long long>(tag),
               static_cast<unsigned long long>(v1),
               static_cast<unsigned long long>(v2));
  return 0;
}

}  // namespace

HelperRegistry& HelperRegistry::Global() {
  static HelperRegistry* registry = new HelperRegistry();
  return *registry;
}

HelperRegistry::HelperRegistry() { RegisterCoreHelpers(); }

Status HelperRegistry::Register(HelperDef def) {
  if (def.fn == nullptr) {
    return InvalidArgumentError("helper '" + def.name + "' has no implementation");
  }
  if (Find(def.id) != nullptr) {
    return InvalidArgumentError("helper id " + std::to_string(def.id) +
                                " already registered");
  }
  if (FindByName(def.name) != nullptr) {
    return InvalidArgumentError("helper name '" + def.name + "' already registered");
  }
  helpers_.push_back(std::move(def));
  return Status::Ok();
}

const HelperDef* HelperRegistry::Find(std::uint32_t id) const {
  for (const auto& helper : helpers_) {
    if (helper.id == id) {
      return &helper;
    }
  }
  return nullptr;
}

const HelperDef* HelperRegistry::FindByName(const std::string& name) const {
  for (const auto& helper : helpers_) {
    if (helper.name == name) {
      return &helper;
    }
  }
  return nullptr;
}

void HelperRegistry::ResetExtensionsForTest() {
  std::vector<HelperDef> kept;
  for (auto& helper : helpers_) {
    if (helper.id < kFirstConcordHelper) {
      kept.push_back(std::move(helper));
    }
  }
  helpers_ = std::move(kept);
}

void HelperRegistry::RegisterCoreHelpers() {
  const HelperArgKind kNoArgs[5] = {HelperArgKind::kNone, HelperArgKind::kNone,
                                    HelperArgKind::kNone, HelperArgKind::kNone,
                                    HelperArgKind::kNone};

  auto add = [this](std::uint32_t id, const char* name, HelperFn fn,
                    const HelperArgKind (&args)[5], HelperRetKind ret,
                    std::uint32_t caps) {
    HelperDef def;
    def.id = id;
    def.name = name;
    def.fn = fn;
    for (int i = 0; i < 5; ++i) {
      def.args[i] = args[i];
    }
    def.ret = ret;
    def.capabilities = caps;
    helpers_.push_back(std::move(def));
  };

  add(kHelperKtimeGetNs, "ktime_get_ns", HelperKtimeGetNs, kNoArgs,
      HelperRetKind::kScalar, kCapRead);
  add(kHelperGetSmpProcessorId, "get_smp_processor_id", HelperGetSmpProcessorId,
      kNoArgs, HelperRetKind::kScalar, kCapRead);
  add(kHelperGetNumaNodeId, "get_numa_node_id", HelperGetNumaNodeId, kNoArgs,
      HelperRetKind::kScalar, kCapRead);
  add(kHelperGetCurrentTaskId, "get_current_task_id", HelperGetCurrentTaskId,
      kNoArgs, HelperRetKind::kScalar, kCapRead);
  add(kHelperGetTaskPriority, "get_task_priority", HelperGetTaskPriority, kNoArgs,
      HelperRetKind::kScalar, kCapRead);
  add(kHelperGetTaskClass, "get_task_class", HelperGetTaskClass, kNoArgs,
      HelperRetKind::kScalar, kCapRead);
  add(kHelperGetLocksHeld, "get_locks_held", HelperGetLocksHeld, kNoArgs,
      HelperRetKind::kScalar, kCapRead);
  add(kHelperGetCsEwmaNs, "get_cs_ewma_ns", HelperGetCsEwmaNs, kNoArgs,
      HelperRetKind::kScalar, kCapRead);
  {
    const HelperArgKind args[5] = {HelperArgKind::kScalar, HelperArgKind::kNone,
                                   HelperArgKind::kNone, HelperArgKind::kNone,
                                   HelperArgKind::kNone};
    add(kHelperGetTaskQuotaNs, "get_task_quota_ns", HelperGetTaskQuotaNs, args,
        HelperRetKind::kScalar, kCapRead);
    add(kHelperGetTaskPreemptible, "get_task_preemptible",
        HelperGetTaskPreemptible, args, HelperRetKind::kScalar, kCapRead);
  }

  {
    const HelperArgKind args[5] = {HelperArgKind::kConstMapIndex,
                                   HelperArgKind::kStackKeyPtr, HelperArgKind::kNone,
                                   HelperArgKind::kNone, HelperArgKind::kNone};
    add(kHelperMapLookupElem, "map_lookup_elem", HelperMapLookupElem, args,
        HelperRetKind::kMapValueOrNull, kCapRead | kCapMapRead);
  }
  {
    const HelperArgKind args[5] = {
        HelperArgKind::kConstMapIndex, HelperArgKind::kStackKeyPtr,
        HelperArgKind::kStackValuePtr, HelperArgKind::kNone, HelperArgKind::kNone};
    add(kHelperMapUpdateElem, "map_update_elem", HelperMapUpdateElem, args,
        HelperRetKind::kScalar, kCapRead | kCapMapRead | kCapMapWrite);
  }
  {
    const HelperArgKind args[5] = {HelperArgKind::kConstMapIndex,
                                   HelperArgKind::kStackKeyPtr, HelperArgKind::kNone,
                                   HelperArgKind::kNone, HelperArgKind::kNone};
    add(kHelperMapDeleteElem, "map_delete_elem", HelperMapDeleteElem, args,
        HelperRetKind::kScalar, kCapRead | kCapMapRead | kCapMapWrite);
  }
  {
    const HelperArgKind args[5] = {HelperArgKind::kScalar, HelperArgKind::kScalar,
                                   HelperArgKind::kScalar, HelperArgKind::kNone,
                                   HelperArgKind::kNone};
    add(kHelperTracePrintk, "trace_printk", HelperTracePrintk, args,
        HelperRetKind::kScalar, kCapRead | kCapTrace);
  }
}

}  // namespace concord
