// Helper function registry.
//
// Helpers are the only way a policy program touches the world beyond its
// context struct and stack, so this registry is the security boundary the
// verifier enforces: each helper declares an argument signature (checked
// statically) and a capability mask (matched against what the attach point
// allows — e.g. a `cmp_node` hook refuses helpers that mutate lock state,
// mirroring Table 1's "cmp_node only returns the decision").

#ifndef SRC_BPF_HELPERS_H_
#define SRC_BPF_HELPERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace concord {

struct Program;  // forward (program.h includes this header)

// Capabilities a helper requires / an attach point grants.
enum HelperCapability : std::uint32_t {
  kCapRead = 1u << 0,        // read-only observation (time, ids, context)
  kCapMapRead = 1u << 1,     // map lookups
  kCapMapWrite = 1u << 2,    // map updates/deletes
  kCapTrace = 1u << 3,       // emit trace records
  kCapLockMutate = 1u << 4,  // mutate waiter state (park/boost decisions)
};

enum class HelperArgKind : std::uint8_t {
  kNone,          // argument unused
  kScalar,        // any scalar value
  kConstMapIndex, // compile-time-constant index into the program's map table
  kStackKeyPtr,   // pointer to initialized stack bytes of the map's key size;
                  // must follow a kConstMapIndex argument
  kStackValuePtr, // same, but the map's value size
};

enum class HelperRetKind : std::uint8_t {
  kScalar,
  kMapValueOrNull,  // pointer into the map named by the kConstMapIndex arg
};

// Runtime environment handed to helper implementations.
struct VmEnv {
  const Program* program = nullptr;  // for map table access
  void* hook_data = nullptr;         // attach-point-specific side channel
  std::uint32_t cpu = 0;             // calling vCPU, set once per invocation;
                                     // read by the JIT's inline per-CPU
                                     // map-lookup fast path
};

using HelperFn = std::uint64_t (*)(std::uint64_t a1, std::uint64_t a2,
                                   std::uint64_t a3, std::uint64_t a4,
                                   std::uint64_t a5, VmEnv& env);

struct HelperDef {
  std::uint32_t id = 0;
  std::string name;
  HelperFn fn = nullptr;
  HelperArgKind args[5] = {HelperArgKind::kNone, HelperArgKind::kNone,
                           HelperArgKind::kNone, HelperArgKind::kNone,
                           HelperArgKind::kNone};
  HelperRetKind ret = HelperRetKind::kScalar;
  std::uint32_t capabilities = kCapRead;
};

// Well-known helper ids. Concord registers lock-specific helpers starting at
// kFirstConcordHelper.
enum WellKnownHelper : std::uint32_t {
  kHelperKtimeGetNs = 1,
  kHelperGetSmpProcessorId = 2,
  kHelperGetNumaNodeId = 3,
  kHelperGetCurrentTaskId = 4,
  kHelperGetTaskPriority = 5,
  kHelperGetTaskClass = 6,
  kHelperGetLocksHeld = 7,
  kHelperGetCsEwmaNs = 8,
  kHelperGetTaskQuotaNs = 9,       // (task_id) -> remaining vCPU quota
  kHelperGetTaskPreemptible = 10,  // (task_id) -> 1 if the vCPU may be scheduled out
  kHelperMapLookupElem = 16,
  kHelperMapUpdateElem = 17,
  kHelperMapDeleteElem = 18,
  kHelperTracePrintk = 24,
  kFirstConcordHelper = 64,
};

class HelperRegistry {
 public:
  // The global registry, pre-populated with the core helpers above.
  static HelperRegistry& Global();

  Status Register(HelperDef def);
  const HelperDef* Find(std::uint32_t id) const;
  const HelperDef* FindByName(const std::string& name) const;

  // Test-only: drops helpers with id >= kFirstConcordHelper.
  void ResetExtensionsForTest();

 private:
  HelperRegistry();

  void RegisterCoreHelpers();

  std::vector<HelperDef> helpers_;
};

}  // namespace concord

#endif  // SRC_BPF_HELPERS_H_
