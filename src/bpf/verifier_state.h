// Abstract machine state for the range-tracking verifier.
//
// Verifier v2 tracks every register as one of the pointer types inherited
// from v1 plus, for scalars (and for the *variable part* of pointer
// offsets), a product domain of
//   - an unsigned interval [umin, umax],
//   - a signed interval   [smin, smax],
//   - a tnum (known bits, src/bpf/tnum.h).
// The three views are kept mutually consistent by ScalarValue::Sync(), the
// analogue of the kernel's __update_reg_bounds / __reg_deduce_bounds /
// __reg_bound_offset trio. Branch refinement narrows the views on both arms
// of a conditional, which is what lets a `jlt r2, 8, loop` back edge
// constant-fold after finitely many abstract iterations — the entire
// bounded-loop argument rests on these bounds making monotone progress.

#ifndef SRC_BPF_VERIFIER_STATE_H_
#define SRC_BPF_VERIFIER_STATE_H_

#include <bitset>
#include <cstdint>
#include <string>

#include "src/bpf/insn.h"
#include "src/bpf/tnum.h"

namespace concord {

enum class RegType : std::uint8_t {
  kUninit,
  kScalar,
  kPtrToCtx,
  kPtrToStack,      // offset relative to the frame pointer (<= 0)
  kPtrToMapValue,   // null-checked map value pointer
  kMapValueOrNull,  // map_lookup_elem result before the null check
};

// A set of 64-bit values: intervals in both signednesses plus known bits.
struct ScalarValue {
  std::uint64_t umin = 0;
  std::uint64_t umax = ~0ull;
  std::int64_t smin = INT64_MIN;
  std::int64_t smax = INT64_MAX;
  Tnum tnum = Tnum::Unknown();

  static ScalarValue Unknown() { return ScalarValue{}; }
  static ScalarValue Const(std::uint64_t v) {
    ScalarValue s;
    s.umin = s.umax = v;
    s.smin = s.smax = static_cast<std::int64_t>(v);
    s.tnum = Tnum::Const(v);
    return s;
  }
  // Any value representable in 32 bits (the ALU32 result set).
  static ScalarValue Unknown32() {
    ScalarValue s;
    s.umin = 0;
    s.umax = 0xffffffffull;
    s.smin = 0;
    s.smax = 0xffffffffll;
    s.tnum = Tnum{0, 0xffffffffull};
    return s;
  }

  bool IsConst() const { return umin == umax && tnum.IsConst(); }
  std::uint64_t ConstValue() const { return umin; }

  // Re-derives each view from the others; returns false if the views
  // contradict (the state is unreachable — a dead branch arm).
  bool Sync();

  // True iff every value in `b` is also in `a`.
  static bool Covers(const ScalarValue& a, const ScalarValue& b);

  bool operator==(const ScalarValue& other) const {
    return umin == other.umin && umax == other.umax && smin == other.smin &&
           smax == other.smax && tnum == other.tnum;
  }

  std::string ToString() const;
};

// Sound transfer functions; `is64 == false` models the ALU32 semantics
// (operate on the 32-bit views, zero-extend the result).
ScalarValue ScalarAluTransfer(std::uint8_t op, const ScalarValue& dst,
                              const ScalarValue& src, bool is64);

// The value set after truncation to the low 32 bits (32-bit mov semantics).
ScalarValue ScalarCast32(const ScalarValue& v);

// Branch refinement: narrows `dst` (and `src`, for reg-reg compares) under
// the assumption that `op` evaluated to `taken`. Returns false if the
// assumption contradicts the tracked ranges (arm is unreachable).
bool RefineBranch(std::uint8_t op, bool taken, bool is32, ScalarValue& dst,
                  ScalarValue& src);

// Three-valued branch evaluation from the tracked ranges.
enum class BranchOutcome : std::uint8_t { kUnknown, kAlways, kNever };
BranchOutcome EvalBranch(std::uint8_t op, bool is32, const ScalarValue& dst,
                         const ScalarValue& src);

struct RegState {
  RegType type = RegType::kUninit;
  // Scalars: the tracked value set. Pointers: the *variable* part of the
  // offset (Const(0) for exactly-known pointers).
  ScalarValue var = ScalarValue::Const(0);
  std::int64_t off = 0;  // pointers: fixed offset from the base
  std::uint32_t map_index = 0;

  static RegState Uninit() {
    RegState r;
    r.type = RegType::kUninit;
    return r;
  }
  static RegState Scalar() {
    RegState r;
    r.type = RegType::kScalar;
    r.var = ScalarValue::Unknown();
    return r;
  }
  static RegState Known(std::uint64_t v) {
    RegState r;
    r.type = RegType::kScalar;
    r.var = ScalarValue::Const(v);
    return r;
  }
  static RegState Ranged(const ScalarValue& v) {
    RegState r;
    r.type = RegType::kScalar;
    r.var = v;
    return r;
  }

  bool IsPointer() const {
    return type == RegType::kPtrToCtx || type == RegType::kPtrToStack ||
           type == RegType::kPtrToMapValue || type == RegType::kMapValueOrNull;
  }
  bool IsConstScalar() const {
    return type == RegType::kScalar && var.IsConst();
  }
  // Pointer with no variable offset component.
  bool HasFixedOffset() const { return var.IsConst() && var.ConstValue() == 0; }

  bool operator==(const RegState& other) const {
    return type == other.type && off == other.off &&
           map_index == other.map_index && var == other.var;
  }

  // True iff every concrete register state described by `b` is described by
  // `a` (so exploring `a` covered `b`).
  static bool Covers(const RegState& a, const RegState& b);

  std::string ToString() const;
};

struct AbstractState {
  std::size_t pc = 0;
  RegState regs[kBpfNumRegs];
  std::bitset<kBpfStackSize> stack_init;

  bool operator==(const AbstractState& other) const;

  // State-equivalence for pruning: `a` covers `b` iff the verdicts reachable
  // from `b` are a subset of those explored from `a`.
  static bool Covers(const AbstractState& a, const AbstractState& b);
};

}  // namespace concord

#endif  // SRC_BPF_VERIFIER_STATE_H_
