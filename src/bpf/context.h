// Context descriptors: the typed view a policy program gets of its hook's
// argument struct.
//
// Each Concord hook (cmp_node, skip_shuffle, ...) passes the program a
// pointer to a plain C struct in R1. The verifier only admits loads/stores
// that land exactly on a declared field, with the declared width, and only
// stores to fields marked writable — this is the moral equivalent of the
// kernel's `is_valid_access` callback per program type.

#ifndef SRC_BPF_CONTEXT_H_
#define SRC_BPF_CONTEXT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace concord {

struct ContextField {
  std::string name;
  std::uint32_t offset = 0;
  std::uint32_t width = 0;  // 1, 2, 4 or 8
  bool writable = false;
};

class ContextDescriptor {
 public:
  ContextDescriptor(std::string name, std::uint32_t size,
                    std::vector<ContextField> fields)
      : name_(std::move(name)), size_(size), fields_(std::move(fields)) {}

  const std::string& name() const { return name_; }
  std::uint32_t size() const { return size_; }
  const std::vector<ContextField>& fields() const { return fields_; }

  // Returns the field covering [offset, offset+width) exactly, or nullptr.
  const ContextField* FindField(std::uint32_t offset, std::uint32_t width) const {
    for (const auto& field : fields_) {
      if (field.offset == offset && field.width == width) {
        return &field;
      }
    }
    return nullptr;
  }

  const ContextField* FindFieldByName(const std::string& name) const {
    for (const auto& field : fields_) {
      if (field.name == name) {
        return &field;
      }
    }
    return nullptr;
  }

 private:
  std::string name_;
  std::uint32_t size_;
  std::vector<ContextField> fields_;
};

}  // namespace concord

#endif  // SRC_BPF_CONTEXT_H_
