// BPF map objects: the state store available to policies.
//
// Policies are stateless bytecode; anything they want to remember between
// hook invocations (per-thread statistics, reader/writer vote counts,
// configured thresholds pushed from userspace) lives in maps, exactly as with
// kernel eBPF. Four map types cover every use case in the paper:
//
//   kArray       fixed-size array indexed by u32 — config knobs, counters
//   kHash        fixed-capacity hash table with arbitrary fixed-size keys
//   kPerCpuArray array with one value slot per virtual CPU — contention-free
//                counters for profiling policies
//   kPerCpuHash  hash table whose values are per-CPU — contention-free
//                keyed counters (per-task-class, per-socket, ...)
//
// Lifetime/pointer model mirrors the kernel: Lookup returns a pointer into
// map-owned storage that remains valid memory for the map's lifetime (entry
// slots are pooled and never freed individually), so a program may read a
// value concurrently with a Delete without a use-after-free — it may simply
// observe stale data, as in RCU-managed kernel maps.
//
// Per-CPU update contract (mirrors kernel BPF): a *program-side* update
// (map_update_elem from bytecode, routed through UpdateThisCpu) writes only
// the calling CPU's slot; a *userspace/control-plane* Update() writes the
// value into every CPU's slot, so a config knob pushed over RPC is visible
// no matter which vCPU the policy later runs on. Read-side aggregation
// (AggregateU64 / DumpAllCpus) uses relaxed 64-bit atomic loads and the
// write side uses matching atomic stores, so cross-CPU sums are never torn
// even while policies are counting.

#ifndef SRC_BPF_MAPS_H_
#define SRC_BPF_MAPS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "src/base/status.h"

namespace concord {

enum class MapType {
  kArray,
  kHash,
  kPerCpuArray,
  kPerCpuHash,
};

const char* MapTypeName(MapType type);

// Reverse of MapTypeName (for `.map` directives in policy sources); false
// when `name` matches no map type.
bool MapTypeFromName(const std::string& name, MapType* out);

class BpfMap {
 public:
  BpfMap(MapType type, std::string name, std::uint32_t key_size,
         std::uint32_t value_size, std::uint32_t max_entries)
      : type_(type),
        name_(std::move(name)),
        key_size_(key_size),
        value_size_(value_size),
        max_entries_(max_entries) {}
  virtual ~BpfMap() = default;

  BpfMap(const BpfMap&) = delete;
  BpfMap& operator=(const BpfMap&) = delete;

  MapType type() const { return type_; }
  const std::string& name() const { return name_; }
  std::uint32_t key_size() const { return key_size_; }
  std::uint32_t value_size() const { return value_size_; }
  std::uint32_t max_entries() const { return max_entries_; }

  // True for the per-CPU map kinds (one value slot per vCPU).
  bool is_per_cpu() const {
    return type_ == MapType::kPerCpuArray || type_ == MapType::kPerCpuHash;
  }
  // Number of per-value CPU slots; 1 for single-instance maps.
  virtual std::uint32_t num_cpus() const { return 1; }

  // Returns a pointer to the value for `key`, or nullptr if absent. For
  // per-CPU maps this is the calling thread's vCPU slot. The pointed-to
  // storage stays valid memory for the map's lifetime.
  virtual void* Lookup(const void* key) = 0;

  // Inserts or overwrites. Control-plane semantics: per-CPU maps write the
  // value into every CPU's slot (kernel BPF userspace-update contract).
  virtual Status Update(const void* key, const void* value) = 0;

  // Program-side insert/overwrite: per-CPU maps write only the calling
  // CPU's slot. Single-instance maps behave exactly like Update. This is
  // what the map_update_elem helper calls.
  virtual Status UpdateThisCpu(const void* key, const void* value) {
    return Update(key, value);
  }

  virtual Status Delete(const void* key) = 0;

  // Approximate number of live entries (exact for array maps).
  virtual std::uint32_t Size() const = 0;

  // Visits every live entry (key bytes, value bytes). For per-CPU maps the
  // visitor runs once per (key, cpu) pair — the same key appears num_cpus()
  // times, in CPU order — so generic dump paths see every slot. Intended
  // for userspace controller code (dumping a policy's state); takes the
  // map's internal lock where one exists, so do not call from a policy hook.
  using EntryVisitor = std::function<void(const void* key, const void* value)>;
  virtual void ForEach(const EntryVisitor& visit) = 0;

  // --- typed conveniences for userspace control code ----------------------
  template <typename K, typename V>
  Status UpdateTyped(const K& key, const V& value) {
    static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>);
    CONCORD_CHECK(sizeof(K) == key_size_ && sizeof(V) == value_size_);
    return Update(&key, &value);
  }

  template <typename K, typename V>
  bool LookupTyped(const K& key, V* out) {
    static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>);
    CONCORD_CHECK(sizeof(K) == key_size_ && sizeof(V) == value_size_);
    void* value = Lookup(&key);
    if (value == nullptr) {
      return false;
    }
    std::memcpy(out, value, sizeof(V));
    return true;
  }

 protected:
  const MapType type_;
  const std::string name_;
  const std::uint32_t key_size_;
  const std::uint32_t value_size_;
  const std::uint32_t max_entries_;
};

// Array map: key is u32 index; all slots always exist (zero-initialized).
class ArrayMap : public BpfMap {
 public:
  ArrayMap(std::string name, std::uint32_t value_size, std::uint32_t max_entries);

  void* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;
  Status Delete(const void* key) override;  // zeroes the slot (kernel semantics)
  std::uint32_t Size() const override { return max_entries_; }
  void ForEach(const EntryVisitor& visit) override;

  // Direct slot access for userspace control code; index < max_entries.
  void* SlotAt(std::uint32_t index);

 private:
  std::vector<std::uint8_t> storage_;
};

// Per-CPU array map: Lookup resolves to the calling thread's vCPU slot.
class PerCpuArrayMap : public BpfMap {
 public:
  PerCpuArrayMap(std::string name, std::uint32_t value_size,
                 std::uint32_t max_entries, std::uint32_t num_cpus);

  void* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;      // all CPUs
  Status UpdateThisCpu(const void* key, const void* value) override;
  Status Delete(const void* key) override;  // zeroes the slot on every CPU
  std::uint32_t Size() const override { return max_entries_; }
  // Visits every (key, cpu) pair: each index is visited num_cpus times.
  void ForEach(const EntryVisitor& visit) override;

  // Cross-CPU access for aggregation in userspace control code.
  void* SlotAt(std::uint32_t cpu, std::uint32_t index);
  std::uint32_t num_cpus() const override { return num_cpus_; }

  // Sums slot `index` across CPUs as u64 lanes (CHECKs value_size >= 8).
  // Values wider than 8 bytes aggregate their first u64 lane. Loads are
  // relaxed atomics, so the sum is never torn against policy writers.
  std::uint64_t AggregateU64(std::uint32_t index);

  // Back-compat spelling of AggregateU64 (pre-aggregation-API callers).
  std::uint64_t SumU64(std::uint32_t index) { return AggregateU64(index); }

  // Visits (cpu, value bytes) for slot `index` on every CPU.
  using CpuVisitor = std::function<void(std::uint32_t cpu, const void* value)>;
  void DumpAllCpus(std::uint32_t index, const CpuVisitor& visit);

  // Layout accessors for the JIT's inline lookup fast path: the slot for
  // (cpu, index) lives at slot_base() + (cpu * max_entries + index) * stride.
  // The base pointer is stable for the map's lifetime.
  const std::uint8_t* slot_base() const { return storage_.data(); }
  std::uint32_t stride() const { return stride_; }

 private:
  const std::uint32_t num_cpus_;
  const std::uint32_t stride_;  // value_size rounded up to a cache line
  std::vector<std::uint8_t> storage_;
};

// Shared chained-bucket machinery for the two hash kinds: fixed capacity,
// pooled entries (pointer stability), one TTAS spinlock per map (policies
// execute on lock slow paths where a short map-internal spin is negligible;
// contention on a single-instance policy map is itself a policy bug the
// profiler would surface — which is exactly what kPerCpuHash is for).
class HashMapBase : public BpfMap {
 public:
  HashMapBase(MapType type, std::string name, std::uint32_t key_size,
              std::uint32_t value_size, std::uint32_t max_entries,
              std::uint32_t value_slots, std::uint32_t value_stride);
  ~HashMapBase() override;

  std::uint32_t Size() const override {
    return live_.load(std::memory_order_relaxed);
  }

 protected:
  struct Entry {
    Entry* next = nullptr;
    std::uint64_t hash = 0;
    // key bytes (rounded up to 8 so values stay u64-aligned), then
    // value_slots value regions of value_stride bytes each
    std::uint8_t data[];  // NOLINT: flexible array member idiom
  };

  Entry* AllocEntry();
  void FreeEntry(Entry* entry);
  std::uint64_t HashKey(const void* key) const;
  std::uint8_t* KeyOf(Entry* e) const { return e->data; }
  // Value region for slot `slot` (slot 0 for single-instance maps).
  std::uint8_t* ValueOf(Entry* e, std::uint32_t slot = 0) const {
    return e->data + value_offset_ +
           static_cast<std::size_t>(slot) * value_stride_;
  }

  // Finds the live entry for `key` under the lock; nullptr when absent.
  Entry* FindLocked(const void* key, std::uint64_t hash);
  // Inserts a zero-valued entry for `key`; nullptr when the pool is empty.
  Entry* InsertLocked(const void* key, std::uint64_t hash);

  void Lock();
  void Unlock();

  // Key region rounded up to 8 bytes so every value slot is u64-aligned
  // regardless of key_size (direct value loads from JIT'd programs are
  // UBSan-clean).
  const std::uint32_t value_offset_;
  const std::uint32_t value_stride_;
  const std::uint32_t value_slots_;
  const std::uint32_t num_buckets_;
  std::vector<Entry*> buckets_;
  std::vector<void*> pool_allocations_;
  Entry* free_list_ = nullptr;
  std::atomic<std::uint32_t> live_{0};
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

// Hash map: one value per key.
class HashMap : public HashMapBase {
 public:
  HashMap(std::string name, std::uint32_t key_size, std::uint32_t value_size,
          std::uint32_t max_entries);

  void* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;
  Status Delete(const void* key) override;
  void ForEach(const EntryVisitor& visit) override;
};

// Per-CPU hash map: one value slot per vCPU per key. Lookup resolves to the
// calling thread's vCPU slot; chain traversal still takes the map spinlock,
// but counter mutation through the returned pointer is contention-free —
// the hot-path pattern is lookup-once then xadd into the per-CPU slot.
class PerCpuHashMap : public HashMapBase {
 public:
  PerCpuHashMap(std::string name, std::uint32_t key_size,
                std::uint32_t value_size, std::uint32_t max_entries,
                std::uint32_t num_cpus);

  void* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;      // all CPUs
  Status UpdateThisCpu(const void* key, const void* value) override;
  Status Delete(const void* key) override;
  // Visits every (key, cpu) pair, like PerCpuArrayMap::ForEach.
  void ForEach(const EntryVisitor& visit) override;

  std::uint32_t num_cpus() const override { return num_cpus_; }

  // Sums `key`'s value across CPUs as u64 lanes (CHECKs value_size >= 8);
  // 0 when the key is absent. Relaxed atomic loads — never torn.
  std::uint64_t AggregateU64(const void* key);

  // Visits (cpu, value bytes) for `key` on every CPU; false when absent.
  using CpuVisitor = std::function<void(std::uint32_t cpu, const void* value)>;
  bool DumpAllCpus(const void* key, const CpuVisitor& visit);

 private:
  std::uint32_t ThisCpu() const;

  const std::uint32_t num_cpus_;
};

// Creates a map of the given type. `num_cpus` is only used by per-CPU maps.
StatusOr<std::unique_ptr<BpfMap>> CreateMap(MapType type, std::string name,
                                            std::uint32_t key_size,
                                            std::uint32_t value_size,
                                            std::uint32_t max_entries,
                                            std::uint32_t num_cpus);

}  // namespace concord

#endif  // SRC_BPF_MAPS_H_
