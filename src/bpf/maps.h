// BPF map objects: the state store available to policies.
//
// Policies are stateless bytecode; anything they want to remember between
// hook invocations (per-thread statistics, reader/writer vote counts,
// configured thresholds pushed from userspace) lives in maps, exactly as with
// kernel eBPF. Three map types cover every use case in the paper:
//
//   kArray       fixed-size array indexed by u32 — config knobs, counters
//   kHash        fixed-capacity hash table with arbitrary fixed-size keys
//   kPerCpuArray array with one value slot per virtual CPU — contention-free
//                counters for profiling policies
//
// Lifetime/pointer model mirrors the kernel: Lookup returns a pointer into
// map-owned storage that remains valid memory for the map's lifetime (entry
// slots are pooled and never freed individually), so a program may read a
// value concurrently with a Delete without a use-after-free — it may simply
// observe stale data, as in RCU-managed kernel maps.

#ifndef SRC_BPF_MAPS_H_
#define SRC_BPF_MAPS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "src/base/status.h"

namespace concord {

enum class MapType {
  kArray,
  kHash,
  kPerCpuArray,
};

const char* MapTypeName(MapType type);

class BpfMap {
 public:
  BpfMap(MapType type, std::string name, std::uint32_t key_size,
         std::uint32_t value_size, std::uint32_t max_entries)
      : type_(type),
        name_(std::move(name)),
        key_size_(key_size),
        value_size_(value_size),
        max_entries_(max_entries) {}
  virtual ~BpfMap() = default;

  BpfMap(const BpfMap&) = delete;
  BpfMap& operator=(const BpfMap&) = delete;

  MapType type() const { return type_; }
  const std::string& name() const { return name_; }
  std::uint32_t key_size() const { return key_size_; }
  std::uint32_t value_size() const { return value_size_; }
  std::uint32_t max_entries() const { return max_entries_; }

  // Returns a pointer to the value for `key`, or nullptr if absent.
  // The pointed-to storage stays valid memory for the map's lifetime.
  virtual void* Lookup(const void* key) = 0;

  // Inserts or overwrites.
  virtual Status Update(const void* key, const void* value) = 0;

  virtual Status Delete(const void* key) = 0;

  // Approximate number of live entries (exact for array maps).
  virtual std::uint32_t Size() const = 0;

  // Visits every live entry (key bytes, value bytes). Intended for userspace
  // controller code (dumping a policy's state); takes the map's internal
  // lock where one exists, so do not call from a policy hook.
  using EntryVisitor = std::function<void(const void* key, const void* value)>;
  virtual void ForEach(const EntryVisitor& visit) = 0;

  // --- typed conveniences for userspace control code ----------------------
  template <typename K, typename V>
  Status UpdateTyped(const K& key, const V& value) {
    static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>);
    CONCORD_CHECK(sizeof(K) == key_size_ && sizeof(V) == value_size_);
    return Update(&key, &value);
  }

  template <typename K, typename V>
  bool LookupTyped(const K& key, V* out) {
    static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>);
    CONCORD_CHECK(sizeof(K) == key_size_ && sizeof(V) == value_size_);
    void* value = Lookup(&key);
    if (value == nullptr) {
      return false;
    }
    std::memcpy(out, value, sizeof(V));
    return true;
  }

 protected:
  const MapType type_;
  const std::string name_;
  const std::uint32_t key_size_;
  const std::uint32_t value_size_;
  const std::uint32_t max_entries_;
};

// Array map: key is u32 index; all slots always exist (zero-initialized).
class ArrayMap : public BpfMap {
 public:
  ArrayMap(std::string name, std::uint32_t value_size, std::uint32_t max_entries);

  void* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;
  Status Delete(const void* key) override;  // zeroes the slot (kernel semantics)
  std::uint32_t Size() const override { return max_entries_; }
  void ForEach(const EntryVisitor& visit) override;

  // Direct slot access for userspace control code; index < max_entries.
  void* SlotAt(std::uint32_t index);

 private:
  std::vector<std::uint8_t> storage_;
};

// Per-CPU array map: Lookup resolves to the calling thread's vCPU slot.
class PerCpuArrayMap : public BpfMap {
 public:
  PerCpuArrayMap(std::string name, std::uint32_t value_size,
                 std::uint32_t max_entries, std::uint32_t num_cpus);

  void* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;  // current CPU slot
  Status Delete(const void* key) override;
  std::uint32_t Size() const override { return max_entries_; }
  // Visits every (cpu-local) slot: key = index, value = this CPU 0's slot;
  // use SlotAt for cross-CPU access. ForEach visits CPU 0's view.
  void ForEach(const EntryVisitor& visit) override;

  // Cross-CPU access for aggregation in userspace control code.
  void* SlotAt(std::uint32_t cpu, std::uint32_t index);
  std::uint32_t num_cpus() const { return num_cpus_; }

  // Sums slot `index` across CPUs, treating values as u64 (CHECKs size).
  std::uint64_t SumU64(std::uint32_t index);

 private:
  const std::uint32_t num_cpus_;
  const std::uint32_t stride_;  // value_size rounded up to a cache line
  std::vector<std::uint8_t> storage_;
};

// Hash map: fixed-capacity, chained buckets, pooled entries, one TTAS
// spinlock per map (policies execute on lock slow paths where a short
// map-internal spin is negligible; contention on a policy map is itself a
// policy bug the profiler would surface).
class HashMap : public BpfMap {
 public:
  HashMap(std::string name, std::uint32_t key_size, std::uint32_t value_size,
          std::uint32_t max_entries);
  ~HashMap() override;

  void* Lookup(const void* key) override;
  Status Update(const void* key, const void* value) override;
  Status Delete(const void* key) override;
  std::uint32_t Size() const override {
    return live_.load(std::memory_order_relaxed);
  }
  void ForEach(const EntryVisitor& visit) override;

 private:
  struct Entry {
    Entry* next = nullptr;
    std::uint64_t hash = 0;
    // key bytes followed by value bytes, allocated inline
    std::uint8_t data[];  // NOLINT: flexible array member idiom
  };

  Entry* AllocEntry();
  void FreeEntry(Entry* entry);
  std::uint64_t HashKey(const void* key) const;
  std::uint8_t* KeyOf(Entry* e) const { return e->data; }
  std::uint8_t* ValueOf(Entry* e) const { return e->data + key_size_; }

  void Lock();
  void Unlock();

  const std::uint32_t num_buckets_;
  std::vector<Entry*> buckets_;
  std::vector<void*> pool_allocations_;
  Entry* free_list_ = nullptr;
  std::atomic<std::uint32_t> live_{0};
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
};

// Creates a map of the given type. `num_cpus` is only used by per-CPU maps.
StatusOr<std::unique_ptr<BpfMap>> CreateMap(MapType type, std::string name,
                                            std::uint32_t key_size,
                                            std::uint32_t value_size,
                                            std::uint32_t max_entries,
                                            std::uint32_t num_cpus);

}  // namespace concord

#endif  // SRC_BPF_MAPS_H_
