// x86-64 template JIT for verified policy programs.
//
// The fast execution tier behind every hook invocation: Concord::Attach
// compiles each verified program's bytecode to native code once, and the
// hook trampolines then call it like a plain C function. The interpreter
// (src/bpf/vm.cc) remains the reference semantics — the JIT is required to
// agree with it bit-for-bit on R0 and on every memory side effect, which
// tests/bpf/jit_differential_test.cc enforces on random programs.
//
// Safety model: the JIT consumes *verified* programs only. Every bound the
// verifier proved (no back edges, in-bounds stack/context/map-value access,
// whitelisted helpers with typed arguments) is inherited by the emitted
// code, so the template translation adds no runtime checks beyond the ones
// the interpreter also performs (the div/mod-by-zero branch). Emitted code
// lives in a W^X code cache (see code_cache.h).
//
// Fallback rules, in order:
//   - non-x86-64 build or -DCONCORD_ENABLE_JIT=OFF: Jit::Supported() is
//     false, Compile() fails, every program interprets;
//   - CONCORD_JIT=off|0|false in the environment (or a SetEnabledOverride):
//     attach-time compilation is skipped, programs interpret;
//   - Compile() fails for an individual program (unsupported instruction,
//     code-cache failure): that program interprets, the rest of the chain
//     still runs native.

#ifndef SRC_BPF_JIT_JIT_H_
#define SRC_BPF_JIT_JIT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/bpf/jit/abi.h"
#include "src/bpf/jit/code_cache.h"
#include "src/bpf/program.h"
#include "src/bpf/vm.h"
#include "src/topology/thread_context.h"

namespace concord {

// A compiled program: an owned executable region plus its typed entry point.
// Shared (via shared_ptr on Program) between every copy of the program a
// PolicySpec attach produces.
class JitProgram {
 public:
  // The native signature — see src/bpf/jit/abi.h for the full ABI.
  using Entry = std::uint64_t (*)(void* ctx, VmEnv* env);

  explicit JitProgram(jit::ExecutableCode code)
      : code_(std::move(code)),
        entry_(reinterpret_cast<Entry>(const_cast<void*>(code_.entry()))) {}

  // Runs the compiled code with R1 = ctx, mirroring BpfVm::Run. `program`
  // supplies the map table helpers resolve through VmEnv.
  std::uint64_t Run(const Program& program, void* ctx,
                    void* hook_data = nullptr) const {
    VmEnv env;
    env.program = &program;
    env.hook_data = hook_data;
    env.cpu = Self().vcpu;
    return entry_(ctx, &env);
  }

  std::size_t code_size() const { return code_.code_size(); }
  const std::uint8_t* code() const { return code_.data(); }

  // Hex dump of the emitted machine code (for concord_asm --jit-dump).
  std::string HexDump() const;

 private:
  jit::ExecutableCode code_;
  Entry entry_;
};

class Jit {
 public:
  // True when this build carries the x86-64 backend.
  static bool Supported();

  // True when attach-time compilation should happen: Supported(), and not
  // switched off via CONCORD_JIT=off|0|false or SetEnabledOverride(0).
  static bool Enabled();

  // Test/bench override: 1 forces on, 0 forces off, -1 restores the
  // environment default. Returns the previous override state.
  static int SetEnabledOverride(int state);

  // Compiles a verified program (CHECK-enforced, like BpfVm::Run). Does not
  // consult Enabled() — callers that want the policy-level gate go through
  // PolicySpec::JitCompileAll.
  static StatusOr<std::shared_ptr<const JitProgram>> Compile(
      const Program& program);
};

// RAII helper for tests/benchmarks that need a specific JIT mode.
class ScopedJitMode {
 public:
  explicit ScopedJitMode(bool enabled)
      : prev_(Jit::SetEnabledOverride(enabled ? 1 : 0)) {}
  ~ScopedJitMode() { Jit::SetEnabledOverride(prev_); }
  ScopedJitMode(const ScopedJitMode&) = delete;
  ScopedJitMode& operator=(const ScopedJitMode&) = delete;

 private:
  int prev_;
};

// The one dispatch point both execution tiers share: native code when the
// program was compiled at attach, the interpreter otherwise. Hook
// trampolines (src/concord/concord.cc) and tools call this instead of
// BpfVm::Run directly.
inline std::uint64_t RunPolicyProgram(const Program& program, void* ctx,
                                      void* hook_data = nullptr) {
  if (program.jit != nullptr) {
    return program.jit->Run(program, ctx, hook_data);
  }
  return BpfVm::Run(program, ctx, hook_data);
}

}  // namespace concord

#endif  // SRC_BPF_JIT_JIT_H_
