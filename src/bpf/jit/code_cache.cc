#include "src/bpf/jit/code_cache.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace concord {
namespace jit {

ExecutableCode::~ExecutableCode() { Release(); }

ExecutableCode& ExecutableCode::operator=(ExecutableCode&& other) noexcept {
  if (this != &other) {
    Release();
    base_ = other.base_;
    map_len_ = other.map_len_;
    code_len_ = other.code_len_;
    other.base_ = nullptr;
    other.map_len_ = 0;
    other.code_len_ = 0;
  }
  return *this;
}

void ExecutableCode::Release() {
  if (base_ != nullptr) {
    ::munmap(base_, map_len_);
    base_ = nullptr;
  }
}

CodeCache& CodeCache::Global() {
  static CodeCache* cache = new CodeCache();
  return *cache;
}

StatusOr<ExecutableCode> CodeCache::Publish(const std::uint8_t* code,
                                            std::size_t len) {
  if (code == nullptr || len == 0) {
    return InvalidArgumentError("empty code buffer");
  }
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t page_size = page > 0 ? static_cast<std::size_t>(page) : 4096;
  const std::size_t map_len = (len + page_size - 1) & ~(page_size - 1);

  void* base = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return InternalError(std::string("mmap of code region failed: ") +
                         std::strerror(errno));
  }
  std::memcpy(base, code, len);
  // Seal: from here on the region is never writable again (W^X).
  if (::mprotect(base, map_len, PROT_READ | PROT_EXEC) != 0) {
    const int err = errno;
    ::munmap(base, map_len);
    return InternalError(std::string("mprotect(PROT_READ|PROT_EXEC) failed: ") +
                         std::strerror(err));
  }

  programs_.fetch_add(1, std::memory_order_relaxed);
  code_bytes_.fetch_add(len, std::memory_order_relaxed);
  mapped_bytes_.fetch_add(map_len, std::memory_order_relaxed);
  return ExecutableCode(base, map_len, len);
}

CodeCache::Stats CodeCache::stats() const {
  Stats s;
  s.programs_published = programs_.load(std::memory_order_relaxed);
  s.code_bytes = code_bytes_.load(std::memory_order_relaxed);
  s.mapped_bytes = mapped_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace jit
}  // namespace concord
