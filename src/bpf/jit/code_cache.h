// W^X executable-memory cache for JIT-compiled policy programs.
//
// Lifecycle of a compiled program's code, enforced so that no page is ever
// writable and executable at the same time:
//
//   1. CodeCache::Publish mmaps a fresh anonymous PROT_READ|PROT_WRITE
//      region and copies the emitted bytes in,
//   2. the region is sealed with mprotect(PROT_READ|PROT_EXEC),
//   3. the returned ExecutableCode handle owns the mapping; dropping the
//      handle munmaps it.
//
// Handles are owned (via JitProgram, via Program) by the policy spec that
// was attached, so code lives exactly as long as some attached or in-flight
// copy of the program references it — the RCU grace period in
// Concord::ReinstallLocked guarantees no lock is still executing the old
// table when the last reference drops.

#ifndef SRC_BPF_JIT_CODE_CACHE_H_
#define SRC_BPF_JIT_CODE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/base/status.h"

namespace concord {
namespace jit {

// Owning handle to one sealed (read+execute) code region.
class ExecutableCode {
 public:
  ExecutableCode() = default;
  ExecutableCode(void* base, std::size_t map_len, std::size_t code_len)
      : base_(base), map_len_(map_len), code_len_(code_len) {}
  ~ExecutableCode();

  ExecutableCode(const ExecutableCode&) = delete;
  ExecutableCode& operator=(const ExecutableCode&) = delete;
  ExecutableCode(ExecutableCode&& other) noexcept { *this = std::move(other); }
  ExecutableCode& operator=(ExecutableCode&& other) noexcept;

  bool valid() const { return base_ != nullptr; }
  const void* entry() const { return base_; }
  // The emitted bytes (the region is PROT_READ|PROT_EXEC, so reading for
  // disassembly/dumping is fine).
  const std::uint8_t* data() const {
    return static_cast<const std::uint8_t*>(base_);
  }
  std::size_t code_size() const { return code_len_; }
  std::size_t mapped_size() const { return map_len_; }

 private:
  void Release();

  void* base_ = nullptr;
  std::size_t map_len_ = 0;
  std::size_t code_len_ = 0;
};

// Process-wide allocator for executable regions; tracks how much native code
// is live for introspection and tests.
class CodeCache {
 public:
  static CodeCache& Global();

  // Copies `len` bytes of machine code into a fresh mapping and seals it
  // PROT_READ|PROT_EXEC. Fails if the kernel refuses the mapping (e.g. a
  // hardened W^X-less environment); callers fall back to the interpreter.
  StatusOr<ExecutableCode> Publish(const std::uint8_t* code, std::size_t len);

  struct Stats {
    std::uint64_t programs_published = 0;  // lifetime count
    std::uint64_t code_bytes = 0;          // lifetime emitted bytes
    std::uint64_t mapped_bytes = 0;        // lifetime page-rounded bytes
  };
  Stats stats() const;

 private:
  CodeCache() = default;

  std::atomic<std::uint64_t> programs_{0};
  std::atomic<std::uint64_t> code_bytes_{0};
  std::atomic<std::uint64_t> mapped_bytes_{0};
};

}  // namespace jit
}  // namespace concord

#endif  // SRC_BPF_JIT_CODE_CACHE_H_
