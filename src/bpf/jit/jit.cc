// x86-64 template JIT backend.
//
// One forward pass over the verified bytecode, expanding each BPF
// instruction into a fixed x86-64 template (see abi.h for the register map
// and frame layout). Branches are resolved in a patch pass at the end —
// every BPF jump becomes a rel32 jmp/jcc whose displacement is filled in
// once all instruction offsets are known.
//
// The only runtime branches the templates add beyond the bytecode's own are
// the divide-by-zero guards, which mirror the interpreter exactly
// (src/bpf/vm.cc AluOp64): div by 0 yields 0, mod by 0 leaves dst unchanged
// (its 32-bit view for ALU32). Everything else the verifier proved — bounds,
// alignment, termination, helper signatures — is inherited, so templates
// carry no checks.
//
// x86 subtleties this file is careful about (each covered by jit_test.cc):
//  - 32-bit ALU results must zero-extend to 64 bits. Most 32-bit x86 ops do
//    this for free; shifts whose (masked) count is zero do NOT write the
//    destination register at all, so 32-bit shifts are followed by a
//    self-`mov r32, r32` that forces the zero-extension.
//  - shift-by-register needs the count in CL; three aliasing cases (src is
//    rcx / dst is rcx / neither) each save and restore around it.
//  - div/mod uses rdx:rax implicitly; the template preserves both and writes
//    the destination last so dst==rax / dst==rdx alias correctly.
//  - byte stores of rdi/rsi/rbp need a REX prefix to select dil/sil/bpl
//    (without one, those encodings mean ah/ch/dh).
//  - no BPF register lives in rsp/r12, so memory operands never need a SIB
//    byte; the only SIB in emitted code is the rsp-relative VmEnv* slot.

#include "src/bpf/jit/jit.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/fault.h"
#include "src/bpf/helpers.h"
#include "src/bpf/insn.h"

namespace concord {
namespace {

using namespace jit;  // NOLINT(build/namespaces) — register names, ABI consts

// -1 = follow the environment; 0/1 = forced by SetEnabledOverride.
int g_enabled_override = -1;

bool EnvEnabled() {
  const char* v = std::getenv("CONCORD_JIT");
  if (v == nullptr) {
    return true;
  }
  return std::strcmp(v, "off") != 0 && std::strcmp(v, "0") != 0 &&
         std::strcmp(v, "false") != 0;
}

#if CONCORD_JIT_SUPPORTED

class CodeBuffer {
 public:
  void U8(std::uint8_t b) { bytes_.push_back(b); }
  void U16(std::uint16_t v) {
    U8(static_cast<std::uint8_t>(v));
    U8(static_cast<std::uint8_t>(v >> 8));
  }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      U8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      U8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void Patch8(std::size_t pos, std::uint8_t v) { bytes_[pos] = v; }
  void Patch32(std::size_t pos, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
  std::size_t size() const { return bytes_.size(); }
  const std::uint8_t* data() const { return bytes_.data(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Compiler {
 public:
  explicit Compiler(const Program& program) : program_(program) {}

  StatusOr<ExecutableCode> Compile() {
    const std::vector<Insn>& insns = program_.insns;
    const std::size_t count = insns.size();
    // pc_off_[pc] = native offset of BPF instruction pc; the extra slot at
    // [count] is the epilogue, the branch target of every `exit`.
    pc_off_.assign(count + 1, 0);

    EmitPrologue();

    for (std::size_t pc = 0; pc < count; ++pc) {
      pc_off_[pc] = buf_.size();
      const Insn& insn = insns[pc];
      switch (insn.Class()) {
        case kBpfClassAlu64:
        case kBpfClassAlu32:
          CONCORD_RETURN_IF_ERROR(EmitAlu(insn));
          break;
        case kBpfClassLdx:
          EmitLoad(insn.Size(), kBpfToX86[insn.dst], kBpfToX86[insn.src],
                   insn.off);
          break;
        case kBpfClassStx:
          if (insn.Mode() == kBpfModeAtomic) {
            EmitAtomicAdd(insn.Size() == kBpfSizeDw, kBpfToX86[insn.dst],
                          kBpfToX86[insn.src], insn.off);
          } else {
            EmitStoreReg(insn.Size(), kBpfToX86[insn.dst], kBpfToX86[insn.src],
                         insn.off);
          }
          break;
        case kBpfClassSt:
          EmitStoreImm(insn.Size(), kBpfToX86[insn.dst], insn.off, insn.imm);
          break;
        case kBpfClassLd: {
          // Only LD_IMM64 (verifier-enforced); consumes two slots.
          if (pc + 1 >= count) {
            return InvalidArgumentError("truncated lddw");
          }
          const std::uint64_t lo = static_cast<std::uint32_t>(insn.imm);
          const std::uint64_t hi =
              static_cast<std::uint32_t>(insns[pc + 1].imm);
          MovImm64(kBpfToX86[insn.dst], lo | (hi << 32));
          ++pc;
          pc_off_[pc] = buf_.size();  // never a branch target, but keep sane
          break;
        }
        case kBpfClassJmp:
        case kBpfClassJmp32: {
          const std::uint8_t op = insn.JmpOp();
          if (op == kBpfExit) {
            JmpRel32(count);
          } else if (op == kBpfCall) {
            CONCORD_RETURN_IF_ERROR(EmitCall(pc, insn));
          } else {
            CONCORD_RETURN_IF_ERROR(EmitJmp(insn, pc, count));
          }
          break;
        }
        default:
          return InvalidArgumentError("jit: unsupported instruction class");
      }
    }
    pc_off_[count] = buf_.size();
    EmitEpilogue();

    for (const Fixup& f : fixups_) {
      const std::int64_t rel =
          static_cast<std::int64_t>(pc_off_[f.target_pc]) -
          static_cast<std::int64_t>(f.pos + 4);
      buf_.Patch32(f.pos, static_cast<std::uint32_t>(rel));
    }

    return CodeCache::Global().Publish(buf_.data(), buf_.size());
  }

 private:
  struct Fixup {
    std::size_t pos;        // offset of the rel32 field to patch
    std::size_t target_pc;  // BPF pc it must land on (count = epilogue)
  };

  // --- encoding primitives ---------------------------------------------------

  void Rex(bool w, std::uint8_t reg, std::uint8_t rm, bool force = false) {
    std::uint8_t rex = 0x40;
    if (w) rex |= 0x08;
    if (reg & 8) rex |= 0x04;
    if (rm & 8) rex |= 0x01;
    if (rex != 0x40 || force) buf_.U8(rex);
  }
  void ModRM(std::uint8_t mod, std::uint8_t reg, std::uint8_t rm) {
    buf_.U8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }
  // [base + disp32]; base must not be rsp/r12 (would need a SIB byte) — no
  // BPF register maps there, see abi.h.
  void MemOp(std::uint8_t reg, std::uint8_t base, std::int32_t disp) {
    CONCORD_DCHECK((base & 7) != kRsp);
    ModRM(2, reg, base);
    buf_.U32(static_cast<std::uint32_t>(disp));
  }

  // Register-register ALU, store-form opcode (add 0x01, sub 0x29, or 0x09,
  // and 0x21, xor 0x31, cmp 0x39, mov 0x89, test 0x85): op dst, src.
  void AluRR(std::uint8_t opcode, bool w, std::uint8_t src, std::uint8_t dst) {
    Rex(w, src, dst);
    buf_.U8(opcode);
    ModRM(3, src, dst);
  }
  // 81 /ext with imm32 (add 0, or 1, and 4, sub 5, xor 6, cmp 7). With REX.W
  // the immediate sign-extends to 64 bits, matching the interpreter's
  // (s64)imm operand.
  void AluImm(std::uint8_t ext, bool w, std::uint8_t dst, std::int32_t imm) {
    Rex(w, 0, dst);
    buf_.U8(0x81);
    ModRM(3, ext, dst);
    buf_.U32(static_cast<std::uint32_t>(imm));
  }
  void MovRR(bool w, std::uint8_t src, std::uint8_t dst) {
    AluRR(0x89, w, src, dst);
  }
  // mov r32, imm32 — zero-extends, the ALU32 mov-imm semantics.
  void MovImm32(std::uint8_t dst, std::uint32_t imm) {
    Rex(false, 0, dst);
    buf_.U8(static_cast<std::uint8_t>(0xb8 | (dst & 7)));
    buf_.U32(imm);
  }
  // mov r64, imm32 sign-extended — the ALU64 mov-imm semantics.
  void MovImmSx(std::uint8_t dst, std::int32_t imm) {
    Rex(true, 0, dst);
    buf_.U8(0xc7);
    ModRM(3, 0, dst);
    buf_.U32(static_cast<std::uint32_t>(imm));
  }
  // Arbitrary 64-bit constant, in the shortest encoding that preserves it.
  void MovImm64(std::uint8_t dst, std::uint64_t imm) {
    if (imm <= 0xffffffffull) {
      MovImm32(dst, static_cast<std::uint32_t>(imm));
    } else if (static_cast<std::int64_t>(imm) ==
               static_cast<std::int32_t>(imm)) {
      MovImmSx(dst, static_cast<std::int32_t>(imm));
    } else {
      Rex(true, 0, dst);
      buf_.U8(static_cast<std::uint8_t>(0xb8 | (dst & 7)));
      buf_.U64(imm);
    }
  }
  // Self-mov of the 32-bit view: unconditionally writes the register, so the
  // upper 32 bits are zeroed even when a prior 32-bit shift was a no-op.
  void ZeroExtend32(std::uint8_t reg) { MovRR(false, reg, reg); }
  void XorZero(std::uint8_t reg) { AluRR(0x31, false, reg, reg); }

  void EmitLoad(std::uint8_t size, std::uint8_t dst, std::uint8_t base,
                std::int32_t disp) {
    switch (size) {
      case kBpfSizeB:  // movzx r32, m8 — zero-extends to 64
        Rex(false, dst, base);
        buf_.U8(0x0f);
        buf_.U8(0xb6);
        MemOp(dst, base, disp);
        break;
      case kBpfSizeH:  // movzx r32, m16
        Rex(false, dst, base);
        buf_.U8(0x0f);
        buf_.U8(0xb7);
        MemOp(dst, base, disp);
        break;
      case kBpfSizeW:  // mov r32, m32 — zero-extends
        Rex(false, dst, base);
        buf_.U8(0x8b);
        MemOp(dst, base, disp);
        break;
      default:  // mov r64, m64
        Rex(true, dst, base);
        buf_.U8(0x8b);
        MemOp(dst, base, disp);
        break;
    }
  }
  void EmitStoreReg(std::uint8_t size, std::uint8_t base, std::uint8_t src,
                    std::int32_t disp) {
    switch (size) {
      case kBpfSizeB:
        // Forced REX so rdi/rsi/rbp encode dil/sil/bpl, not ah/dh/ch.
        Rex(false, src, base, /*force=*/true);
        buf_.U8(0x88);
        MemOp(src, base, disp);
        break;
      case kBpfSizeH:
        buf_.U8(0x66);  // operand-size prefix precedes REX
        Rex(false, src, base);
        buf_.U8(0x89);
        MemOp(src, base, disp);
        break;
      case kBpfSizeW:
        Rex(false, src, base);
        buf_.U8(0x89);
        MemOp(src, base, disp);
        break;
      default:
        Rex(true, src, base);
        buf_.U8(0x89);
        MemOp(src, base, disp);
        break;
    }
  }
  void EmitStoreImm(std::uint8_t size, std::uint8_t base, std::int32_t disp,
                    std::int32_t imm) {
    switch (size) {
      case kBpfSizeB:
        Rex(false, 0, base);
        buf_.U8(0xc6);
        MemOp(0, base, disp);
        buf_.U8(static_cast<std::uint8_t>(imm));
        break;
      case kBpfSizeH:
        buf_.U8(0x66);
        Rex(false, 0, base);
        buf_.U8(0xc7);
        MemOp(0, base, disp);
        buf_.U16(static_cast<std::uint16_t>(imm));
        break;
      case kBpfSizeW:
        Rex(false, 0, base);
        buf_.U8(0xc7);
        MemOp(0, base, disp);
        buf_.U32(static_cast<std::uint32_t>(imm));
        break;
      default:
        // REX.W C7 sign-extends imm32, matching the interpreter's (s64)imm
        // double-word store.
        Rex(true, 0, base);
        buf_.U8(0xc7);
        MemOp(0, base, disp);
        buf_.U32(static_cast<std::uint32_t>(imm));
        break;
    }
  }
  void EmitAtomicAdd(bool w, std::uint8_t base, std::uint8_t src,
                     std::int32_t disp) {
    buf_.U8(0xf0);  // lock (precedes REX)
    Rex(w, src, base);
    buf_.U8(0x01);
    MemOp(src, base, disp);
  }

  // mov/lea through the only SIB-addressed slot: [rsp + disp].
  void LoadRsp(std::uint8_t dst, std::int32_t disp) {
    Rex(true, dst, kRsp);
    buf_.U8(0x8b);
    ModRM(2, dst, 4);
    buf_.U8(0x24);  // SIB: scale 1, no index, base rsp
    buf_.U32(static_cast<std::uint32_t>(disp));
  }
  void StoreRsp(std::int32_t disp, std::uint8_t src) {
    Rex(true, src, kRsp);
    buf_.U8(0x89);
    ModRM(2, src, 4);
    buf_.U8(0x24);
    buf_.U32(static_cast<std::uint32_t>(disp));
  }
  void LeaRsp(std::uint8_t dst, std::int32_t disp) {
    Rex(true, dst, kRsp);
    buf_.U8(0x8d);
    ModRM(2, dst, 4);
    buf_.U8(0x24);
    buf_.U32(static_cast<std::uint32_t>(disp));
  }

  void Push(std::uint8_t reg) {
    if (reg & 8) buf_.U8(0x41);
    buf_.U8(static_cast<std::uint8_t>(0x50 | (reg & 7)));
  }
  void Pop(std::uint8_t reg) {
    if (reg & 8) buf_.U8(0x41);
    buf_.U8(static_cast<std::uint8_t>(0x58 | (reg & 7)));
  }
  void SubRsp(std::int32_t n) {
    Rex(true, 0, kRsp);
    buf_.U8(0x81);
    ModRM(3, 5, kRsp);
    buf_.U32(static_cast<std::uint32_t>(n));
  }
  void AddRsp(std::int32_t n) {
    Rex(true, 0, kRsp);
    buf_.U8(0x81);
    ModRM(3, 0, kRsp);
    buf_.U32(static_cast<std::uint32_t>(n));
  }
  void CallRax() {
    buf_.U8(0xff);
    buf_.U8(0xd0);
  }
  void Ret() { buf_.U8(0xc3); }

  void NegReg(bool w, std::uint8_t dst) {  // f7 /3
    Rex(w, 0, dst);
    buf_.U8(0xf7);
    ModRM(3, 3, dst);
  }
  void ImulRR(bool w, std::uint8_t dst, std::uint8_t src) {  // 0f af /r
    Rex(w, dst, src);
    buf_.U8(0x0f);
    buf_.U8(0xaf);
    ModRM(3, dst, src);
  }
  void ImulImm(bool w, std::uint8_t dst, std::int32_t imm) {  // 69 /r imm32
    Rex(w, dst, dst);
    buf_.U8(0x69);
    ModRM(3, dst, dst);
    buf_.U32(static_cast<std::uint32_t>(imm));
  }
  void DivByR11(bool w) {  // f7 /6: unsigned rdx:rax / r11
    Rex(w, 0, kR11);
    buf_.U8(0xf7);
    ModRM(3, 6, kR11);
  }
  void TestRR(bool w, std::uint8_t a, std::uint8_t b) { AluRR(0x85, w, a, b); }
  void TestImm(bool w, std::uint8_t dst, std::int32_t imm) {  // f7 /0 imm32
    Rex(w, 0, dst);
    buf_.U8(0xf7);
    ModRM(3, 0, dst);
    buf_.U32(static_cast<std::uint32_t>(imm));
  }
  void ShiftImm(bool w, std::uint8_t ext, std::uint8_t dst,
                std::uint8_t count) {  // c1 /ext imm8
    Rex(w, 0, dst);
    buf_.U8(0xc1);
    ModRM(3, ext, dst);
    buf_.U8(count);
  }
  void ShiftCl(bool w, std::uint8_t ext, std::uint8_t dst) {  // d3 /ext
    Rex(w, 0, dst);
    buf_.U8(0xd3);
    ModRM(3, ext, dst);
  }

  // Short (rel8) branches for intra-template control flow only.
  std::size_t JeShort() {
    buf_.U8(0x74);
    buf_.U8(0);
    return buf_.size() - 1;
  }
  // Generic short jcc; `cc8` is the one-byte condition opcode (0x72 jb,
  // 0x73 jae, 0x75 jne, ...).
  std::size_t JccShort(std::uint8_t cc8) {
    buf_.U8(cc8);
    buf_.U8(0);
    return buf_.size() - 1;
  }
  // cmp dword [base + disp], imm8 (0x83 /7) — the inline-lookup guards.
  void CmpMem32Imm8(std::uint8_t base, std::int32_t disp, std::int8_t imm) {
    Rex(false, 0, base);
    buf_.U8(0x83);
    MemOp(7, base, disp);
    buf_.U8(static_cast<std::uint8_t>(imm));
  }
  std::size_t JmpShort() {
    buf_.U8(0xeb);
    buf_.U8(0);
    return buf_.size() - 1;
  }
  void BindShort(std::size_t pos) {
    const std::size_t rel = buf_.size() - (pos + 1);
    CONCORD_CHECK(rel <= 127);
    buf_.Patch8(pos, static_cast<std::uint8_t>(rel));
  }

  // BPF-level branches: rel32, resolved in the final patch pass.
  void JmpRel32(std::size_t target_pc) {
    buf_.U8(0xe9);
    fixups_.push_back({buf_.size(), target_pc});
    buf_.U32(0);
  }
  void JccRel32(std::uint8_t cc, std::size_t target_pc) {
    buf_.U8(0x0f);
    buf_.U8(cc);
    fixups_.push_back({buf_.size(), target_pc});
    buf_.U32(0);
  }

  // --- per-instruction templates --------------------------------------------

  Status EmitAlu(const Insn& insn) {
    const bool w = insn.Class() == kBpfClassAlu64;
    const std::uint8_t d = kBpfToX86[insn.dst];
    const std::uint8_t op = insn.AluOp();

    switch (op) {
      case kBpfNeg:
        NegReg(w, d);  // 32-bit form zero-extends
        return Status::Ok();
      case kBpfDiv:
      case kBpfMod:
        return EmitDivMod(insn, w, d);
      case kBpfLsh:
      case kBpfRsh:
      case kBpfArsh:
        return EmitShift(insn, w, d);
      default:
        break;
    }

    if (insn.UsesSrcReg()) {
      const std::uint8_t s = kBpfToX86[insn.src];
      switch (op) {
        case kBpfAdd:
          AluRR(0x01, w, s, d);
          break;
        case kBpfSub:
          AluRR(0x29, w, s, d);
          break;
        case kBpfOr:
          AluRR(0x09, w, s, d);
          break;
        case kBpfAnd:
          AluRR(0x21, w, s, d);
          break;
        case kBpfXor:
          AluRR(0x31, w, s, d);
          break;
        case kBpfMov:
          MovRR(w, s, d);
          break;
        case kBpfMul:
          ImulRR(w, d, s);
          break;
        default:
          return InvalidArgumentError("jit: unsupported ALU op");
      }
    } else {
      switch (op) {
        case kBpfAdd:
          AluImm(0, w, d, insn.imm);
          break;
        case kBpfSub:
          AluImm(5, w, d, insn.imm);
          break;
        case kBpfOr:
          AluImm(1, w, d, insn.imm);
          break;
        case kBpfAnd:
          AluImm(4, w, d, insn.imm);
          break;
        case kBpfXor:
          AluImm(6, w, d, insn.imm);
          break;
        case kBpfMov:
          if (w) {
            MovImmSx(d, insn.imm);
          } else {
            MovImm32(d, static_cast<std::uint32_t>(insn.imm));
          }
          break;
        case kBpfMul:
          // imul r, r, imm32 sign-extends the immediate — low bits of the
          // product match the interpreter's dst * (s64)imm for both widths.
          ImulImm(w, d, insn.imm);
          break;
        default:
          return InvalidArgumentError("jit: unsupported ALU op");
      }
    }
    return Status::Ok();
  }

  // div/mod, preserving rax/rdx and mirroring the interpreter's zero-divisor
  // behavior: div by 0 -> 0; mod by 0 -> dst unchanged (32-bit view for
  // ALU32). The destination is written last so dst aliasing rax/rdx works.
  Status EmitDivMod(const Insn& insn, bool w, std::uint8_t d) {
    const bool is_mod = insn.AluOp() == kBpfMod;

    // Divisor into r11 before anything else gets clobbered. The 32-bit
    // moves zero-extend, giving the interpreter's (u32) operand views.
    if (insn.UsesSrcReg()) {
      MovRR(w, kBpfToX86[insn.src], kR11);
    } else if (w) {
      MovImmSx(kR11, insn.imm);
    } else {
      MovImm32(kR11, static_cast<std::uint32_t>(insn.imm));
    }

    Push(kRax);
    Push(kRdx);
    MovRR(w, d, kRax);  // dividend (self-mov zero-extends when d==rax, !w)

    TestRR(w, kR11, kR11);
    const std::size_t on_zero = JeShort();
    XorZero(kRdx);
    DivByR11(w);  // quotient -> rax, remainder -> rdx
    MovRR(w, is_mod ? kRdx : kRax, kR11);
    const std::size_t done = JmpShort();
    BindShort(on_zero);
    if (is_mod) {
      MovRR(w, kRax, kR11);  // rax still holds the (possibly masked) dividend
    } else {
      XorZero(kR11);
    }
    BindShort(done);

    Pop(kRdx);
    Pop(kRax);
    MovRR(w, kR11, d);  // after the pops: d may be rax or rdx
    return Status::Ok();
  }

  Status EmitShift(const Insn& insn, bool w, std::uint8_t d) {
    std::uint8_t ext;
    switch (insn.AluOp()) {
      case kBpfLsh:
        ext = 4;  // shl
        break;
      case kBpfRsh:
        ext = 5;  // shr
        break;
      default:
        ext = 7;  // sar
        break;
    }

    if (!insn.UsesSrcReg()) {
      const std::uint8_t count =
          static_cast<std::uint8_t>(insn.imm) & (w ? 63 : 31);
      if (count != 0) {
        ShiftImm(w, ext, d, count);  // 32-bit form zero-extends
      } else if (!w) {
        // Count 0 still zero-extends in BPF: dst = (u32)dst.
        ZeroExtend32(d);
      }
      return Status::Ok();
    }

    // Register count: x86 shifts take the count in CL and mask it by 63/31
    // exactly as BPF does. Three aliasing cases around rcx (BPF r4):
    const std::uint8_t s = kBpfToX86[insn.src];
    if (s == kRcx) {
      // Count already in CL (sampled before the write, so d==rcx is fine).
      ShiftCl(w, ext, d);
      if (!w) ZeroExtend32(d);  // CL may have masked to 0: force the extend
    } else if (d == kRcx) {
      MovRR(true, kRcx, kR11);  // value out of the way
      MovRR(true, s, kRcx);     // count into CL
      ShiftCl(w, ext, kR11);
      MovRR(w, kR11, kRcx);  // 32-bit form re-extends even if count was 0
    } else {
      MovRR(true, kRcx, kR11);  // save caller's rcx (BPF r4)
      MovRR(true, s, kRcx);
      ShiftCl(w, ext, d);
      if (!w) ZeroExtend32(d);
      MovRR(true, kR11, kRcx);  // restore
    }
    return Status::Ok();
  }

  Status EmitJmp(const Insn& insn, std::size_t pc, std::size_t count) {
    const bool w = insn.Class() == kBpfClassJmp;
    const std::size_t target = static_cast<std::size_t>(
        static_cast<std::int64_t>(pc) + 1 + insn.off);
    if (target >= count) {
      return InvalidArgumentError("jit: branch target out of range");
    }
    const std::uint8_t op = insn.JmpOp();

    if (op == kBpfJa) {
      JmpRel32(target);
      return Status::Ok();
    }

    const std::uint8_t d = kBpfToX86[insn.dst];
    if (op == kBpfJset) {
      if (insn.UsesSrcReg()) {
        TestRR(w, kBpfToX86[insn.src], d);
      } else {
        TestImm(w, d, insn.imm);  // REX.W form sign-extends, as (s64)imm
      }
      JccRel32(0x85, target);  // jne
      return Status::Ok();
    }

    // cmp at the BPF width: 32-bit cmp gives exactly the interpreter's
    // unsigned-on-(u32) and signed-on-(s32) orderings via the usual flags.
    if (insn.UsesSrcReg()) {
      AluRR(0x39, w, kBpfToX86[insn.src], d);
    } else {
      AluImm(7, w, d, insn.imm);
    }
    std::uint8_t cc;
    switch (op) {
      case kBpfJeq:
        cc = 0x84;  // je
        break;
      case kBpfJne:
        cc = 0x85;  // jne
        break;
      case kBpfJgt:
        cc = 0x87;  // ja
        break;
      case kBpfJge:
        cc = 0x83;  // jae
        break;
      case kBpfJlt:
        cc = 0x82;  // jb
        break;
      case kBpfJle:
        cc = 0x86;  // jbe
        break;
      case kBpfJsgt:
        cc = 0x8f;  // jg
        break;
      case kBpfJsge:
        cc = 0x8d;  // jge
        break;
      case kBpfJslt:
        cc = 0x8c;  // jl
        break;
      case kBpfJsle:
        cc = 0x8e;  // jle
        break;
      default:
        return InvalidArgumentError("jit: unsupported JMP op");
    }
    JccRel32(cc, target);
    return Status::Ok();
  }

  Status EmitCall(std::size_t pc, const Insn& insn) {
    const HelperDef* helper = HelperRegistry::Global().Find(
        static_cast<std::uint32_t>(insn.imm));
    if (helper == nullptr || helper->fn == nullptr) {
      return InvalidArgumentError("jit: call to unregistered helper");
    }
    if (static_cast<std::uint32_t>(insn.imm) == kHelperMapLookupElem &&
        EmitInlinePerCpuLookup(pc, helper)) {
      return Status::Ok();
    }
    // BPF r1..r5 already sit in the SysV argument registers (see abi.h), so
    // the call shim is just: arg 6 = VmEnv*, target, call.
    LoadRsp(kR9, kEnvSlotOffset);
    MovImm64(kRax, reinterpret_cast<std::uint64_t>(helper->fn));
    CallRax();
    // Interpreter parity: calls clobber r1-r5 to zero.
    XorZero(kRdi);
    XorZero(kRsi);
    XorZero(kRdx);
    XorZero(kRcx);
    XorZero(kR8);
    return Status::Ok();
  }

  // Per-CPU array lookups with a verifier-proven constant map index compile
  // to a direct slot-address computation — no helper call, no map lock:
  //
  //     eax  = *(u32*)r2                 ; the key the program built on stack
  //     if (eax >= max_entries) r0 = 0   ; the helper's miss result
  //     r11d = env->cpu                  ; set once per invocation (jit.h)
  //     if (r11d >= num_cpus) goto slow  ; helper's modulo path, rare
  //     r0   = base + (r11*max + eax)*stride
  //
  // The slow label is the ordinary helper call, also taken (in fault-
  // injection builds) while ANY fault point is armed so bpf.map_lookup
  // keeps firing deterministically. Returns true when inlined; false means
  // the site is polymorphic / not a per-CPU array and the caller emits the
  // regular call.
  bool EmitInlinePerCpuLookup(std::size_t pc, const HelperDef* helper) {
    if (pc >= program_.map_lookup_sites.size()) {
      return false;
    }
    const std::int32_t site = program_.map_lookup_sites[pc];
    if (site < 0 ||
        static_cast<std::size_t>(site) >= program_.maps.size()) {
      return false;
    }
    BpfMap* map = program_.maps[static_cast<std::size_t>(site)];
    if (map->type() != MapType::kPerCpuArray) {
      return false;
    }
    auto* percpu = static_cast<PerCpuArrayMap*>(map);
    const auto max_entries = static_cast<std::int32_t>(percpu->max_entries());
    const auto num_cpus = static_cast<std::int32_t>(percpu->num_cpus());
    const auto stride = static_cast<std::int32_t>(percpu->stride());

    std::vector<std::size_t> to_slow;
    std::vector<std::size_t> to_done;
#if CONCORD_FAULT_INJECTION
    MovImm64(kR11, reinterpret_cast<std::uint64_t>(
                       FaultRegistry::Global().armed_flag()));
    CmpMem32Imm8(kR11, 0, 0);
    to_slow.push_back(JccShort(0x75));  // jne: a fault is armed
#endif
    EmitLoad(kBpfSizeW, kRax, kRsi, 0);  // eax = u32 key (r2 = key ptr)
    AluImm(7, false, kRax, max_entries);
    const std::size_t to_miss = JccShort(0x73);  // jae: index out of range
    LoadRsp(kR11, kEnvSlotOffset);
    EmitLoad(kBpfSizeW, kR11, kR11,
             static_cast<std::int32_t>(offsetof(VmEnv, cpu)));
    AluImm(7, false, kR11, num_cpus);
    to_slow.push_back(JccShort(0x73));  // jae: let the helper take cpu % n
    ImulImm(true, kR11, max_entries);
    AluRR(0x01, true, kRax, kR11);  // r11 = cpu * max_entries + index
    ImulImm(true, kR11, stride);
    MovImm64(kRax, reinterpret_cast<std::uint64_t>(percpu->slot_base()));
    AluRR(0x01, true, kR11, kRax);  // rax = slot address
    to_done.push_back(JmpShort());

    BindShort(to_miss);
    XorZero(kRax);  // miss: r0 = NULL, as the helper returns
    to_done.push_back(JmpShort());

    for (std::size_t pos : to_slow) {
      BindShort(pos);
    }
    LoadRsp(kR9, kEnvSlotOffset);
    MovImm64(kRax, reinterpret_cast<std::uint64_t>(helper->fn));
    CallRax();

    for (std::size_t pos : to_done) {
      BindShort(pos);
    }
    // Interpreter parity: calls clobber r1-r5 to zero (all paths).
    XorZero(kRdi);
    XorZero(kRsi);
    XorZero(kRdx);
    XorZero(kRcx);
    XorZero(kR8);
    return true;
  }

  void EmitPrologue() {
    // endbr64: CET landing pad, a NOP on CPUs without it.
    buf_.U8(0xf3);
    buf_.U8(0x0f);
    buf_.U8(0x1e);
    buf_.U8(0xfa);
    // Entry: rdi = ctx (stays put — it IS BPF r1), rsi = VmEnv*.
    Push(kRbp);
    Push(kRbx);
    Push(kR13);
    Push(kR14);
    Push(kR15);  // rsp now 16-byte aligned; kFrameSize keeps it so
    SubRsp(kFrameSize);
    StoreRsp(kEnvSlotOffset, kRsi);  // before rsi is zeroed below
    LeaRsp(kRbp, kEnvSlotOffset);    // BPF r10 = end of the 512-byte stack
    // Interpreter parity: all registers but r1/r10 start at zero.
    XorZero(kRax);  // r0
    XorZero(kRsi);  // r2
    XorZero(kRdx);  // r3
    XorZero(kRcx);  // r4
    XorZero(kR8);   // r5
    XorZero(kRbx);  // r6
    XorZero(kR13);  // r7
    XorZero(kR14);  // r8
    XorZero(kR15);  // r9
  }
  void EmitEpilogue() {
    AddRsp(kFrameSize);
    Pop(kR15);
    Pop(kR14);
    Pop(kR13);
    Pop(kRbx);
    Pop(kRbp);
    Ret();
  }

  const Program& program_;
  CodeBuffer buf_;
  std::vector<std::size_t> pc_off_;
  std::vector<Fixup> fixups_;
};

#endif  // CONCORD_JIT_SUPPORTED

}  // namespace

bool Jit::Supported() { return CONCORD_JIT_SUPPORTED != 0; }

bool Jit::Enabled() {
  if (!Supported()) {
    return false;
  }
  if (g_enabled_override >= 0) {
    return g_enabled_override != 0;
  }
  return EnvEnabled();
}

int Jit::SetEnabledOverride(int state) {
  const int prev = g_enabled_override;
  g_enabled_override = state;
  return prev;
}

StatusOr<std::shared_ptr<const JitProgram>> Jit::Compile(
    const Program& program) {
#if CONCORD_JIT_SUPPORTED
  CONCORD_CHECK(program.verified);
  if (CONCORD_FAULT_POINT("jit.compile")) {
    return InternalError("fault injection: jit.compile");
  }
  Compiler compiler(program);
  StatusOr<jit::ExecutableCode> code = compiler.Compile();
  if (!code.ok()) {
    return code.status();
  }
  return std::shared_ptr<const JitProgram>(
      std::make_shared<JitProgram>(std::move(code.value())));
#else
  (void)program;
  return FailedPreconditionError(
      "JIT backend not built (non-x86-64 target or CONCORD_ENABLE_JIT=OFF)");
#endif
}

std::string JitProgram::HexDump() const {
  std::string out;
  char tmp[32];
  const std::uint8_t* bytes = code();
  const std::size_t len = code_size();
  for (std::size_t i = 0; i < len; i += 16) {
    std::snprintf(tmp, sizeof(tmp), "%6zx:", i);
    out += tmp;
    const std::size_t end = std::min(i + 16, len);
    for (std::size_t j = i; j < end; ++j) {
      std::snprintf(tmp, sizeof(tmp), " %02x", bytes[j]);
      out += tmp;
    }
    out += '\n';
  }
  return out;
}

}  // namespace concord
