// ABI of JIT-compiled policy programs on x86-64.
//
// The contract between the template JIT (jit.cc), the interpreter it must
// agree with bit-for-bit (src/bpf/vm.cc), and the helper functions both tiers
// call. Compiled code is a normal System-V function:
//
//   std::uint64_t entry(void* ctx, VmEnv* env);
//
// so hook trampolines can call it like any C function. Inside, BPF registers
// live in fixed x86-64 registers, chosen (as in the kernel's JIT) so that a
// BPF helper call needs *no* argument shuffling:
//
//   BPF   x86-64   role
//   r0    rax      return value / helper result
//   r1    rdi      ctx on entry; helper arg 1  (SysV arg 1)
//   r2    rsi      helper arg 2                (SysV arg 2)
//   r3    rdx      helper arg 3                (SysV arg 3)
//   r4    rcx      helper arg 4                (SysV arg 4)
//   r5    r8       helper arg 5                (SysV arg 5)
//   r6    rbx      callee-saved
//   r7    r13      callee-saved
//   r8    r14      callee-saved
//   r9    r15      callee-saved
//   r10   rbp      frame pointer (read-only; callee-saved)
//
// r11 (and, inside the div/mod sequence, the saved rax/rdx pair) is the
// JIT's scratch register; no BPF register maps to rsp/r12, so memory
// operands never need a SIB byte except the rsp-relative env slot below.
//
// Frame layout after the prologue (rsp is 16-byte aligned here, so helper
// call sites meet the SysV stack-alignment rule with no extra padding):
//
//   [rsp + 0   .. rsp + 511]   the program's 512-byte BPF stack
//   [rsp + 512]                saved VmEnv* (reloaded into r9, SysV arg 6,
//                              before every helper call — HelperFn's final
//                              VmEnv& parameter)
//   [rsp + 520]                padding to keep the frame a multiple of 16
//
// BPF r10 (rbp) points at rsp+512, the *end* of the stack region, matching
// the interpreter's `stack + kBpfStackSize`; verified programs only ever
// access [r10-512, r10), i.e. [rsp, rsp+512).

#ifndef SRC_BPF_JIT_ABI_H_
#define SRC_BPF_JIT_ABI_H_

#include <cstdint>

#include "src/bpf/insn.h"

// The CMake option CONCORD_ENABLE_JIT compiles the backend out entirely
// (Jit::Supported() becomes false and every Compile() fails cleanly).
#ifndef CONCORD_ENABLE_JIT
#define CONCORD_ENABLE_JIT 1
#endif

#if defined(__x86_64__) && CONCORD_ENABLE_JIT
#define CONCORD_JIT_SUPPORTED 1
#else
#define CONCORD_JIT_SUPPORTED 0
#endif

namespace concord {
namespace jit {

// x86-64 register numbers (the 4-bit ModRM/REX encoding).
inline constexpr std::uint8_t kRax = 0;
inline constexpr std::uint8_t kRcx = 1;
inline constexpr std::uint8_t kRdx = 2;
inline constexpr std::uint8_t kRbx = 3;
inline constexpr std::uint8_t kRsp = 4;
inline constexpr std::uint8_t kRbp = 5;
inline constexpr std::uint8_t kRsi = 6;
inline constexpr std::uint8_t kRdi = 7;
inline constexpr std::uint8_t kR8 = 8;
inline constexpr std::uint8_t kR9 = 9;
inline constexpr std::uint8_t kR10 = 10;
inline constexpr std::uint8_t kR11 = 11;
inline constexpr std::uint8_t kR13 = 13;
inline constexpr std::uint8_t kR14 = 14;
inline constexpr std::uint8_t kR15 = 15;

// BPF r0..r10 -> x86-64 register (see table above).
inline constexpr std::uint8_t kBpfToX86[kBpfNumRegs] = {
    kRax, kRdi, kRsi, kRdx, kRcx, kR8, kRbx, kR13, kR14, kR15, kRbp};

// Stack frame: BPF stack, then the VmEnv* slot, then padding to 16.
inline constexpr std::int32_t kEnvSlotOffset = kBpfStackSize;        // 512
inline constexpr std::int32_t kFrameSize = kBpfStackSize + 16;       // 528

}  // namespace jit
}  // namespace concord

#endif  // SRC_BPF_JIT_ABI_H_
