#include "src/bpf/verifier_state.h"

#include <algorithm>
#include <cstdio>

namespace concord {
namespace {

bool SignedAddOverflows(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  return __builtin_add_overflow(a, b, &r);
}

bool SignedSubOverflows(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  return __builtin_sub_overflow(a, b, &r);
}

// Two tnums with no common element: a bit known in both with different
// values.
bool TnumsConflict(const Tnum& a, const Tnum& b) {
  return ((a.value ^ b.value) & ~a.mask & ~b.mask) != 0;
}

// Truncates a value set to its 32-bit (zero-extended) view.
ScalarValue Cast32(ScalarValue v) {
  constexpr std::uint64_t kMask = 0xffffffffull;
  if (v.umax <= kMask) {
    // Already 32-bit clean; signed views follow from the unsigned range.
    v.smin = std::max<std::int64_t>(v.smin, 0);
    v.Sync();
    return v;
  }
  ScalarValue out;
  if ((v.umin >> 32) == (v.umax >> 32) && (v.umin & kMask) <= (v.umax & kMask)) {
    // High bits fixed across the range: the low 32 bits sweep an interval.
    out.umin = v.umin & kMask;
    out.umax = v.umax & kMask;
  } else {
    out.umin = 0;
    out.umax = kMask;
  }
  out.smin = 0;
  out.smax = static_cast<std::int64_t>(kMask);
  out.tnum = TnumCast32(v.tnum);
  out.Sync();
  return out;
}

// Exact constant evaluation, matching BpfVm::AluOp64 bit for bit.
std::uint64_t ConstEval(std::uint8_t op, std::uint64_t a, std::uint64_t b,
                        bool is64) {
  if (!is64) {
    a &= 0xffffffffull;
    b &= 0xffffffffull;
  }
  std::uint64_t r = 0;
  switch (op) {
    case kBpfAdd:
      r = a + b;
      break;
    case kBpfSub:
      r = a - b;
      break;
    case kBpfMul:
      r = a * b;
      break;
    case kBpfDiv:
      r = b == 0 ? 0 : a / b;
      break;
    case kBpfOr:
      r = a | b;
      break;
    case kBpfAnd:
      r = a & b;
      break;
    case kBpfLsh:
      r = a << (b & (is64 ? 63 : 31));
      break;
    case kBpfRsh:
      r = a >> (b & (is64 ? 63 : 31));
      break;
    case kBpfMod:
      r = b == 0 ? a : a % b;
      break;
    case kBpfXor:
      r = a ^ b;
      break;
    case kBpfArsh:
      if (is64) {
        r = static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >> (b & 63));
      } else {
        r = static_cast<std::uint64_t>(static_cast<std::uint32_t>(
            static_cast<std::int32_t>(a) >> (b & 31)));
      }
      break;
    default:
      r = 0;
      break;
  }
  return is64 ? r : (r & 0xffffffffull);
}

ScalarValue Transfer64(std::uint8_t op, const ScalarValue& dst,
                       const ScalarValue& src) {
  ScalarValue res;  // starts fully unknown
  switch (op) {
    case kBpfAdd: {
      res.tnum = TnumAdd(dst.tnum, src.tnum);
      if (!SignedAddOverflows(dst.smin, src.smin) &&
          !SignedAddOverflows(dst.smax, src.smax)) {
        res.smin = dst.smin + src.smin;
        res.smax = dst.smax + src.smax;
      }
      if (dst.umin + src.umin >= dst.umin && dst.umax + src.umax >= dst.umax) {
        res.umin = dst.umin + src.umin;
        res.umax = dst.umax + src.umax;
      }
      break;
    }
    case kBpfSub: {
      res.tnum = TnumSub(dst.tnum, src.tnum);
      if (!SignedSubOverflows(dst.smin, src.smax) &&
          !SignedSubOverflows(dst.smax, src.smin)) {
        res.smin = dst.smin - src.smax;
        res.smax = dst.smax - src.smin;
      }
      if (dst.umin >= src.umax) {
        res.umin = dst.umin - src.umax;
        res.umax = dst.umax - src.umin;
      }
      break;
    }
    case kBpfAnd: {
      res.tnum = TnumAnd(dst.tnum, src.tnum);
      res.umin = 0;
      res.umax = std::min(dst.umax, src.umax);
      break;
    }
    case kBpfOr: {
      res.tnum = TnumOr(dst.tnum, src.tnum);
      res.umin = std::max(dst.umin, src.umin);
      break;
    }
    case kBpfXor: {
      res.tnum = TnumXor(dst.tnum, src.tnum);
      break;
    }
    case kBpfMul: {
      res.tnum = TnumMul(dst.tnum, src.tnum);
      if (dst.smin >= 0 && src.smin >= 0 && dst.umax <= 0xffffffffull &&
          src.umax <= 0xffffffffull) {
        res.umin = dst.umin * src.umin;
        res.umax = dst.umax * src.umax;
      }
      break;
    }
    case kBpfDiv: {
      // Unsigned divide; divisor 0 yields 0. Result never exceeds the
      // dividend in either case.
      res.umin = 0;
      res.umax = dst.umax;
      break;
    }
    case kBpfMod: {
      // Modulus 0 leaves dst unchanged; otherwise result < divisor.
      res.umin = 0;
      res.umax = src.umin >= 1 ? std::min(dst.umax, src.umax - 1) : dst.umax;
      break;
    }
    case kBpfLsh: {
      if (src.IsConst()) {
        const std::uint8_t sh = static_cast<std::uint8_t>(src.ConstValue() & 63);
        res.tnum = TnumLshift(dst.tnum, sh);
        if (sh == 0 || (dst.umax >> (64 - sh)) == 0) {
          res.umin = dst.umin << sh;
          res.umax = dst.umax << sh;
        }
      }
      break;
    }
    case kBpfRsh: {
      if (src.IsConst()) {
        const std::uint8_t sh = static_cast<std::uint8_t>(src.ConstValue() & 63);
        res.tnum = TnumRshift(dst.tnum, sh);
        res.umin = dst.umin >> sh;
        res.umax = dst.umax >> sh;
      } else {
        res.umin = 0;
        res.umax = dst.umax;  // any shift amount only shrinks the value
      }
      break;
    }
    case kBpfArsh: {
      if (src.IsConst()) {
        const std::uint8_t sh = static_cast<std::uint8_t>(src.ConstValue() & 63);
        res.tnum = TnumArshift(dst.tnum, sh);
        res.smin = dst.smin >> sh;
        res.smax = dst.smax >> sh;
      }
      break;
    }
    default:
      break;  // unknown op: fully unknown result (structurally rejected)
  }
  if (!res.Sync()) {
    // A sound transfer function cannot produce an empty set from non-empty
    // inputs; fall back to unknown defensively.
    res = ScalarValue::Unknown();
  }
  return res;
}

// Refinement helpers: tighten and detect contradictions.
bool SetUmin(ScalarValue& v, std::uint64_t lo) {
  v.umin = std::max(v.umin, lo);
  return v.umin <= v.umax;
}
bool SetUmax(ScalarValue& v, std::uint64_t hi) {
  v.umax = std::min(v.umax, hi);
  return v.umin <= v.umax;
}
bool SetSmin(ScalarValue& v, std::int64_t lo) {
  v.smin = std::max(v.smin, lo);
  return v.smin <= v.smax;
}
bool SetSmax(ScalarValue& v, std::int64_t hi) {
  v.smax = std::min(v.smax, hi);
  return v.smin <= v.smax;
}

// 32-bit compares only refine (or decide) when the truncation is a no-op:
// unsigned forms need both operands within [0, 2^32), signed forms within
// [0, 2^31) so sign extension of the 32-bit view is the identity.
bool Is32CompareExact(std::uint8_t op, const ScalarValue& a,
                      const ScalarValue& b) {
  const bool is_signed =
      op == kBpfJsgt || op == kBpfJsge || op == kBpfJslt || op == kBpfJsle;
  const std::uint64_t limit = is_signed ? 0x7fffffffull : 0xffffffffull;
  return a.umax <= limit && b.umax <= limit;
}

}  // namespace

bool ScalarValue::Sync() {
  for (int round = 0; round < 2; ++round) {
    // Known bits bound the unsigned range.
    umin = std::max(umin, tnum.Min());
    umax = std::min(umax, tnum.Max());
    if (umin > umax) {
      return false;
    }
    // If the unsigned range does not cross the sign boundary, it equals the
    // signed range.
    if (static_cast<std::int64_t>(umin) <= static_cast<std::int64_t>(umax)) {
      smin = std::max(smin, static_cast<std::int64_t>(umin));
      smax = std::min(smax, static_cast<std::int64_t>(umax));
    }
    if (smin > smax) {
      return false;
    }
    // A sign-uniform signed range transfers to the unsigned views.
    if (smin >= 0 || smax < 0) {
      umin = std::max(umin, static_cast<std::uint64_t>(smin));
      umax = std::min(umax, static_cast<std::uint64_t>(smax));
      if (umin > umax) {
        return false;
      }
    }
    // The unsigned range bounds the known bits.
    const Tnum range = TnumRange(umin, umax);
    if (TnumsConflict(tnum, range)) {
      return false;
    }
    tnum = TnumIntersect(tnum, range);
  }
  return true;
}

bool ScalarValue::Covers(const ScalarValue& a, const ScalarValue& b) {
  return a.umin <= b.umin && a.umax >= b.umax && a.smin <= b.smin &&
         a.smax >= b.smax && TnumIn(a.tnum, b.tnum);
}

std::string ScalarValue::ToString() const {
  char buf[160];
  if (IsConst()) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(umin));
    return buf;
  }
  std::string out = "[";
  if (umin != 0 || umax != ~0ull) {
    std::snprintf(buf, sizeof(buf), "u:%llu..%llu",
                  static_cast<unsigned long long>(umin),
                  static_cast<unsigned long long>(umax));
    out += buf;
  }
  if (smin != INT64_MIN || smax != INT64_MAX) {
    std::snprintf(buf, sizeof(buf), "%ss:%lld..%lld",
                  out.size() > 1 ? " " : "", static_cast<long long>(smin),
                  static_cast<long long>(smax));
    out += buf;
  }
  if (tnum.mask != ~0ull) {
    std::snprintf(buf, sizeof(buf), "%stnum(%#llx/%#llx)",
                  out.size() > 1 ? " " : "",
                  static_cast<unsigned long long>(tnum.value),
                  static_cast<unsigned long long>(tnum.mask));
    out += buf;
  }
  if (out.size() == 1) {
    out += "unknown";
  }
  out += "]";
  return out;
}

ScalarValue ScalarCast32(const ScalarValue& v) { return Cast32(v); }

ScalarValue ScalarAluTransfer(std::uint8_t op, const ScalarValue& dst,
                              const ScalarValue& src, bool is64) {
  if (dst.IsConst() && src.IsConst()) {
    return ScalarValue::Const(
        ConstEval(op, dst.ConstValue(), src.ConstValue(), is64));
  }
  if (is64) {
    return Transfer64(op, dst, src);
  }
  // ALU32: operate on the 32-bit views, then truncate the result. Shift
  // counts mask by 31, so clamp constant counts before the 64-bit transfer.
  ScalarValue src32 = Cast32(src);
  if ((op == kBpfLsh || op == kBpfRsh || op == kBpfArsh) && src32.IsConst()) {
    src32 = ScalarValue::Const(src32.ConstValue() & 31);
  }
  ScalarValue res = Transfer64(op, Cast32(dst), src32);
  if (op == kBpfArsh) {
    // The 64-bit transfer sign-extended from bit 63, not bit 31; only the
    // tnum's low bits survive truncation soundly.
    ScalarValue t;
    t.tnum = TnumCast32(res.tnum);
    res = t;
  }
  return Cast32(res);
}

BranchOutcome EvalBranch(std::uint8_t op, bool is32, const ScalarValue& dst0,
                         const ScalarValue& src0) {
  ScalarValue dst = dst0;
  ScalarValue src = src0;
  if (is32) {
    dst = Cast32(dst);
    src = Cast32(src);
    if (!Is32CompareExact(op, dst, src)) {
      return BranchOutcome::kUnknown;
    }
  }
  switch (op) {
    case kBpfJeq:
      if (dst.IsConst() && src.IsConst()) {
        return dst.ConstValue() == src.ConstValue() ? BranchOutcome::kAlways
                                                    : BranchOutcome::kNever;
      }
      if (dst.umax < src.umin || dst.umin > src.umax ||
          dst.smax < src.smin || dst.smin > src.smax ||
          TnumsConflict(dst.tnum, src.tnum)) {
        return BranchOutcome::kNever;
      }
      return BranchOutcome::kUnknown;
    case kBpfJne: {
      const BranchOutcome eq = EvalBranch(kBpfJeq, false, dst, src);
      if (eq == BranchOutcome::kAlways) return BranchOutcome::kNever;
      if (eq == BranchOutcome::kNever) return BranchOutcome::kAlways;
      return BranchOutcome::kUnknown;
    }
    case kBpfJgt:
      if (dst.umin > src.umax) return BranchOutcome::kAlways;
      if (dst.umax <= src.umin) return BranchOutcome::kNever;
      return BranchOutcome::kUnknown;
    case kBpfJge:
      if (dst.umin >= src.umax) return BranchOutcome::kAlways;
      if (dst.umax < src.umin) return BranchOutcome::kNever;
      return BranchOutcome::kUnknown;
    case kBpfJlt:
      if (dst.umax < src.umin) return BranchOutcome::kAlways;
      if (dst.umin >= src.umax) return BranchOutcome::kNever;
      return BranchOutcome::kUnknown;
    case kBpfJle:
      if (dst.umax <= src.umin) return BranchOutcome::kAlways;
      if (dst.umin > src.umax) return BranchOutcome::kNever;
      return BranchOutcome::kUnknown;
    case kBpfJsgt:
      if (dst.smin > src.smax) return BranchOutcome::kAlways;
      if (dst.smax <= src.smin) return BranchOutcome::kNever;
      return BranchOutcome::kUnknown;
    case kBpfJsge:
      if (dst.smin >= src.smax) return BranchOutcome::kAlways;
      if (dst.smax < src.smin) return BranchOutcome::kNever;
      return BranchOutcome::kUnknown;
    case kBpfJslt:
      if (dst.smax < src.smin) return BranchOutcome::kAlways;
      if (dst.smin >= src.smax) return BranchOutcome::kNever;
      return BranchOutcome::kUnknown;
    case kBpfJsle:
      if (dst.smax <= src.smin) return BranchOutcome::kAlways;
      if (dst.smin > src.smax) return BranchOutcome::kNever;
      return BranchOutcome::kUnknown;
    case kBpfJset:
      if (src.IsConst()) {
        const std::uint64_t bits = src.ConstValue();
        if ((dst.tnum.value & bits) != 0) return BranchOutcome::kAlways;
        if (((dst.tnum.value | dst.tnum.mask) & bits) == 0) {
          return BranchOutcome::kNever;
        }
      }
      return BranchOutcome::kUnknown;
    default:
      return BranchOutcome::kUnknown;
  }
}

bool RefineBranch(std::uint8_t op, bool taken, bool is32, ScalarValue& dst,
                  ScalarValue& src) {
  if (is32 && !Is32CompareExact(op, dst, src)) {
    return true;  // truncated compare: no refinement, arm stays feasible
  }

  // Canonicalise "not taken" into the complementary predicate.
  if (!taken) {
    switch (op) {
      case kBpfJeq:
        op = kBpfJne;
        break;
      case kBpfJne:
        op = kBpfJeq;
        break;
      case kBpfJgt:
        op = kBpfJle;
        break;
      case kBpfJle:
        op = kBpfJgt;
        break;
      case kBpfJge:
        op = kBpfJlt;
        break;
      case kBpfJlt:
        op = kBpfJge;
        break;
      case kBpfJsgt:
        op = kBpfJsle;
        break;
      case kBpfJsle:
        op = kBpfJsgt;
        break;
      case kBpfJsge:
        op = kBpfJslt;
        break;
      case kBpfJslt:
        op = kBpfJsge;
        break;
      case kBpfJset: {
        // !(dst & bits): with a constant mask, those bits are known zero.
        if (src.IsConst()) {
          const std::uint64_t bits = src.ConstValue();
          if ((dst.tnum.value & bits) != 0) {
            return false;  // a known-set bit contradicts "not taken"
          }
          dst.tnum.mask &= ~bits;
          dst.tnum.value &= ~bits;
          return dst.Sync();
        }
        return true;
      }
      default:
        return true;
    }
  } else if (op == kBpfJset) {
    if (src.IsConst() && src.ConstValue() != 0) {
      return SetUmin(dst, 1) && dst.Sync();  // some bit set => nonzero
    }
    return true;
  }

  bool ok = true;
  switch (op) {
    case kBpfJeq: {
      if (TnumsConflict(dst.tnum, src.tnum)) {
        return false;
      }
      const Tnum t = TnumIntersect(dst.tnum, src.tnum);
      ok = SetUmin(dst, src.umin) && SetUmax(dst, src.umax) &&
           SetSmin(dst, src.smin) && SetSmax(dst, src.smax);
      dst.tnum = t;
      ok = ok && SetUmin(src, dst.umin) && SetUmax(src, dst.umax) &&
           SetSmin(src, dst.smin) && SetSmax(src, dst.smax);
      src.tnum = t;
      break;
    }
    case kBpfJne: {
      // Only a constant on one side lets us trim the other's endpoints.
      if (src.IsConst()) {
        const std::uint64_t c = src.ConstValue();
        if (dst.IsConst() && dst.ConstValue() == c) {
          return false;
        }
        if (dst.umin == c) ++dst.umin;
        if (dst.umax == c) --dst.umax;
        if (dst.umin > dst.umax) return false;
      } else if (dst.IsConst()) {
        const std::uint64_t c = dst.ConstValue();
        if (src.umin == c) ++src.umin;
        if (src.umax == c) --src.umax;
        if (src.umin > src.umax) return false;
      }
      break;
    }
    case kBpfJgt:
      if (src.umin == ~0ull || dst.umax == 0) return false;
      ok = SetUmin(dst, src.umin + 1) && SetUmax(src, dst.umax - 1);
      break;
    case kBpfJge:
      ok = SetUmin(dst, src.umin) && SetUmax(src, dst.umax);
      break;
    case kBpfJlt:
      if (src.umax == 0 || dst.umin == ~0ull) return false;
      ok = SetUmax(dst, src.umax - 1) && SetUmin(src, dst.umin + 1);
      break;
    case kBpfJle:
      ok = SetUmax(dst, src.umax) && SetUmin(src, dst.umin);
      break;
    case kBpfJsgt:
      if (src.smin == INT64_MAX || dst.smax == INT64_MIN) return false;
      ok = SetSmin(dst, src.smin + 1) && SetSmax(src, dst.smax - 1);
      break;
    case kBpfJsge:
      ok = SetSmin(dst, src.smin) && SetSmax(src, dst.smax);
      break;
    case kBpfJslt:
      if (src.smax == INT64_MIN || dst.smin == INT64_MAX) return false;
      ok = SetSmax(dst, src.smax - 1) && SetSmin(src, dst.smin + 1);
      break;
    case kBpfJsle:
      ok = SetSmax(dst, src.smax) && SetSmin(src, dst.smin);
      break;
    default:
      break;
  }
  return ok && dst.Sync() && src.Sync();
}

bool RegState::Covers(const RegState& a, const RegState& b) {
  if (a.type == RegType::kUninit) {
    // The covering exploration never read this register, so anything goes.
    return true;
  }
  if (a.type != b.type) {
    return false;
  }
  switch (a.type) {
    case RegType::kScalar:
      return ScalarValue::Covers(a.var, b.var);
    case RegType::kPtrToCtx:
    case RegType::kPtrToStack:
      return a.off == b.off && ScalarValue::Covers(a.var, b.var);
    case RegType::kPtrToMapValue:
    case RegType::kMapValueOrNull:
      return a.map_index == b.map_index && a.off == b.off &&
             ScalarValue::Covers(a.var, b.var);
    case RegType::kUninit:
      return true;
  }
  return false;
}

std::string RegState::ToString() const {
  char buf[64];
  switch (type) {
    case RegType::kUninit:
      return "uninit";
    case RegType::kScalar:
      return "scalar" + var.ToString();
    case RegType::kPtrToCtx:
    case RegType::kPtrToStack:
    case RegType::kPtrToMapValue:
    case RegType::kMapValueOrNull: {
      const char* base = type == RegType::kPtrToCtx ? "ctx"
                         : type == RegType::kPtrToStack
                             ? "fp"
                             : (type == RegType::kPtrToMapValue
                                    ? "map_value"
                                    : "map_value_or_null");
      std::snprintf(buf, sizeof(buf), "%s%+lld", base,
                    static_cast<long long>(off));
      std::string out = buf;
      if (!(var.IsConst() && var.ConstValue() == 0)) {
        out += "+var" + var.ToString();
      }
      return out;
    }
  }
  return "?";
}

bool AbstractState::operator==(const AbstractState& other) const {
  if (pc != other.pc || stack_init != other.stack_init) {
    return false;
  }
  for (int i = 0; i < kBpfNumRegs; ++i) {
    if (!(regs[i] == other.regs[i])) {
      return false;
    }
  }
  return true;
}

bool AbstractState::Covers(const AbstractState& a, const AbstractState& b) {
  if (a.pc != b.pc) {
    return false;
  }
  // Everything the covering exploration saw as initialized must be
  // initialized here too.
  if ((a.stack_init & ~b.stack_init).any()) {
    return false;
  }
  for (int i = 0; i < kBpfNumRegs; ++i) {
    if (!RegState::Covers(a.regs[i], b.regs[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace concord
