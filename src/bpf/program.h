// Policy program container.

#ifndef SRC_BPF_PROGRAM_H_
#define SRC_BPF_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/bpf/context.h"
#include "src/bpf/insn.h"
#include "src/bpf/maps.h"

namespace concord {

class JitProgram;  // src/bpf/jit/jit.h

// Hard program-size cap, as in classic eBPF.
inline constexpr std::size_t kMaxProgramInsns = 4096;

struct Program {
  std::string name;
  std::vector<Insn> insns;

  // Maps the program may reference via kConstMapIndex helper arguments.
  // Non-owning: maps belong to the PolicyModule / userspace controller and
  // must outlive every attached copy of the program.
  std::vector<BpfMap*> maps;

  // The context layout this program was written against. Set before
  // verification; attach points check it matches the hook's descriptor.
  const ContextDescriptor* ctx_desc = nullptr;

  // Set by Verifier::Verify on success. The VM refuses unverified programs.
  bool verified = false;

  // Filled in by the verifier: capability union of all helpers called.
  std::uint32_t used_capabilities = 0;

  // Filled in by the verifier: for each pc holding a map_lookup_elem call,
  // the constant map index every verified path passes in R1, or
  // kPolymorphicMapSite when different paths disagree. kNoMapSite
  // everywhere else. The JIT uses this to inline per-CPU array lookups.
  static constexpr std::int32_t kNoMapSite = -1;
  static constexpr std::int32_t kPolymorphicMapSite = -2;
  std::vector<std::int32_t> map_lookup_sites;

  // Native code for this program, set by PolicySpec::JitCompileAll after
  // verification when the JIT is enabled. Shared between copies of the
  // program so the executable mapping lives exactly as long as some attached
  // or in-flight copy references it. Null means "interpret".
  std::shared_ptr<const JitProgram> jit;
};

}  // namespace concord

#endif  // SRC_BPF_PROGRAM_H_
