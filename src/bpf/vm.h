// The policy-program interpreter — the reference execution tier.
//
// Executes verified programs only (CHECK-enforced): all memory-safety and
// termination arguments live in the verifier; the interpreter adds a
// belt-and-braces instruction budget and nothing else on the hot path.
// Attached policies normally run through the x86-64 JIT instead
// (src/bpf/jit/jit.h, dispatched via RunPolicyProgram); this interpreter
// defines the semantics the JIT must match bit-for-bit and is the fallback
// on unsupported platforms or with CONCORD_JIT=off. See docs/JIT.md.

#ifndef SRC_BPF_VM_H_
#define SRC_BPF_VM_H_

#include <cstdint>

#include "src/bpf/helpers.h"
#include "src/bpf/program.h"

namespace concord {

class BpfVm {
 public:
  // Paranoid runtime cap; the verifier already guarantees termination — every
  // admitted loop's back edge carries a per-path trip budget
  // (Verifier::Options::max_loop_trips) — so hitting this aborts. Sized above
  // the worst case a verified program can legally reach (every insn executed
  // once per trip of a maxed-out loop).
  static constexpr std::uint64_t kInsnBudget = 1ull << 26;

  // Runs `program` with R1 = `ctx` (size must equal the program's context
  // descriptor size). `hook_data` is an attach-point side channel passed to
  // helpers. Returns R0 at exit. When `steps_out` is non-null it receives
  // the number of instructions executed (lddw counts once) — written only at
  // exit, so the null default costs the hot path nothing. The WCET
  // differential tests compare this against the statically certified bound
  // (src/bpf/analysis/wcet.h).
  static std::uint64_t Run(const Program& program, void* ctx,
                           void* hook_data = nullptr,
                           std::uint64_t* steps_out = nullptr);
};

}  // namespace concord

#endif  // SRC_BPF_VM_H_
