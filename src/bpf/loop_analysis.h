// Back-edge discovery over the instruction stream.
//
// Verifier v2 admits loops, so the structural pass no longer rejects jumps
// with non-positive displacement. Instead this pass enumerates every back
// edge (a jump whose target pc is <= its own pc) and the set of loop headers
// (back-edge targets). The verifier uses the result to
//   - checkpoint abstract states at loop headers (for infinite-loop
//     detection and state-equivalence pruning),
//   - count per-path trips through each back edge against the trip budget,
//   - attribute state-budget blowups to the loop that caused them.

#ifndef SRC_BPF_LOOP_ANALYSIS_H_
#define SRC_BPF_LOOP_ANALYSIS_H_

#include <cstddef>
#include <vector>

#include "src/bpf/insn.h"

namespace concord {

struct BackEdge {
  std::size_t from_pc = 0;    // the jump instruction
  std::size_t header_pc = 0;  // its (backward) target
};

class LoopAnalysis {
 public:
  // `imm64_second[pc]` marks the pseudo slot of a lddw; those are never
  // jumps. Jump targets are assumed already validated (in range).
  static LoopAnalysis Analyze(const std::vector<Insn>& insns,
                              const std::vector<bool>& imm64_second);

  const std::vector<BackEdge>& back_edges() const { return back_edges_; }
  bool HasLoops() const { return !back_edges_.empty(); }

  bool IsHeader(std::size_t pc) const {
    return pc < is_header_.size() && is_header_[pc];
  }

  // Index into back_edges() for the jump at `from_pc`, or -1 if that
  // instruction is not a back-edge source.
  int EdgeIndex(std::size_t from_pc) const {
    return from_pc < edge_at_.size() ? edge_at_[from_pc] : -1;
  }

 private:
  std::vector<BackEdge> back_edges_;
  std::vector<bool> is_header_;
  std::vector<int> edge_at_;
};

}  // namespace concord

#endif  // SRC_BPF_LOOP_ANALYSIS_H_
