#include "src/bpf/vm.h"

#include <cstring>

#include "src/base/check.h"
#include "src/topology/thread_context.h"

namespace concord {
namespace {

std::uint64_t LoadSized(const void* addr, int width) {
  switch (width) {
    case 1: {
      std::uint8_t v;
      std::memcpy(&v, addr, 1);
      return v;
    }
    case 2: {
      std::uint16_t v;
      std::memcpy(&v, addr, 2);
      return v;
    }
    case 4: {
      std::uint32_t v;
      std::memcpy(&v, addr, 4);
      return v;
    }
    default: {
      std::uint64_t v;
      std::memcpy(&v, addr, 8);
      return v;
    }
  }
}

void StoreSized(void* addr, int width, std::uint64_t value) {
  switch (width) {
    case 1: {
      const std::uint8_t v = static_cast<std::uint8_t>(value);
      std::memcpy(addr, &v, 1);
      return;
    }
    case 2: {
      const std::uint16_t v = static_cast<std::uint16_t>(value);
      std::memcpy(addr, &v, 2);
      return;
    }
    case 4: {
      const std::uint32_t v = static_cast<std::uint32_t>(value);
      std::memcpy(addr, &v, 4);
      return;
    }
    default:
      std::memcpy(addr, &value, 8);
      return;
  }
}

std::uint64_t AluOp64(std::uint8_t op, std::uint64_t dst, std::uint64_t src,
                      bool is64 = true) {
  const unsigned shift_mask = is64 ? 63 : 31;
  switch (op) {
    case kBpfAdd:
      return dst + src;
    case kBpfSub:
      return dst - src;
    case kBpfMul:
      return dst * src;
    case kBpfDiv:
      return src == 0 ? 0 : dst / src;  // div-by-zero yields 0, as in eBPF
    case kBpfOr:
      return dst | src;
    case kBpfAnd:
      return dst & src;
    case kBpfLsh:
      return dst << (src & shift_mask);
    case kBpfRsh:
      return dst >> (src & shift_mask);
    case kBpfNeg:
      return static_cast<std::uint64_t>(-static_cast<std::int64_t>(dst));
    case kBpfMod:
      return src == 0 ? dst : dst % src;
    case kBpfXor:
      return dst ^ src;
    case kBpfMov:
      return src;
    case kBpfArsh:
      if (!is64) {
        // 32-bit arithmetic shift sign-extends from bit 31.
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(
            static_cast<std::int32_t>(dst) >> (src & shift_mask)));
      }
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(dst) >>
                                        (src & shift_mask));
    default:
      CONCORD_CHECK(false && "unreachable ALU op");
      return 0;
  }
}

bool JmpTaken(std::uint8_t op, std::uint64_t dst, std::uint64_t src) {
  const auto sdst = static_cast<std::int64_t>(dst);
  const auto ssrc = static_cast<std::int64_t>(src);
  switch (op) {
    case kBpfJeq:
      return dst == src;
    case kBpfJgt:
      return dst > src;
    case kBpfJge:
      return dst >= src;
    case kBpfJset:
      return (dst & src) != 0;
    case kBpfJne:
      return dst != src;
    case kBpfJsgt:
      return sdst > ssrc;
    case kBpfJsge:
      return sdst >= ssrc;
    case kBpfJlt:
      return dst < src;
    case kBpfJle:
      return dst <= src;
    case kBpfJslt:
      return sdst < ssrc;
    case kBpfJsle:
      return sdst <= ssrc;
    default:
      CONCORD_CHECK(false && "unreachable JMP op");
      return false;
  }
}

}  // namespace

std::uint64_t BpfVm::Run(const Program& program, void* ctx, void* hook_data,
                         std::uint64_t* steps_out) {
  CONCORD_CHECK(program.verified);

  std::uint64_t regs[kBpfNumRegs] = {};
  alignas(8) std::uint8_t stack[kBpfStackSize];
  regs[kBpfReg1] = reinterpret_cast<std::uint64_t>(ctx);
  regs[kBpfReg10] = reinterpret_cast<std::uint64_t>(stack + kBpfStackSize);

  VmEnv env;
  env.program = &program;
  env.hook_data = hook_data;
  env.cpu = Self().vcpu;

  const Insn* insns = program.insns.data();
  const std::size_t count = program.insns.size();
  std::size_t pc = 0;
  std::uint64_t steps = 0;

  while (true) {
    CONCORD_CHECK(pc < count);
    CONCORD_CHECK(++steps <= kInsnBudget);
    const Insn& insn = insns[pc];
    const std::uint8_t cls = insn.Class();

    switch (cls) {
      case kBpfClassAlu64: {
        const std::uint64_t src = insn.UsesSrcReg()
                                      ? regs[insn.src]
                                      : static_cast<std::uint64_t>(
                                            static_cast<std::int64_t>(insn.imm));
        regs[insn.dst] = AluOp64(insn.AluOp(), regs[insn.dst], src);
        ++pc;
        break;
      }
      case kBpfClassAlu32: {
        const std::uint64_t src =
            insn.UsesSrcReg()
                ? (regs[insn.src] & 0xffffffffull)
                : static_cast<std::uint64_t>(static_cast<std::uint32_t>(insn.imm));
        const std::uint64_t result =
            AluOp64(insn.AluOp(), regs[insn.dst] & 0xffffffffull, src,
                    /*is64=*/false);
        regs[insn.dst] = result & 0xffffffffull;  // 32-bit ops zero-extend
        ++pc;
        break;
      }
      case kBpfClassLdx: {
        const int width = ByteWidth(insn.Size());
        const auto* addr =
            reinterpret_cast<const void*>(regs[insn.src] + insn.off);
        regs[insn.dst] = LoadSized(addr, width);
        ++pc;
        break;
      }
      case kBpfClassStx: {
        const int width = ByteWidth(insn.Size());
        auto* addr = reinterpret_cast<void*>(regs[insn.dst] + insn.off);
        if (insn.Mode() == kBpfModeAtomic) {
          if (width == 8) {
            __atomic_fetch_add(reinterpret_cast<std::uint64_t*>(addr),
                               regs[insn.src], __ATOMIC_RELAXED);
          } else {
            __atomic_fetch_add(reinterpret_cast<std::uint32_t*>(addr),
                               static_cast<std::uint32_t>(regs[insn.src]),
                               __ATOMIC_RELAXED);
          }
        } else {
          StoreSized(addr, width, regs[insn.src]);
        }
        ++pc;
        break;
      }
      case kBpfClassSt: {
        const int width = ByteWidth(insn.Size());
        auto* addr = reinterpret_cast<void*>(regs[insn.dst] + insn.off);
        StoreSized(addr, width,
                   static_cast<std::uint64_t>(static_cast<std::int64_t>(insn.imm)));
        ++pc;
        break;
      }
      case kBpfClassLd: {
        // Only LD_IMM64 reaches here (verifier enforces).
        const std::uint64_t lo = static_cast<std::uint32_t>(insn.imm);
        const std::uint64_t hi = static_cast<std::uint32_t>(insns[pc + 1].imm);
        regs[insn.dst] = lo | (hi << 32);
        pc += 2;
        break;
      }
      case kBpfClassJmp32: {
        const std::uint8_t op = insn.JmpOp();
        const std::uint64_t src =
            insn.UsesSrcReg()
                ? (regs[insn.src] & 0xffffffffull)
                : static_cast<std::uint64_t>(static_cast<std::uint32_t>(insn.imm));
        // Signed forms compare the sign-extended 32-bit views.
        const std::uint64_t dst32 = regs[insn.dst] & 0xffffffffull;
        const std::uint64_t sdst = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(dst32)));
        const std::uint64_t ssrc = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(src)));
        const bool is_signed = op == kBpfJsgt || op == kBpfJsge ||
                               op == kBpfJslt || op == kBpfJsle;
        const bool taken = is_signed ? JmpTaken(op, sdst, ssrc)
                                     : JmpTaken(op, dst32, src);
        if (taken) {
          pc = static_cast<std::size_t>(static_cast<std::int64_t>(pc) + 1 +
                                        insn.off);
        } else {
          ++pc;
        }
        break;
      }
      case kBpfClassJmp: {
        const std::uint8_t op = insn.JmpOp();
        if (op == kBpfExit) {
          if (steps_out != nullptr) {
            *steps_out = steps;
          }
          return regs[kBpfReg0];
        }
        if (op == kBpfCall) {
          const HelperDef* helper =
              HelperRegistry::Global().Find(static_cast<std::uint32_t>(insn.imm));
          CONCORD_CHECK(helper != nullptr);
          regs[kBpfReg0] = helper->fn(regs[1], regs[2], regs[3], regs[4], regs[5],
                                      env);
          // R1-R5 are clobbered by calls, as in eBPF.
          regs[1] = regs[2] = regs[3] = regs[4] = regs[5] = 0;
          ++pc;
          break;
        }
        if (op == kBpfJa) {
          pc = static_cast<std::size_t>(static_cast<std::int64_t>(pc) + 1 +
                                        insn.off);
          break;
        }
        const std::uint64_t src = insn.UsesSrcReg()
                                      ? regs[insn.src]
                                      : static_cast<std::uint64_t>(
                                            static_cast<std::int64_t>(insn.imm));
        if (JmpTaken(op, regs[insn.dst], src)) {
          pc = static_cast<std::size_t>(static_cast<std::int64_t>(pc) + 1 +
                                        insn.off);
        } else {
          ++pc;
        }
        break;
      }
      default:
        CONCORD_CHECK(false && "unreachable instruction class");
    }
  }
}

}  // namespace concord
