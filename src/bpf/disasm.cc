#include <cstdio>

#include "src/bpf/insn.h"

namespace concord {
namespace {

const char* AluOpName(std::uint8_t op) {
  switch (op) {
    case kBpfAdd:
      return "add";
    case kBpfSub:
      return "sub";
    case kBpfMul:
      return "mul";
    case kBpfDiv:
      return "div";
    case kBpfOr:
      return "or";
    case kBpfAnd:
      return "and";
    case kBpfLsh:
      return "lsh";
    case kBpfRsh:
      return "rsh";
    case kBpfNeg:
      return "neg";
    case kBpfMod:
      return "mod";
    case kBpfXor:
      return "xor";
    case kBpfMov:
      return "mov";
    case kBpfArsh:
      return "arsh";
    default:
      return "alu?";
  }
}

const char* JmpOpName(std::uint8_t op) {
  switch (op) {
    case kBpfJa:
      return "ja";
    case kBpfJeq:
      return "jeq";
    case kBpfJgt:
      return "jgt";
    case kBpfJge:
      return "jge";
    case kBpfJset:
      return "jset";
    case kBpfJne:
      return "jne";
    case kBpfJsgt:
      return "jsgt";
    case kBpfJsge:
      return "jsge";
    case kBpfJlt:
      return "jlt";
    case kBpfJle:
      return "jle";
    case kBpfJslt:
      return "jslt";
    case kBpfJsle:
      return "jsle";
    default:
      return "jmp?";
  }
}

const char* SizeSuffix(std::uint8_t size) {
  switch (size) {
    case kBpfSizeB:
      return "b";
    case kBpfSizeH:
      return "h";
    case kBpfSizeW:
      return "w";
    case kBpfSizeDw:
      return "dw";
    default:
      return "?";
  }
}

}  // namespace

std::string DisassembleInsn(const Insn& insn) {
  char buf[96];
  switch (insn.Class()) {
    case kBpfClassAlu64:
    case kBpfClassAlu32: {
      const char* suffix = insn.Class() == kBpfClassAlu32 ? "32" : "";
      if (insn.UsesSrcReg()) {
        std::snprintf(buf, sizeof(buf), "%s%s r%d, r%d", AluOpName(insn.AluOp()),
                      suffix, insn.dst, insn.src);
      } else {
        std::snprintf(buf, sizeof(buf), "%s%s r%d, %d", AluOpName(insn.AluOp()),
                      suffix, insn.dst, insn.imm);
      }
      return buf;
    }
    case kBpfClassJmp:
    case kBpfClassJmp32: {
      const std::uint8_t op = insn.JmpOp();
      const char* suffix = insn.Class() == kBpfClassJmp32 ? "32" : "";
      if (op == kBpfExit) {
        return "exit";
      }
      if (op == kBpfCall) {
        std::snprintf(buf, sizeof(buf), "call %d", insn.imm);
        return buf;
      }
      if (op == kBpfJa) {
        std::snprintf(buf, sizeof(buf), "ja %+d", insn.off);
        return buf;
      }
      if (insn.UsesSrcReg()) {
        std::snprintf(buf, sizeof(buf), "%s%s r%d, r%d, %+d", JmpOpName(op), suffix,
                      insn.dst, insn.src, insn.off);
      } else {
        std::snprintf(buf, sizeof(buf), "%s%s r%d, %d, %+d", JmpOpName(op), suffix,
                      insn.dst, insn.imm, insn.off);
      }
      return buf;
    }
    case kBpfClassLdx:
      std::snprintf(buf, sizeof(buf), "ldx%s r%d, [r%d%+d]", SizeSuffix(insn.Size()),
                    insn.dst, insn.src, insn.off);
      return buf;
    case kBpfClassStx:
      if (insn.Mode() == kBpfModeAtomic) {
        std::snprintf(buf, sizeof(buf), "xadd%s [r%d%+d], r%d",
                      SizeSuffix(insn.Size()), insn.dst, insn.off, insn.src);
        return buf;
      }
      std::snprintf(buf, sizeof(buf), "stx%s [r%d%+d], r%d", SizeSuffix(insn.Size()),
                    insn.dst, insn.off, insn.src);
      return buf;
    case kBpfClassSt:
      std::snprintf(buf, sizeof(buf), "st%s [r%d%+d], %d", SizeSuffix(insn.Size()),
                    insn.dst, insn.off, insn.imm);
      return buf;
    case kBpfClassLd:
      std::snprintf(buf, sizeof(buf), "lddw r%d, <imm64 lo=0x%x>", insn.dst,
                    static_cast<unsigned>(insn.imm));
      return buf;
    default:
      std::snprintf(buf, sizeof(buf), "<bad opcode 0x%02x>", insn.opcode);
      return buf;
  }
}

}  // namespace concord
