// Mini file-lock table — the substrate for the paper's Figure 2(b) `lock2`
// workload.
//
// will-it-scale's lock2 has every thread repeatedly taking and dropping a
// POSIX file lock on its own file; in the kernel all of those operations
// serialize on the global file-lock list lock with short, write-only
// critical sections. This class models that: a global mutex-style lock (the
// template parameter — TicketLock = "Stock", ShflLock = "ShflLock" /
// "Concord-ShflLock") protecting an intrusive list of lock records.

#ifndef SRC_KERNELSIM_PROC_LOCKS_H_
#define SRC_KERNELSIM_PROC_LOCKS_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/sync/lock.h"

namespace concord {

template <Lockable GlobalLock>
class ProcLockTable {
 public:
  explicit ProcLockTable(std::uint32_t num_files = 1024)
      : records_(num_files) {}
  ProcLockTable(const ProcLockTable&) = delete;
  ProcLockTable& operator=(const ProcLockTable&) = delete;

  GlobalLock& global_lock() { return lock_; }

  // Takes a "file lock" on `file_id` for `owner`. Mirrors flock(): global
  // list lock, scan-and-insert, unlock. Returns false if already held.
  bool FileLock(std::uint32_t file_id, std::uint32_t owner) {
    CONCORD_DCHECK(file_id < records_.size());
    LockGuard<GlobalLock> guard(lock_);
    Record& record = records_[file_id];
    if (record.held) {
      return false;
    }
    record.held = true;
    record.owner = owner;
    record.generation += 1;
    ++live_locks_;
    return true;
  }

  bool FileUnlock(std::uint32_t file_id, std::uint32_t owner) {
    CONCORD_DCHECK(file_id < records_.size());
    LockGuard<GlobalLock> guard(lock_);
    Record& record = records_[file_id];
    if (!record.held || record.owner != owner) {
      return false;
    }
    record.held = false;
    --live_locks_;
    return true;
  }

  // One lock2 iteration: lock + unlock the caller's file.
  void LockUnlockCycle(std::uint32_t file_id, std::uint32_t owner) {
    const bool locked = FileLock(file_id, owner);
    CONCORD_DCHECK(locked);
    const bool unlocked = FileUnlock(file_id, owner);
    CONCORD_DCHECK(unlocked);
    (void)locked;
    (void)unlocked;
  }

  std::uint64_t live_locks() {
    LockGuard<GlobalLock> guard(lock_);
    return live_locks_;
  }

 private:
  struct Record {
    bool held = false;
    std::uint32_t owner = 0;
    std::uint64_t generation = 0;
  };

  GlobalLock lock_;
  std::vector<Record> records_;  // guarded by lock_
  std::uint64_t live_locks_ = 0;
};

}  // namespace concord

#endif  // SRC_KERNELSIM_PROC_LOCKS_H_
