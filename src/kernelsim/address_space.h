// Mini virtual-memory subsystem — the substrate for the paper's Figure 2(a)
// `page_fault2` workload.
//
// A real page_fault2 iteration mmaps anonymous memory, stores to every page
// (each store faults: mmap_sem is read-locked, the VMA is found, a zeroed
// page is installed) and munmaps (mmap_sem write-locked). This class models
// exactly the lock-relevant structure: an interval tree of VMAs guarded by a
// readers-writer "mmap_sem", a per-VMA page array, and page installation
// that does the real work (allocate + zero 4 KiB) so the read-side critical
// path has kernel-realistic weight.
//
// The lock type is a template parameter: NeutralRwLock = "Stock",
// BravoLock<...> = "BRAVO", BravoLock with a Concord rw_mode policy =
// "Concord-BRAVO".

#ifndef SRC_KERNELSIM_ADDRESS_SPACE_H_
#define SRC_KERNELSIM_ADDRESS_SPACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/base/status.h"
#include "src/sync/lock.h"
#include "src/sync/rw_lock.h"

namespace concord {

inline constexpr std::uint64_t kPageSize = 4096;

template <SharedLockable MmapSem = NeutralRwLock>
class AddressSpace {
 public:
  AddressSpace() = default;
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  MmapSem& mmap_sem() { return mmap_sem_; }

  // Maps `length` bytes (rounded up to pages) of anonymous memory; returns
  // the start address. Takes mmap_sem for writing.
  std::uint64_t Mmap(std::uint64_t length) {
    const std::uint64_t pages = (length + kPageSize - 1) / kPageSize;
    WriteGuard<MmapSem> guard(mmap_sem_);
    const std::uint64_t start = next_addr_;
    next_addr_ += pages * kPageSize + kPageSize;  // guard gap
    auto vma = std::make_unique<Vma>();
    vma->start = start;
    vma->num_pages = pages;
    vma->pages = std::make_unique<std::atomic<std::uint8_t*>[]>(pages);
    vmas_[start] = std::move(vma);
    return start;
  }

  // Unmaps the VMA starting at `addr`. Takes mmap_sem for writing and frees
  // every installed page.
  Status Munmap(std::uint64_t addr) {
    std::unique_ptr<Vma> doomed;
    {
      WriteGuard<MmapSem> guard(mmap_sem_);
      auto it = vmas_.find(addr);
      if (it == vmas_.end()) {
        return InvalidArgumentError("munmap: no VMA at address");
      }
      doomed = std::move(it->second);
      vmas_.erase(it);
    }
    // Page teardown happens outside the lock, as in the kernel's unmap path
    // after the VMA is detached.
    for (std::uint64_t i = 0; i < doomed->num_pages; ++i) {
      delete[] doomed->pages[i].exchange(nullptr, std::memory_order_acq_rel);
    }
    return Status::Ok();
  }

  // Handles a store to `addr`: read-locks mmap_sem, resolves the VMA and
  // installs a zeroed page if none is present (first touch). Returns
  // kNotFound for addresses outside any VMA (a "SIGSEGV").
  Status HandlePageFault(std::uint64_t addr) {
    ReadGuard<MmapSem> guard(mmap_sem_);
    Vma* vma = FindVmaLocked(addr);
    if (vma == nullptr) {
      return NotFoundError("page fault outside any VMA");
    }
    const std::uint64_t index = (addr - vma->start) / kPageSize;
    std::atomic<std::uint8_t*>& slot = vma->pages[index];
    if (slot.load(std::memory_order_acquire) == nullptr) {
      // Allocate + zero: the real cost of an anonymous fault.
      auto* page = new std::uint8_t[kPageSize];
      std::memset(page, 0, kPageSize);
      std::uint8_t* expected = nullptr;
      if (!slot.compare_exchange_strong(expected, page,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        delete[] page;  // lost the race; another faulting thread installed
      } else {
        faults_served_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // The store itself. Relaxed atomic byte store: concurrent faulters may
    // legitimately touch the same byte.
    __atomic_store_n(
        &vma->pages[index].load(std::memory_order_relaxed)[addr % kPageSize], 1,
        __ATOMIC_RELAXED);
    return Status::Ok();
  }

  // Read-only VMA lookup (e.g. /proc/pid/maps style readers).
  bool HasMapping(std::uint64_t addr) {
    ReadGuard<MmapSem> guard(mmap_sem_);
    return FindVmaLocked(addr) != nullptr;
  }

  std::uint64_t faults_served() const {
    return faults_served_.load(std::memory_order_relaxed);
  }
  std::size_t vma_count() {
    ReadGuard<MmapSem> guard(mmap_sem_);
    return vmas_.size();
  }

  ~AddressSpace() {
    for (auto& [start, vma] : vmas_) {
      for (std::uint64_t i = 0; i < vma->num_pages; ++i) {
        delete[] vma->pages[i].load(std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Vma {
    std::uint64_t start = 0;
    std::uint64_t num_pages = 0;
    std::unique_ptr<std::atomic<std::uint8_t*>[]> pages;  // value-initialized
  };

  // Pre: mmap_sem held (read or write).
  Vma* FindVmaLocked(std::uint64_t addr) {
    auto it = vmas_.upper_bound(addr);
    if (it == vmas_.begin()) {
      return nullptr;
    }
    --it;
    Vma* vma = it->second.get();
    const std::uint64_t end = vma->start + vma->num_pages * kPageSize;
    return addr < end ? vma : nullptr;
  }

  MmapSem mmap_sem_;
  std::map<std::uint64_t, std::unique_ptr<Vma>> vmas_;
  std::uint64_t next_addr_ = 0x7f0000000000ull;
  std::atomic<std::uint64_t> faults_served_{0};
};

}  // namespace concord

#endif  // SRC_KERNELSIM_ADDRESS_SPACE_H_
