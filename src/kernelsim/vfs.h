// Mini VFS namespace — the nested-locking workload behind the paper's "lock
// inheritance" use case (§3.1.1).
//
// Rename in Linux acquires a process-wide rename lock plus the locks of both
// directories (up to ~12 locks on real paths). A renamer stuck at the tail
// of a directory lock's FIFO queue while already holding the rename lock
// stalls every other rename in the system — the pathological pattern C3
// fixes by letting waiters that already hold locks declare it
// (ThreadContext::locks_held, maintained by ShflLock) so the shuffler can
// boost them.

#ifndef SRC_KERNELSIM_VFS_H_
#define SRC_KERNELSIM_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/sync/shfllock.h"

namespace concord {

class VfsNamespace {
 public:
  explicit VfsNamespace(std::uint32_t num_dirs);
  VfsNamespace(const VfsNamespace&) = delete;
  VfsNamespace& operator=(const VfsNamespace&) = delete;

  std::uint32_t num_dirs() const {
    return static_cast<std::uint32_t>(dirs_.size());
  }
  ShflLock& rename_lock() { return rename_lock_; }
  ShflLock& dir_lock(std::uint32_t dir) { return dirs_[dir]->lock; }

  // Creates `name` in `dir` with inode payload `value`.
  Status Create(std::uint32_t dir, const std::string& name, std::uint64_t value);

  Status Unlink(std::uint32_t dir, const std::string& name);

  // Returns the inode value, or kNotFound.
  StatusOr<std::uint64_t> Lookup(std::uint32_t dir, const std::string& name);

  // Moves src_dir/src_name to dst_dir/dst_name. Takes the global rename lock
  // and then both directory locks in index order (deadlock avoidance, as in
  // the kernel's lock_rename).
  Status Rename(std::uint32_t src_dir, const std::string& src_name,
                std::uint32_t dst_dir, const std::string& dst_name);

  std::uint64_t total_entries();

 private:
  struct Directory {
    ShflLock lock;
    std::unordered_map<std::string, std::uint64_t> entries;  // guarded by lock
  };

  ShflLock rename_lock_;
  std::vector<std::unique_ptr<Directory>> dirs_;
};

}  // namespace concord

#endif  // SRC_KERNELSIM_VFS_H_
