// Global-lock hash table — the paper's Figure 2(c) worst-case benchmark
// (Triplett et al.'s resizable-hash-table setup, single global lock).
//
// Critical sections are a handful of pointer operations, so any per-
// acquisition policy cost (hook dispatch, BPF interpretation) is maximally
// visible — exactly why the paper uses it to bound Concord's overhead at
// ~20%.

#ifndef SRC_KERNELSIM_HASHTABLE_H_
#define SRC_KERNELSIM_HASHTABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sync/lock.h"

namespace concord {

template <Lockable GlobalLock>
class GlobalLockHashTable {
 public:
  explicit GlobalLockHashTable(std::uint32_t bucket_bits = 13)
      : mask_((1u << bucket_bits) - 1), buckets_(1u << bucket_bits, nullptr) {}
  GlobalLockHashTable(const GlobalLockHashTable&) = delete;
  GlobalLockHashTable& operator=(const GlobalLockHashTable&) = delete;

  ~GlobalLockHashTable() {
    for (Node* head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        delete head;
        head = next;
      }
    }
  }

  GlobalLock& global_lock() { return lock_; }

  bool Insert(std::uint64_t key, std::uint64_t value) {
    LockGuard<GlobalLock> guard(lock_);
    Node** bucket = &buckets_[Hash(key)];
    for (Node* node = *bucket; node != nullptr; node = node->next) {
      if (node->key == key) {
        return false;
      }
    }
    auto* node = new Node{key, value, *bucket};
    *bucket = node;
    ++size_;
    return true;
  }

  bool Lookup(std::uint64_t key, std::uint64_t* value_out) {
    LockGuard<GlobalLock> guard(lock_);
    for (Node* node = buckets_[Hash(key)]; node != nullptr; node = node->next) {
      if (node->key == key) {
        if (value_out != nullptr) {
          *value_out = node->value;
        }
        return true;
      }
    }
    return false;
  }

  bool Erase(std::uint64_t key) {
    LockGuard<GlobalLock> guard(lock_);
    Node** link = &buckets_[Hash(key)];
    while (*link != nullptr) {
      Node* node = *link;
      if (node->key == key) {
        *link = node->next;
        delete node;
        --size_;
        return true;
      }
      link = &node->next;
    }
    return false;
  }

  std::uint64_t Size() {
    LockGuard<GlobalLock> guard(lock_);
    return size_;
  }

 private:
  struct Node {
    std::uint64_t key;
    std::uint64_t value;
    Node* next;
  };

  std::uint64_t Hash(std::uint64_t key) const {
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key & mask_;
  }

  GlobalLock lock_;
  const std::uint64_t mask_;
  std::vector<Node*> buckets_;  // guarded by lock_
  std::uint64_t size_ = 0;      // guarded by lock_
};

}  // namespace concord

#endif  // SRC_KERNELSIM_HASHTABLE_H_
