#include "src/kernelsim/vfs.h"

namespace concord {

VfsNamespace::VfsNamespace(std::uint32_t num_dirs) {
  CONCORD_CHECK(num_dirs > 0);
  dirs_.reserve(num_dirs);
  for (std::uint32_t i = 0; i < num_dirs; ++i) {
    dirs_.push_back(std::make_unique<Directory>());
  }
}

Status VfsNamespace::Create(std::uint32_t dir, const std::string& name,
                            std::uint64_t value) {
  if (dir >= dirs_.size()) {
    return InvalidArgumentError("bad directory index");
  }
  ShflGuard guard(dirs_[dir]->lock);
  auto [it, inserted] = dirs_[dir]->entries.emplace(name, value);
  if (!inserted) {
    return FailedPreconditionError("entry '" + name + "' already exists");
  }
  return Status::Ok();
}

Status VfsNamespace::Unlink(std::uint32_t dir, const std::string& name) {
  if (dir >= dirs_.size()) {
    return InvalidArgumentError("bad directory index");
  }
  ShflGuard guard(dirs_[dir]->lock);
  if (dirs_[dir]->entries.erase(name) == 0) {
    return NotFoundError("entry '" + name + "'");
  }
  return Status::Ok();
}

StatusOr<std::uint64_t> VfsNamespace::Lookup(std::uint32_t dir,
                                             const std::string& name) {
  if (dir >= dirs_.size()) {
    return InvalidArgumentError("bad directory index");
  }
  ShflGuard guard(dirs_[dir]->lock);
  auto it = dirs_[dir]->entries.find(name);
  if (it == dirs_[dir]->entries.end()) {
    return NotFoundError("entry '" + name + "'");
  }
  return it->second;
}

Status VfsNamespace::Rename(std::uint32_t src_dir, const std::string& src_name,
                            std::uint32_t dst_dir, const std::string& dst_name) {
  if (src_dir >= dirs_.size() || dst_dir >= dirs_.size()) {
    return InvalidArgumentError("bad directory index");
  }
  // Global rename lock first, then directory locks in index order — the
  // kernel's lock_rename() protocol. While waiting for the directory locks
  // this thread already holds rename_lock_, so its ThreadContext advertises
  // locks_held >= 1 to any shuffling policy on the directory locks.
  ShflGuard rename_guard(rename_lock_);
  if (src_dir == dst_dir) {
    ShflGuard dir_guard(dirs_[src_dir]->lock);
    auto& entries = dirs_[src_dir]->entries;
    auto it = entries.find(src_name);
    if (it == entries.end()) {
      return NotFoundError("entry '" + src_name + "'");
    }
    const std::uint64_t value = it->second;
    entries.erase(it);
    entries[dst_name] = value;
    return Status::Ok();
  }

  const std::uint32_t first = src_dir < dst_dir ? src_dir : dst_dir;
  const std::uint32_t second = src_dir < dst_dir ? dst_dir : src_dir;
  ShflGuard first_guard(dirs_[first]->lock);
  ShflGuard second_guard(dirs_[second]->lock);

  auto& src_entries = dirs_[src_dir]->entries;
  auto it = src_entries.find(src_name);
  if (it == src_entries.end()) {
    return NotFoundError("entry '" + src_name + "'");
  }
  const std::uint64_t value = it->second;
  src_entries.erase(it);
  dirs_[dst_dir]->entries[dst_name] = value;
  return Status::Ok();
}

std::uint64_t VfsNamespace::total_entries() {
  std::uint64_t total = 0;
  for (auto& dir : dirs_) {
    ShflGuard guard(dir->lock);
    total += dir->entries.size();
  }
  return total;
}

}  // namespace concord
