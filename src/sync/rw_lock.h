// Readers-writer locks.
//
// NeutralRwLock is the "stock" centralized readers-writer lock (one counter
// word, writer preference to avoid writer starvation) — the baseline in the
// paper's Figure 2(a). PerSocketRwLock is the distributed flavour the BRAVO
// and lock-switching use cases upgrade to for read-mostly workloads: readers
// touch only their own socket's counter line; writers pay a scan of all
// sockets.

#ifndef SRC_SYNC_RW_LOCK_H_
#define SRC_SYNC_RW_LOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/base/cacheline.h"
#include "src/base/spinwait.h"
#include "src/topology/thread_context.h"

namespace concord {

class CONCORD_CACHE_ALIGNED NeutralRwLock {
 public:
  NeutralRwLock() = default;
  NeutralRwLock(const NeutralRwLock&) = delete;
  NeutralRwLock& operator=(const NeutralRwLock&) = delete;

  void ReadLock() {
    SpinWait spin;
    while (true) {
      if (writers_waiting_.load(std::memory_order_relaxed) == 0) {
        std::int32_t s = state_.load(std::memory_order_relaxed);
        if (s >= 0 &&
            state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
      }
      spin.Once();
    }
  }

  bool TryReadLock() {
    if (writers_waiting_.load(std::memory_order_relaxed) != 0) {
      return false;
    }
    std::int32_t s = state_.load(std::memory_order_relaxed);
    return s >= 0 && state_.compare_exchange_strong(s, s + 1,
                                                    std::memory_order_acquire,
                                                    std::memory_order_relaxed);
  }

  void ReadUnlock() { state_.fetch_sub(1, std::memory_order_release); }

  void WriteLock() {
    writers_waiting_.fetch_add(1, std::memory_order_relaxed);
    SpinWait spin;
    std::int32_t expected = 0;
    while (!state_.compare_exchange_weak(expected, -1, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      expected = 0;
      spin.Once();
    }
    writers_waiting_.fetch_sub(1, std::memory_order_relaxed);
  }

  bool TryWriteLock() {
    std::int32_t expected = 0;
    return state_.compare_exchange_strong(expected, -1, std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void WriteUnlock() { state_.store(0, std::memory_order_release); }

  std::int32_t reader_count() const {
    const std::int32_t s = state_.load(std::memory_order_relaxed);
    return s > 0 ? s : 0;
  }
  bool write_locked() const { return state_.load(std::memory_order_relaxed) < 0; }

 private:
  std::atomic<std::int32_t> state_{0};  // >0 readers, -1 writer
  std::atomic<std::uint32_t> writers_waiting_{0};
};

// Distributed ("big-reader") readers-writer lock: one reader counter per
// virtual socket. Reader cost is a CAS-free increment on a socket-local line;
// writer cost is O(sockets).
class PerSocketRwLock {
 public:
  PerSocketRwLock()
      : num_sockets_(MachineTopology::Global().num_sockets()),
        counters_(std::make_unique<CacheLinePadded<std::atomic<std::int32_t>>[]>(
            num_sockets_)) {}
  PerSocketRwLock(const PerSocketRwLock&) = delete;
  PerSocketRwLock& operator=(const PerSocketRwLock&) = delete;

  void ReadLock() {
    auto& counter = *counters_[Self().socket % num_sockets_];
    SpinWait spin;
    while (true) {
      counter.fetch_add(1, std::memory_order_acquire);
      if (writer_.load(std::memory_order_acquire) == 0) {
        return;
      }
      counter.fetch_sub(1, std::memory_order_release);
      while (writer_.load(std::memory_order_acquire) != 0) {
        spin.Once();
      }
    }
  }

  void ReadUnlock() {
    counters_[Self().socket % num_sockets_]->fetch_sub(1,
                                                       std::memory_order_release);
  }

  void WriteLock() {
    // Serialize writers first, then block out readers.
    SpinWait spin;
    std::uint32_t expected = 0;
    while (!writer_.compare_exchange_weak(expected, 1, std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      expected = 0;
      spin.Once();
    }
    for (std::uint32_t s = 0; s < num_sockets_; ++s) {
      SpinWait drain;
      while (counters_[s]->load(std::memory_order_acquire) != 0) {
        drain.Once();
      }
    }
  }

  void WriteUnlock() { writer_.store(0, std::memory_order_release); }

  std::uint32_t num_sockets() const { return num_sockets_; }

 private:
  const std::uint32_t num_sockets_;
  std::unique_ptr<CacheLinePadded<std::atomic<std::int32_t>>[]> counters_;
  CONCORD_CACHE_ALIGNED std::atomic<std::uint32_t> writer_{0};
};

}  // namespace concord

#endif  // SRC_SYNC_RW_LOCK_H_
