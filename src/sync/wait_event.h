// Kernel-style wait events (wait queues) — another §6 extension target.
//
// The Btrfs pattern the paper describes (§3.1.1(iii)) is a non-blocking lock
// paired with ad-hoc wait events for the blocking cases; Concord's lock
// switching exists partly to subsume that pattern. This substrate provides
// the wait-event half: WaitUntil(pred) parks until a Wake makes the
// predicate true.

#ifndef SRC_SYNC_WAIT_EVENT_H_
#define SRC_SYNC_WAIT_EVENT_H_

#include <atomic>
#include <cstdint>

#include "src/base/cacheline.h"
#include "src/sync/parking_lot.h"

namespace concord {

class CONCORD_CACHE_ALIGNED WaitEvent {
 public:
  WaitEvent() = default;
  WaitEvent(const WaitEvent&) = delete;
  WaitEvent& operator=(const WaitEvent&) = delete;

  // Blocks the caller until `pred()` is true. The predicate is re-evaluated
  // after every wake-up (spurious wake-ups are absorbed). `pred` must become
  // true only via state changes followed by WakeAll/WakeOne.
  template <typename Pred>
  void WaitUntil(Pred pred) {
    while (true) {
      const std::uint32_t epoch = epoch_.load(std::memory_order_acquire);
      if (pred()) {
        return;
      }
      waiters_.fetch_add(1, std::memory_order_relaxed);
      ParkingLot::Park(&epoch_, epoch);
      waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Like WaitUntil but gives up after `timeout_ns`; returns pred() at exit.
  template <typename Pred>
  bool WaitUntilFor(Pred pred, std::uint64_t timeout_ns) {
    const std::uint64_t deadline = NowNs() + timeout_ns;
    while (true) {
      const std::uint32_t epoch = epoch_.load(std::memory_order_acquire);
      if (pred()) {
        return true;
      }
      const std::uint64_t now = NowNs();
      if (now >= deadline) {
        return pred();
      }
      waiters_.fetch_add(1, std::memory_order_relaxed);
      ParkingLot::Park(&epoch_, epoch, deadline - now);
      waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Wakes one / all waiters (callers change the watched state first).
  void WakeOne() {
    epoch_.fetch_add(1, std::memory_order_release);
    if (waiters_.load(std::memory_order_relaxed) != 0) {
      ParkingLot::UnparkOne(&epoch_);
    }
  }

  void WakeAll() {
    epoch_.fetch_add(1, std::memory_order_release);
    if (waiters_.load(std::memory_order_relaxed) != 0) {
      ParkingLot::UnparkAll(&epoch_);
    }
  }

  std::uint32_t waiters_approx() const {
    return waiters_.load(std::memory_order_relaxed);
  }

 private:
  static std::uint64_t NowNs();

  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
};

}  // namespace concord

#endif  // SRC_SYNC_WAIT_EVENT_H_
