// Common lock interfaces and RAII guards.
//
// Locks in this library are concrete types (no virtual dispatch on the
// acquire path); the shared vocabulary is a pair of duck-typed concepts plus
// guard templates. Anything satisfying Lockable works with the kernel-sim
// subsystems and the benchmark drivers.

#ifndef SRC_SYNC_LOCK_H_
#define SRC_SYNC_LOCK_H_

#include <concepts>

namespace concord {

template <typename T>
concept Lockable = requires(T lock) {
  { lock.Lock() } -> std::same_as<void>;
  { lock.Unlock() } -> std::same_as<void>;
  { lock.TryLock() } -> std::same_as<bool>;
};

template <typename T>
concept SharedLockable = requires(T lock) {
  { lock.ReadLock() } -> std::same_as<void>;
  { lock.ReadUnlock() } -> std::same_as<void>;
  { lock.WriteLock() } -> std::same_as<void>;
  { lock.WriteUnlock() } -> std::same_as<void>;
};

template <Lockable L>
class LockGuard {
 public:
  explicit LockGuard(L& lock) : lock_(lock) { lock_.Lock(); }
  ~LockGuard() { lock_.Unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  L& lock_;
};

template <SharedLockable L>
class ReadGuard {
 public:
  explicit ReadGuard(L& lock) : lock_(lock) { lock_.ReadLock(); }
  ~ReadGuard() { lock_.ReadUnlock(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  L& lock_;
};

template <SharedLockable L>
class WriteGuard {
 public:
  explicit WriteGuard(L& lock) : lock_(lock) { lock_.WriteLock(); }
  ~WriteGuard() { lock_.WriteUnlock(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  L& lock_;
};

}  // namespace concord

#endif  // SRC_SYNC_LOCK_H_
