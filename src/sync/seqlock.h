// Sequence lock — the kernel's seqlock, one of the "other synchronization
// mechanisms" §6 proposes extending Concord to.
//
// Writers serialize on an internal lock and bump a sequence counter around
// the update (odd = write in progress). Readers take no lock at all: they
// snapshot the counter, read, and retry if the counter moved or was odd.
// Reads are wait-free in the absence of writers and never block writers —
// the opposite bias of a readers-writer lock.

#ifndef SRC_SYNC_SEQLOCK_H_
#define SRC_SYNC_SEQLOCK_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "src/base/cacheline.h"
#include "src/base/check.h"
#include "src/sync/tas_lock.h"

namespace concord {

class CONCORD_CACHE_ALIGNED SeqLock {
 public:
  SeqLock() = default;
  SeqLock(const SeqLock&) = delete;
  SeqLock& operator=(const SeqLock&) = delete;

  // --- reader side -----------------------------------------------------------

  // Begins a read section; returns the snapshot to pass to ReadRetry. Spins
  // past in-progress writes so the caller always reads from a stable state.
  std::uint32_t ReadBegin() const {
    SpinWait spin;
    while (true) {
      const std::uint32_t seq = sequence_.load(std::memory_order_acquire);
      if ((seq & 1u) == 0) {
        return seq;
      }
      spin.Once();
    }
  }

  // True if the read raced a writer and must be retried.
  bool ReadRetry(std::uint32_t snapshot) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return sequence_.load(std::memory_order_relaxed) != snapshot;
  }

  // --- writer side -----------------------------------------------------------

  void WriteLock() {
    writer_lock_.Lock();
    const std::uint32_t seq = sequence_.load(std::memory_order_relaxed);
    sequence_.store(seq + 1, std::memory_order_relaxed);  // odd: in progress
    std::atomic_thread_fence(std::memory_order_release);
  }

  void WriteUnlock() {
    const std::uint32_t seq = sequence_.load(std::memory_order_relaxed);
    CONCORD_DCHECK((seq & 1u) == 1u);
    sequence_.store(seq + 1, std::memory_order_release);  // even: stable
    writer_lock_.Unlock();
  }

  bool TryWriteLock() {
    if (!writer_lock_.TryLock()) {
      return false;
    }
    const std::uint32_t seq = sequence_.load(std::memory_order_relaxed);
    sequence_.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    return true;
  }

  std::uint32_t sequence() const {
    return sequence_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> sequence_{0};
  TtasLock writer_lock_;
};

// Convenience wrapper: a value published through a seqlock. `T` must be
// trivially copyable; readers may observe torn snapshots, which the retry
// loop discards. The storage is copied with relaxed byte-wise atomics so the
// racing read is defined behaviour (and ThreadSanitizer-clean) — the seqlock
// protocol, not the memory operations, provides the consistency.
template <typename T>
class SeqCount {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SeqCount() { StoreBytes(T{}); }
  explicit SeqCount(const T& initial) { StoreBytes(initial); }

  T Read() const {
    T out;
    std::uint32_t seq;
    do {
      seq = lock_.ReadBegin();
      LoadBytes(&out);
    } while (lock_.ReadRetry(seq));
    return out;
  }

  void Write(const T& next) {
    lock_.WriteLock();
    StoreBytes(next);
    lock_.WriteUnlock();
  }

  template <typename Fn>
  void Update(Fn mutate) {
    lock_.WriteLock();
    T current;
    LoadBytes(&current);
    mutate(current);
    StoreBytes(current);
    lock_.WriteUnlock();
  }

 private:
  void StoreBytes(const T& value) {
    const auto* src = reinterpret_cast<const unsigned char*>(&value);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      __atomic_store_n(&storage_[i], src[i], __ATOMIC_RELAXED);
    }
  }
  void LoadBytes(T* out) const {
    auto* dst = reinterpret_cast<unsigned char*>(out);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      dst[i] = __atomic_load_n(&storage_[i], __ATOMIC_RELAXED);
    }
  }

  SeqLock lock_;
  alignas(T) unsigned char storage_[sizeof(T)] = {};
};

}  // namespace concord

#endif  // SRC_SYNC_SEQLOCK_H_
