#include "src/sync/wait_event.h"

#include "src/base/time.h"

namespace concord {

std::uint64_t WaitEvent::NowNs() { return MonotonicNowNs(); }

}  // namespace concord
