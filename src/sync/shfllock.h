// ShflLock — queue lock with policy-driven waiter shuffling (SOSP '19).
//
// Structure: a test-and-set lock word guarded by an MCS-style waiter queue.
// The waiter at the head of the queue spins on the lock word; everyone else
// spins (or parks) on their own queue node. While the head waits — i.e. off
// the critical path — it acts as the *shuffler*: it walks the queue and pulls
// waiters matching the installed policy's cmp_node() into a group right
// behind itself, so lock handoffs within a group are cheap (e.g. same-socket
// handoffs under a NUMA policy).
//
// This implementation deviates from the SOSP version in ways that simplify
// userspace operation without changing the policy mechanism:
//   - lock stealing off the fast path is permitted only while the queue is
//     empty (bounded unfairness, deterministic tests);
//   - the shuffler is always the queue head (the paper also delegates the
//     role down the queue);
//   - blocking (spin-then-park) is a runtime property, not a compile-time
//     variant, so a policy can switch a lock between the rwlock-style
//     non-blocking and rwsem-style blocking regimes on the fly (§3.1.1).
//
// Safety guarantees kept regardless of installed policy (§4.2):
//   - mutual exclusion and handoff liveness do not depend on policy output:
//     cmp_node/skip_shuffle only influence queue order;
//   - shuffling rounds are bounded by min(policy bound, kShuffleRoundCap);
//   - each *waiter* can be overtaken at most min(policy bound, kBypassCap)
//     times; a saturated waiter freezes further reordering behind it;
//   - queue integrity is CHECKed after every shuffle round (node count across
//     the shuffled window must be preserved).

#ifndef SRC_SYNC_SHFLLOCK_H_
#define SRC_SYNC_SHFLLOCK_H_

#include <atomic>
#include <cstdint>

#include "src/base/cacheline.h"
#include "src/rcu/rcu.h"
#include "src/sync/policy_hooks.h"
#include "src/topology/thread_context.h"

namespace concord {

struct CONCORD_CACHE_ALIGNED ShflQNode {
  enum Status : std::uint32_t {
    kWaiting = 0,
    kParked = 1,
    kHead = 2,
  };

  std::atomic<ShflQNode*> next{nullptr};
  std::atomic<std::uint32_t> status{kWaiting};
  ThreadContext* ctx = nullptr;
  std::uint64_t enqueue_ns = 0;
  // Times this waiter has been overtaken by shuffle moves. Written only by
  // the (single) shuffler; read by the shuffler's starvation bound.
  std::uint32_t bypassed = 0;
};

class ShflLock {
 public:
  // Hard cap on shuffle rounds per head tenure, regardless of policy.
  static constexpr std::uint32_t kShuffleRoundCap = 1024;
  // Maximum nodes examined per shuffle round.
  static constexpr std::uint32_t kMaxShuffleScan = 128;
  // Hard cap on how often one waiter may be overtaken, regardless of policy.
  static constexpr std::uint32_t kBypassCap = 4096;

  ShflLock() = default;
  ~ShflLock();
  ShflLock(const ShflLock&) = delete;
  ShflLock& operator=(const ShflLock&) = delete;

  void Lock();
  void Unlock();
  // TryLock succeeds only when the lock is free AND unqueued. It fires no
  // policy/profiling hooks and maintains no hold-time accounting (matching
  // the kernel, where trylock fast paths bypass the slow-path
  // instrumentation points).
  bool TryLock();

  bool IsLocked() const {
    return locked_.load(std::memory_order_relaxed) != 0;
  }

  // --- Concord integration -------------------------------------------------

  // Atomically publishes a new hook table; returns the previous one. The
  // caller must free the old table only after an RCU grace period (the
  // Concord patcher does this; see src/concord/patch.h). Passing nullptr
  // reverts the lock to plain FIFO behaviour.
  const ShflHooks* InstallHooks(const ShflHooks* hooks) {
    return hooks_.Swap(const_cast<ShflHooks*>(hooks));
  }

  const ShflHooks* CurrentHooks() const { return hooks_.Read(); }

  // Blocking regime: when true, waiters park after their spin budget.
  void SetBlocking(bool blocking) {
    blocking_.store(blocking ? 1 : 0, std::memory_order_relaxed);
  }
  bool blocking() const { return blocking_.load(std::memory_order_relaxed) != 0; }

  // Registry identity for profiling hooks (0 = unregistered).
  void SetLockId(std::uint64_t id) { lock_id_ = id; }
  std::uint64_t lock_id() const { return lock_id_; }

  // --- introspection (tests, safety monitors, profiler) --------------------
  std::uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  std::uint64_t shuffle_rounds() const {
    return shuffle_rounds_.load(std::memory_order_relaxed);
  }
  std::uint64_t shuffle_moves() const {
    return shuffle_moves_.load(std::memory_order_relaxed);
  }
  std::uint64_t parks() const { return parks_.load(std::memory_order_relaxed); }
  std::uint64_t bypass_freezes() const {
    return bypass_freezes_.load(std::memory_order_relaxed);
  }

 private:
  static ShflWaiterView MakeView(const ShflQNode& node, std::uint64_t now_ns);

  // Acquires the TAS word; returns true on success.
  bool TryAcquireWord() {
    std::uint32_t expected = 0;
    return locked_.compare_exchange_strong(expected, 1, std::memory_order_acquire,
                                           std::memory_order_relaxed);
  }

  void SlowLock(ShflQNode& node);

  // One shuffle round; only the queue head calls this. Returns the number of
  // waiters moved.
  std::uint32_t ShuffleRound(ShflQNode& head, const ShflHooks& hooks);

  // Promotes `node` to queue head, waking it if parked. Non-static only for
  // the flight-recorder tap (needs lock_id_); touches no other lock state.
  void PromoteToHead(ShflQNode& node);

  // Spins/parks until this node becomes the queue head.
  void WaitUntilHead(ShflQNode& node);

  CONCORD_CACHE_ALIGNED std::atomic<std::uint32_t> locked_{0};
  CONCORD_CACHE_ALIGNED std::atomic<ShflQNode*> tail_{nullptr};
  RcuPointer<ShflHooks> hooks_{nullptr};
  std::atomic<std::uint32_t> blocking_{0};
  std::uint64_t lock_id_ = 0;

  // Holder bookkeeping (written under the lock).
  std::uint64_t holder_acquire_ns_ = 0;
  ThreadContext* holder_ctx_ = nullptr;

  // Statistics (relaxed counters).
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> shuffle_rounds_{0};
  std::atomic<std::uint64_t> shuffle_moves_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> bypass_freezes_{0};
};

// RAII guard.
class ShflGuard {
 public:
  explicit ShflGuard(ShflLock& lock) : lock_(lock) { lock_.Lock(); }
  ~ShflGuard() { lock_.Unlock(); }
  ShflGuard(const ShflGuard&) = delete;
  ShflGuard& operator=(const ShflGuard&) = delete;

 private:
  ShflLock& lock_;
};

}  // namespace concord

#endif  // SRC_SYNC_SHFLLOCK_H_
