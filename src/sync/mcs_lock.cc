#include "src/sync/mcs_lock.h"

namespace concord {
namespace {

// Per-thread node stack for the implicit-node interface. Entry i is in use
// while the thread holds (or waits on) its i-th nested MCS lock.
struct NodeStack {
  McsQNode nodes[McsLock::kMaxNesting];
  McsQNode* held[McsLock::kMaxNesting];
  int depth = 0;
};

thread_local NodeStack tls_nodes;

}  // namespace

void McsLock::Lock() {
  CONCORD_CHECK(tls_nodes.depth < kMaxNesting);
  McsQNode& node = tls_nodes.nodes[tls_nodes.depth];
  tls_nodes.held[tls_nodes.depth] = &node;
  ++tls_nodes.depth;
  Lock(node);
}

bool McsLock::TryLock() {
  CONCORD_CHECK(tls_nodes.depth < kMaxNesting);
  McsQNode& node = tls_nodes.nodes[tls_nodes.depth];
  if (!TryLock(node)) {
    return false;
  }
  tls_nodes.held[tls_nodes.depth] = &node;
  ++tls_nodes.depth;
  return true;
}

void McsLock::Unlock() {
  CONCORD_CHECK(tls_nodes.depth > 0);
  --tls_nodes.depth;
  Unlock(*tls_nodes.held[tls_nodes.depth]);
}

}  // namespace concord
