#include "src/sync/shfllock.h"

#include "src/base/check.h"
#include "src/base/spinwait.h"
#include "src/base/time.h"
#include "src/base/trace.h"
#include "src/sync/parking_lot.h"

namespace concord {
namespace {

// Invokes a profiling hook if installed. Kept out-of-line from the hot path
// shape: the null check is the only cost when no policy is attached.
inline void CallTap(void (*tap)(void*, std::uint64_t), void* user_data,
                    std::uint64_t lock_id) {
  if (tap != nullptr) {
    tap(user_data, lock_id);
  }
}

}  // namespace

ShflLock::~ShflLock() {
  CONCORD_CHECK(tail_.load(std::memory_order_relaxed) == nullptr);
  CONCORD_CHECK(locked_.load(std::memory_order_relaxed) == 0);
}

ShflWaiterView ShflLock::MakeView(const ShflQNode& node, std::uint64_t now_ns) {
  ShflWaiterView view;
  const ThreadContext& ctx = *node.ctx;
  view.wait_ns = now_ns > node.enqueue_ns ? now_ns - node.enqueue_ns : 0;
  view.cs_ewma_ns = ctx.cs_length_ewma_ns.load(std::memory_order_relaxed);
  view.socket = ctx.socket;
  view.vcpu = ctx.vcpu;
  view.priority = ctx.priority.load(std::memory_order_relaxed);
  view.task_class = ctx.task_class.load(std::memory_order_relaxed);
  view.locks_held = ctx.locks_held.load(std::memory_order_relaxed);
  view.task_id = ctx.task_id;
  return view;
}

void ShflLock::Lock() {
  ThreadContext& ctx = Self();
  TraceRecord(lock_id_, TraceEventKind::kAcquire);
  // Hold-time accounting (timestamps + EWMA) is policy food; it is only
  // maintained while a hook table is installed so that an unpatched lock
  // costs no clock reads. (Install any policy or enable profiling to warm
  // the per-thread CS statistics.)
  // Raw null probe first: dereferencing needs an RCU guard, checking for
  // null does not, so an unpatched lock takes no read-side fences at all.
  const bool hooked = hooks_.Read() != nullptr;
  bool track_time = false;
  if (hooked) {
    RcuReadGuard rcu;
    const ShflHooks* hooks = hooks_.Read();
    if (hooks != nullptr) {
      track_time = hooks->track_hold_time;
      CallTap(hooks->lock_acquire, hooks->user_data, lock_id_);
    }
  }

  // Fast path: steal only while no queue exists (bounded unfairness).
  if (tail_.load(std::memory_order_relaxed) == nullptr && TryAcquireWord()) {
    holder_acquire_ns_ = track_time ? MonotonicNowNs() : 0;
    holder_ctx_ = &ctx;
    ctx.locks_held.fetch_add(1, std::memory_order_relaxed);
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    TraceRecord(lock_id_, TraceEventKind::kAcquired);
    if (hooked) {
      RcuReadGuard rcu;
      const ShflHooks* hooks = hooks_.Read();
      if (hooks != nullptr) {
        CallTap(hooks->lock_acquired, hooks->user_data, lock_id_);
      }
    }
    return;
  }

  ShflQNode node;
  node.ctx = &ctx;
  node.enqueue_ns = hooked ? MonotonicNowNs() : 0;
  SlowLock(node);

  holder_acquire_ns_ = track_time ? MonotonicNowNs() : 0;
  holder_ctx_ = &ctx;
  ctx.locks_held.fetch_add(1, std::memory_order_relaxed);
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  TraceRecord(lock_id_, TraceEventKind::kAcquired);
  if (hooked) {
    RcuReadGuard rcu;
    const ShflHooks* hooks = hooks_.Read();
    if (hooks != nullptr) {
      CallTap(hooks->lock_acquired, hooks->user_data, lock_id_);
    }
  }
}

bool ShflLock::TryLock() {
  if (tail_.load(std::memory_order_relaxed) != nullptr) {
    return false;
  }
  if (!TryAcquireWord()) {
    return false;
  }
  ThreadContext& ctx = Self();
  holder_acquire_ns_ = 0;  // TryLock fires no hooks; see class comment
  holder_ctx_ = &ctx;
  ctx.locks_held.fetch_add(1, std::memory_order_relaxed);
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShflLock::SlowLock(ShflQNode& node) {
  TraceRecord(lock_id_, TraceEventKind::kContended);
  if (hooks_.Read() != nullptr) {
    RcuReadGuard rcu;
    const ShflHooks* hooks = hooks_.Read();
    if (hooks != nullptr) {
      CallTap(hooks->lock_contended, hooks->user_data, lock_id_);
    }
  }

  ShflQNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
  if (pred == nullptr) {
    node.status.store(ShflQNode::kHead, std::memory_order_relaxed);
  } else {
    pred->next.store(&node, std::memory_order_release);
    WaitUntilHead(node);
  }

  // We are the queue head: contend on the lock word; shuffle while waiting.
  // In blocking mode the head spins-then-parks on the lock word itself
  // (value 2 = "locked, head parked", so Unlock knows to issue a wake).
  SpinWait spin;
  std::uint32_t rounds_done = 0;
  while (!TryAcquireWord()) {
    bool park_now = false;
    if (hooks_.Read() != nullptr ||
        blocking_.load(std::memory_order_relaxed) != 0) {
      RcuReadGuard rcu;
      const ShflHooks* hooks = hooks_.Read();
      if (hooks != nullptr && hooks->cmp_node != nullptr) {
        const std::uint32_t bound = hooks->max_shuffle_rounds < kShuffleRoundCap
                                        ? hooks->max_shuffle_rounds
                                        : kShuffleRoundCap;
        // Pace the scans (they are pure overhead when the queue is static)
        // and charge the starvation budget only for rounds that actually
        // reordered waiters — scans that move nobody cannot starve anybody.
        if (rounds_done < bound && (spin.iterations() & 31) == 0) {
          if (ShuffleRound(node, *hooks) > 0) {
            ++rounds_done;
          }
        }
      }
      if (blocking_.load(std::memory_order_relaxed) != 0) {
        if (hooks != nullptr && hooks->schedule_waiter != nullptr) {
          park_now = hooks->schedule_waiter(hooks->user_data,
                                            MakeView(node, MonotonicNowNs()),
                                            spin.iterations());
        } else {
          park_now = spin.iterations() > 128;
        }
      }
    }
    if (park_now) {
      std::uint32_t expected = 1;
      if (locked_.compare_exchange_strong(expected, 2, std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        parks_.fetch_add(1, std::memory_order_relaxed);
        TraceRecord(lock_id_, TraceEventKind::kPark, spin.iterations());
        ParkingLot::Park(&locked_, 2);
        spin.Reset();
      }
      continue;
    }
    spin.Once();
  }

  // Acquired. Hand the head role to our successor (if any) and leave.
  ShflQNode* successor = node.next.load(std::memory_order_acquire);
  if (successor == nullptr) {
    ShflQNode* expected = &node;
    if (tail_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return;
    }
    SpinWait link_wait;
    while ((successor = node.next.load(std::memory_order_acquire)) == nullptr) {
      link_wait.Once();
    }
  }
  PromoteToHead(*successor);
}

void ShflLock::WaitUntilHead(ShflQNode& node) {
  SpinWait spin;
  while (true) {
    const std::uint32_t status = node.status.load(std::memory_order_acquire);
    if (status == ShflQNode::kHead) {
      return;
    }
    const bool blocking = blocking_.load(std::memory_order_relaxed) != 0;
    bool park_now = false;
    if (blocking) {
      RcuReadGuard rcu;  // schedule_waiter hook may be installed
      const ShflHooks* hooks = hooks_.Read();
      if (hooks != nullptr && hooks->schedule_waiter != nullptr) {
        park_now = hooks->schedule_waiter(hooks->user_data,
                                          MakeView(node, MonotonicNowNs()),
                                          spin.iterations());
      } else {
        // Default spin-then-park: park once the adaptive spinner has
        // escalated past its pure-spin phase.
        park_now = spin.iterations() > 128;
      }
    }
    if (park_now) {
      std::uint32_t expected = ShflQNode::kWaiting;
      if (node.status.compare_exchange_strong(expected, ShflQNode::kParked,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        parks_.fetch_add(1, std::memory_order_relaxed);
        TraceRecord(lock_id_, TraceEventKind::kPark, spin.iterations());
        ParkingLot::Park(&node.status, ShflQNode::kParked);
      } else if (expected == ShflQNode::kHead) {
        return;
      }
      continue;
    }
    spin.Once();
  }
}

void ShflLock::PromoteToHead(ShflQNode& node) {
  const std::uint32_t prev =
      node.status.exchange(ShflQNode::kHead, std::memory_order_acq_rel);
  if (prev == ShflQNode::kParked) {
    TraceRecord(lock_id_, TraceEventKind::kWake);
    ParkingLot::UnparkOne(&node.status);
  }
}

std::uint32_t ShflLock::ShuffleRound(ShflQNode& head, const ShflHooks& hooks) {
  const std::uint64_t now = MonotonicNowNs();
  const ShflWaiterView head_view = MakeView(head, now);
  if (hooks.skip_shuffle != nullptr &&
      hooks.skip_shuffle(hooks.user_data, head_view)) {
    return 0;
  }
  shuffle_rounds_.fetch_add(1, std::memory_order_relaxed);

  const std::uint32_t bypass_bound =
      hooks.max_waiter_bypasses < kBypassCap ? hooks.max_waiter_bypasses
                                             : kBypassCap;

  // Walk the queue moving policy-matching nodes into the group directly
  // behind the head. Safety rules:
  //   - never touch a node whose `next` is null (it may be the tail an
  //     enqueuer is about to link through);
  //   - bounded scan;
  //   - per-waiter bypass bound: nothing moves past a waiter that has
  //     already been overtaken `bypass_bound` times (starvation bound);
  //   - count-preservation check across the rewritten window.
  ShflQNode* group_tail = &head;
  ShflQNode* prev = group_tail;
  ShflQNode* curr = prev->next.load(std::memory_order_acquire);
  std::uint32_t scanned = 0;
  std::uint32_t moved = 0;
  ShflQNode* skipped[kMaxShuffleScan];
  std::uint32_t num_skipped = 0;

  while (curr != nullptr && scanned < kMaxShuffleScan) {
    ShflQNode* next = curr->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      break;  // possible tail; do not disturb
    }
    ++scanned;
    if (hooks.cmp_node(hooks.user_data, head_view, MakeView(*curr, now))) {
      if (prev == group_tail) {
        // Already adjacent to the group: just extend it.
        group_tail = curr;
        prev = curr;
        curr = next;
      } else {
        // Unlink curr and splice it right behind group_tail: every waiter
        // currently between the group and curr gets overtaken once.
        bool frozen = false;
        for (std::uint32_t i = 0; i < num_skipped; ++i) {
          if (skipped[i]->bypassed >= bypass_bound) {
            frozen = true;
            break;
          }
        }
        if (frozen) {
          bypass_freezes_.fetch_add(1, std::memory_order_relaxed);
          break;  // a saturated waiter blocks all further reordering
        }
        for (std::uint32_t i = 0; i < num_skipped; ++i) {
          ++skipped[i]->bypassed;
        }
        prev->next.store(next, std::memory_order_relaxed);
        ShflQNode* after_group = group_tail->next.load(std::memory_order_relaxed);
        curr->next.store(after_group, std::memory_order_relaxed);
        group_tail->next.store(curr, std::memory_order_release);
        group_tail = curr;
        curr = next;
        ++moved;
      }
    } else {
      if (num_skipped < kMaxShuffleScan) {
        skipped[num_skipped++] = curr;
      }
      prev = curr;
      curr = next;
    }
  }

  TraceRecord(lock_id_, TraceEventKind::kShuffleRound, moved);
  if (moved > 0) {
    shuffle_moves_.fetch_add(moved, std::memory_order_relaxed);
    // Queue-integrity runtime check (§4.2): the shuffled window must still
    // contain exactly the nodes we scanned — re-walk and count.
    std::uint32_t recount = 0;
    for (ShflQNode* n = head.next.load(std::memory_order_acquire);
         n != nullptr && recount <= scanned + 1;
         n = n->next.load(std::memory_order_acquire)) {
      ++recount;
    }
    CONCORD_CHECK(recount >= scanned);
  }
  return moved;
}

void ShflLock::Unlock() {
  ThreadContext* holder = holder_ctx_;
  CONCORD_CHECK(holder != nullptr);
  if (holder_acquire_ns_ != 0) {
    const std::uint64_t held_ns = MonotonicNowNs() - holder_acquire_ns_;
    holder->UpdateCsEwma(held_ns);
    holder->lock_hold_total_ns.fetch_add(held_ns, std::memory_order_relaxed);
  }
  holder->locks_held.fetch_sub(1, std::memory_order_relaxed);
  holder_ctx_ = nullptr;

  const std::uint32_t prev = locked_.exchange(0, std::memory_order_release);
  TraceRecord(lock_id_, TraceEventKind::kRelease);
  if (prev == 2) {
    // The queue head parked on the lock word; wake it.
    TraceRecord(lock_id_, TraceEventKind::kWake);
    ParkingLot::UnparkOne(&locked_);
  }

  if (hooks_.Read() != nullptr) {
    RcuReadGuard rcu;
    const ShflHooks* hooks = hooks_.Read();
    if (hooks != nullptr) {
      CallTap(hooks->lock_release, hooks->user_data, lock_id_);
    }
  }
}

}  // namespace concord
