// Cohort lock (Dice, Marathe, Shavit, PPoPP '12) — C-TKT-TKT flavour.
//
// The classic hierarchical NUMA lock: a global ticket lock arbitrates
// between sockets; a per-socket ticket lock arbitrates within one. A holder
// releasing the lock passes global ownership to a same-socket waiter (a
// "cohort" handoff) if one exists and the handoff budget is not exhausted,
// so consecutive critical sections run on one socket and the protected data
// stays in that socket's caches. The memory-footprint downside (per-socket
// lock state) is exactly what CNA was built to remove.

#ifndef SRC_SYNC_COHORT_LOCK_H_
#define SRC_SYNC_COHORT_LOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/base/cacheline.h"
#include "src/sync/ticket_lock.h"
#include "src/topology/thread_context.h"

namespace concord {

class CohortLock {
 public:
  // Max consecutive same-socket handoffs before the global lock is released
  // (starvation bound for other sockets).
  static constexpr std::uint32_t kCohortBudget = 64;

  CohortLock()
      : num_sockets_(MachineTopology::Global().num_sockets()),
        sockets_(std::make_unique<SocketState[]>(num_sockets_)) {}
  CohortLock(const CohortLock&) = delete;
  CohortLock& operator=(const CohortLock&) = delete;

  void Lock() {
    SocketState& local = sockets_[Self().socket % num_sockets_];
    local.lock.Lock();
    // If the previous local holder passed us global ownership, we are done.
    if (local.owns_global) {
      return;
    }
    global_.Lock();
    local.owns_global = true;
    local.handoffs = 0;
  }

  void Unlock() {
    SocketState& local = sockets_[Self().socket % num_sockets_];
    // Pass within the cohort if someone is waiting locally and budget remains.
    if (local.handoffs < kCohortBudget && local.lock.HasWaiters()) {
      ++local.handoffs;
      local.lock.Unlock();  // next local waiter inherits owns_global == true
      return;
    }
    local.owns_global = false;
    global_.Unlock();
    local.lock.Unlock();
  }

  bool TryLock() {
    SocketState& local = sockets_[Self().socket % num_sockets_];
    if (!local.lock.TryLock()) {
      return false;
    }
    if (local.owns_global) {
      return true;
    }
    if (global_.TryLock()) {
      local.owns_global = true;
      local.handoffs = 0;
      return true;
    }
    local.lock.Unlock();
    return false;
  }

 private:
  // Ticket lock extended with a waiter-presence probe.
  class ProbeTicketLock : public TicketLock {
   public:
    bool HasWaiters() const { return WaitersApprox() > 0; }
  };

  struct CONCORD_CACHE_ALIGNED SocketState {
    ProbeTicketLock lock;
    // Both fields are written only while `lock` is held.
    bool owns_global = false;
    std::uint32_t handoffs = 0;
  };

  const std::uint32_t num_sockets_;
  std::unique_ptr<SocketState[]> sockets_;
  CONCORD_CACHE_ALIGNED TicketLock global_;
};

}  // namespace concord

#endif  // SRC_SYNC_COHORT_LOCK_H_
