// Phase-fair readers-writer lock (Brandenburg & Anderson's PF-T) — the
// primitive behind the paper's "realtime scheduling" use case (§3.1.1):
// reader and writer *phases* alternate, so no class of task can starve the
// other and every waiter's delay is bounded by one phase of each kind.
// That bounded-overtaking property is what gives tail-latency guarantees.
//
// PF-T layout: two reader counters (in/out tickets in the high bits) and two
// writer tickets. A writer publishes its presence and phase id in the low
// bits of `rin`; arriving readers who see a writer present wait for the
// *phase id* to change — not for zero writers — which is exactly what makes
// consecutive writers unable to lock readers out.

#ifndef SRC_SYNC_PHASE_FAIR_H_
#define SRC_SYNC_PHASE_FAIR_H_

#include <atomic>
#include <cstdint>

#include "src/base/cacheline.h"
#include "src/base/spinwait.h"

namespace concord {

class CONCORD_CACHE_ALIGNED PhaseFairRwLock {
 public:
  PhaseFairRwLock() = default;
  PhaseFairRwLock(const PhaseFairRwLock&) = delete;
  PhaseFairRwLock& operator=(const PhaseFairRwLock&) = delete;

  void ReadLock() {
    // Publish ourselves and snapshot the writer-presence bits.
    const std::uint32_t w =
        rin_.fetch_add(kReaderInc, std::memory_order_acquire) & kWriterBits;
    if (w == 0) {
      return;  // no writer present
    }
    // Wait for the writer *phase* to change (either the writer left, or a
    // different-phase writer replaced it — in which case we are part of the
    // reader phase that separates them).
    SpinWait spin;
    while ((rin_.load(std::memory_order_acquire) & kWriterBits) == w) {
      spin.Once();
    }
  }

  void ReadUnlock() { rout_.fetch_add(kReaderInc, std::memory_order_release); }

  void WriteLock() {
    // Writer-writer ordering: take a ticket.
    const std::uint32_t ticket = win_.fetch_add(1, std::memory_order_acquire);
    SpinWait spin;
    while (wout_.load(std::memory_order_acquire) != ticket) {
      spin.Once();
    }
    // Publish presence + phase id, blocking out later readers, then wait for
    // the readers that beat us in.
    const std::uint32_t w = kWriterPresent | ((ticket & 1u) << 1);
    const std::uint32_t readers_in =
        rin_.fetch_add(w, std::memory_order_acq_rel) & ~kWriterBits;
    spin.Reset();
    while ((rout_.load(std::memory_order_acquire) & ~kWriterBits) != readers_in) {
      spin.Once();
    }
  }

  void WriteUnlock() {
    // Clear presence/phase bits, admitting the waiting reader phase...
    rin_.fetch_and(~kWriterBits, std::memory_order_release);
    // ...and pass the writer ticket on.
    wout_.fetch_add(1, std::memory_order_release);
  }

  // Introspection for tests.
  bool writer_present() const {
    return (rin_.load(std::memory_order_relaxed) & kWriterBits) != 0;
  }
  std::uint32_t readers_arrived() const {
    return rin_.load(std::memory_order_relaxed) >> 8;
  }
  std::uint32_t writers_arrived() const {
    return win_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kReaderInc = 0x100;
  static constexpr std::uint32_t kWriterBits = 0x3;  // present | phase id
  static constexpr std::uint32_t kWriterPresent = 0x1;

  std::atomic<std::uint32_t> rin_{0};
  std::atomic<std::uint32_t> rout_{0};
  std::atomic<std::uint32_t> win_{0};
  std::atomic<std::uint32_t> wout_{0};
};

}  // namespace concord

#endif  // SRC_SYNC_PHASE_FAIR_H_
