// MCS queue spinlock.
//
// The canonical scalable lock (Mellor-Crummey & Scott): each waiter spins on
// its own queue node, so a handoff touches exactly one remote cache line.
// FIFO order — which is precisely the property the paper's "lock inheritance"
// use case calls pathological for nested acquisitions, and what ShflLock's
// shuffler relaxes.

#ifndef SRC_SYNC_MCS_LOCK_H_
#define SRC_SYNC_MCS_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/base/cacheline.h"
#include "src/base/check.h"
#include "src/base/spinwait.h"

namespace concord {

struct CONCORD_CACHE_ALIGNED McsQNode {
  std::atomic<McsQNode*> next{nullptr};
  std::atomic<std::uint32_t> locked{0};
};

class CONCORD_CACHE_ALIGNED McsLock {
 public:
  McsLock() = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void Lock(McsQNode& node) {
    node.next.store(nullptr, std::memory_order_relaxed);
    node.locked.store(1, std::memory_order_relaxed);
    McsQNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
    if (pred == nullptr) {
      return;  // uncontended
    }
    pred->next.store(&node, std::memory_order_release);
    SpinWait spin;
    while (node.locked.load(std::memory_order_acquire) != 0) {
      spin.Once();
    }
  }

  bool TryLock(McsQNode& node) {
    node.next.store(nullptr, std::memory_order_relaxed);
    node.locked.store(0, std::memory_order_relaxed);
    McsQNode* expected = nullptr;
    return tail_.compare_exchange_strong(expected, &node,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  void Unlock(McsQNode& node) {
    McsQNode* successor = node.next.load(std::memory_order_acquire);
    if (successor == nullptr) {
      McsQNode* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;  // no one waiting
      }
      // A successor is mid-enqueue; wait for its link to appear.
      SpinWait spin;
      while ((successor = node.next.load(std::memory_order_acquire)) == nullptr) {
        spin.Once();
      }
    }
    successor->locked.store(0, std::memory_order_release);
  }

  // Convenience interface with implicit per-thread nodes; supports nested
  // acquisitions of *different* MCS locks up to kMaxNesting deep.
  static constexpr int kMaxNesting = 16;
  void Lock();
  void Unlock();
  bool TryLock();

  bool IsLocked() const { return tail_.load(std::memory_order_relaxed) != nullptr; }

 private:
  std::atomic<McsQNode*> tail_{nullptr};
};

// RAII guard using an explicit stack node (zero TLS lookups).
class McsGuard {
 public:
  explicit McsGuard(McsLock& lock) : lock_(lock) { lock_.Lock(node_); }
  ~McsGuard() { lock_.Unlock(node_); }
  McsGuard(const McsGuard&) = delete;
  McsGuard& operator=(const McsGuard&) = delete;

 private:
  McsLock& lock_;
  McsQNode node_;
};

}  // namespace concord

#endif  // SRC_SYNC_MCS_LOCK_H_
