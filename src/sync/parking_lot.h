// Futex-based park/unpark — the scheduler interaction substrate.
//
// Kernel blocking locks (mutex, rwsem) put waiters to sleep via the
// scheduler; in userspace the analogue is futex. Blocking lock variants and
// the "adaptable parking/wake-up strategy" use case (paper §3.1.1) go through
// this interface so the park decision is a policy, not a hard-coded constant.

#ifndef SRC_SYNC_PARKING_LOT_H_
#define SRC_SYNC_PARKING_LOT_H_

#include <atomic>
#include <cstdint>

namespace concord {

class ParkingLot {
 public:
  // Blocks the calling thread while `*word == expected`. Returns when woken,
  // when the value changed, or after `timeout_ns` (0 = no timeout). Spurious
  // returns are allowed; callers must re-check their predicate.
  static void Park(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                   std::uint64_t timeout_ns = 0);

  // Wakes at most one parked thread.
  static void UnparkOne(std::atomic<std::uint32_t>* word);

  // Wakes all parked threads.
  static void UnparkAll(std::atomic<std::uint32_t>* word);
};

}  // namespace concord

#endif  // SRC_SYNC_PARKING_LOT_H_
