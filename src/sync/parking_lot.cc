#include "src/sync/parking_lot.h"

#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <climits>

#include "src/base/fault.h"

namespace concord {
namespace {

long Futex(std::atomic<std::uint32_t>* word, int op, std::uint32_t value,
           const timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), op, value,
                 timeout, nullptr, 0);
}

// Injected wakeup latency: stalls (never drops) the wake so tests can prove
// waiters survive a tardy unpark. Compiles to nothing in release builds.
void MaybeDelayWake() {
  if (const std::uint64_t delay_ns = CONCORD_FAULT_DELAY_NS("park.delayed_wake");
      delay_ns != 0) {
    timespec ts;
    ts.tv_sec = static_cast<time_t>(delay_ns / 1'000'000'000ull);
    ts.tv_nsec = static_cast<long>(delay_ns % 1'000'000'000ull);
    nanosleep(&ts, nullptr);
  }
}

}  // namespace

void ParkingLot::Park(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                      std::uint64_t timeout_ns) {
  if (timeout_ns == 0) {
    Futex(word, FUTEX_WAIT_PRIVATE, expected, nullptr);
    return;
  }
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000ull);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000ull);
  Futex(word, FUTEX_WAIT_PRIVATE, expected, &ts);
}

void ParkingLot::UnparkOne(std::atomic<std::uint32_t>* word) {
  MaybeDelayWake();
  Futex(word, FUTEX_WAKE_PRIVATE, 1, nullptr);
}

void ParkingLot::UnparkAll(std::atomic<std::uint32_t>* word) {
  MaybeDelayWake();
  Futex(word, FUTEX_WAKE_PRIVATE, INT_MAX, nullptr);
}

}  // namespace concord
