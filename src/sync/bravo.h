// BRAVO — Biased Locking for Reader-Writer Locks (Dice & Kogan, ATC '19),
// with Concord policy hooks.
//
// BRAVO wraps any readers-writer lock. While reader bias is on, readers skip
// the underlying lock entirely: they publish themselves in a visible-readers
// table (one CAS on a (likely) uncontended slot) and re-check the bias flag.
// A writer revokes the bias — clears the flag, scans the whole table waiting
// for published readers to drain — then takes the underlying write lock.
// Revocation is expensive, so bias re-enables only after an adaptive inhibit
// window proportional to the last revocation's cost.
//
// Concord integration: the installed RwHooks' rw_mode() decides per
// acquisition which regime the lock runs in — kNeutral (bias off),
// kReaderBias (BRAVO fast path) or kWriterOnly (readers take the write path;
// right for create-heavy directory workloads, §3.1.1(i)). This is the paper's
// Figure 2(a) "Concord-BRAVO": the same switch the precompiled BRAVO makes,
// but decided by a user-installed (possibly BPF) policy at runtime.

#ifndef SRC_SYNC_BRAVO_H_
#define SRC_SYNC_BRAVO_H_

#include <atomic>
#include <cstdint>

#include "src/base/cacheline.h"
#include "src/base/check.h"
#include "src/base/spinwait.h"
#include "src/base/time.h"
#include "src/rcu/rcu.h"
#include "src/sync/lock.h"
#include "src/sync/policy_hooks.h"
#include "src/sync/rw_lock.h"
#include "src/topology/thread_context.h"

namespace concord {

template <SharedLockable Underlying = NeutralRwLock>
class BravoLock {
 public:
  static constexpr std::uint32_t kTableSlots = 256;
  // Inhibit window = revocation cost * this multiplier (BRAVO's "N").
  static constexpr std::uint64_t kInhibitMultiplier = 9;

  BravoLock() = default;
  BravoLock(const BravoLock&) = delete;
  BravoLock& operator=(const BravoLock&) = delete;

  ~BravoLock() {
    for (auto& slot : visible_) {
      CONCORD_CHECK(slot->load(std::memory_order_relaxed) == 0);
    }
  }

  void ReadLock() {
    FireTap(&RwHooks::lock_acquire);
    const std::uint32_t mode = CurrentMode();
    if (mode == static_cast<std::uint32_t>(RwMode::kWriterOnly)) {
      underlying_.WriteLock();
      PushToken(kTokenWriterOnly);
      FireTap(&RwHooks::lock_acquired);
      return;
    }
    if (mode == static_cast<std::uint32_t>(RwMode::kReaderBias)) {
      MaybeReenableBias();
      if (bias_.load(std::memory_order_acquire) != 0) {
        const std::uint64_t index = SlotIndexFor(Self().task_id);
        std::atomic<std::uint32_t>& slot = *visible_[index];
        std::uint32_t expected = 0;
        if (slot.compare_exchange_strong(expected, 1, std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
          // Publish-then-recheck: a racing writer either sees our slot or we
          // see the cleared bias.
          if (bias_.load(std::memory_order_acquire) != 0) {
            PushToken(index);
            fast_reads_.fetch_add(1, std::memory_order_relaxed);
            FireTap(&RwHooks::lock_acquired);
            return;
          }
          slot.store(0, std::memory_order_release);
        }
      }
    }
    underlying_.ReadLock();
    PushToken(kTokenUnderlying);
    slow_reads_.fetch_add(1, std::memory_order_relaxed);
    FireTap(&RwHooks::lock_acquired);
  }

  void ReadUnlock() {
    FireTap(&RwHooks::lock_release);
    const std::uint64_t token = PopToken();
    if (token == kTokenUnderlying) {
      underlying_.ReadUnlock();
      return;
    }
    if (token == kTokenWriterOnly) {
      underlying_.WriteUnlock();
      return;
    }
    visible_[token]->store(0, std::memory_order_release);
  }

  void WriteLock() {
    FireTap(&RwHooks::lock_acquire);
    underlying_.WriteLock();
    if (bias_.load(std::memory_order_acquire) != 0) {
      Revoke();
    }
    FireTap(&RwHooks::lock_acquired);
  }

  void WriteUnlock() {
    FireTap(&RwHooks::lock_release);
    underlying_.WriteUnlock();
  }

  // --- Concord integration -------------------------------------------------
  const RwHooks* InstallHooks(const RwHooks* hooks) {
    return hooks_.Swap(const_cast<RwHooks*>(hooks));
  }
  const RwHooks* CurrentHooks() const { return hooks_.Read(); }

  // Fixed mode used when no policy is installed.
  void SetDefaultMode(RwMode mode) {
    default_mode_.store(static_cast<std::uint32_t>(mode),
                        std::memory_order_relaxed);
  }

  void SetLockId(std::uint64_t id) { lock_id_ = id; }

  // --- introspection ---------------------------------------------------------
  std::uint64_t fast_reads() const {
    return fast_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t slow_reads() const {
    return slow_reads_.load(std::memory_order_relaxed);
  }
  std::uint64_t revocations() const {
    return revocations_.load(std::memory_order_relaxed);
  }
  bool bias_active() const { return bias_.load(std::memory_order_relaxed) != 0; }

  Underlying& underlying() { return underlying_; }

 private:
  static constexpr std::uint64_t kTokenUnderlying = ~0ull;
  static constexpr std::uint64_t kTokenWriterOnly = ~0ull - 1;
  static constexpr int kMaxNestedReads = 16;

  struct TokenStack {
    std::uint64_t tokens[kMaxNestedReads];
    int depth = 0;
  };

  static TokenStack& Tokens() {
    thread_local TokenStack stack;
    return stack;
  }

  void PushToken(std::uint64_t token) {
    TokenStack& stack = Tokens();
    CONCORD_CHECK(stack.depth < kMaxNestedReads);
    stack.tokens[stack.depth++] = token;
  }

  std::uint64_t PopToken() {
    TokenStack& stack = Tokens();
    CONCORD_CHECK(stack.depth > 0);
    return stack.tokens[--stack.depth];
  }

  std::uint32_t CurrentMode() const {
    RcuReadGuard rcu;
    const RwHooks* hooks = hooks_.Read();
    if (hooks != nullptr && hooks->rw_mode != nullptr) {
      return hooks->rw_mode(hooks->user_data);
    }
    return default_mode_.load(std::memory_order_relaxed);
  }

  // Fires one profiling tap slot if a hook table with that slot is installed.
  void FireTap(void (*RwHooks::*slot)(void*, std::uint64_t)) const {
    RcuReadGuard rcu;
    const RwHooks* hooks = hooks_.Read();
    if (hooks != nullptr && hooks->*slot != nullptr) {
      (hooks->*slot)(hooks->user_data, lock_id_);
    }
  }

  static std::uint64_t SlotIndexFor(std::uint32_t task_id) {
    // Mix the task id so consecutive ids do not collide in one stripe.
    const std::uint64_t h = task_id * 0x9e3779b97f4a7c15ull;
    return (h >> 32) % kTableSlots;
  }

  void MaybeReenableBias() {
    if (bias_.load(std::memory_order_relaxed) != 0) {
      return;
    }
    if (MonotonicNowNs() >= inhibit_until_.load(std::memory_order_relaxed)) {
      bias_.store(1, std::memory_order_release);
    }
  }

  void Revoke() {
    const std::uint64_t start = MonotonicNowNs();
    bias_.store(0, std::memory_order_seq_cst);
    for (auto& slot : visible_) {
      SpinWait spin;
      while (slot->load(std::memory_order_acquire) != 0) {
        spin.Once();
      }
    }
    const std::uint64_t cost = MonotonicNowNs() - start;
    inhibit_until_.store(MonotonicNowNs() + cost * kInhibitMultiplier,
                         std::memory_order_relaxed);
    revocations_.fetch_add(1, std::memory_order_relaxed);
  }

  Underlying underlying_;
  CacheLinePadded<std::atomic<std::uint32_t>> visible_[kTableSlots];
  CONCORD_CACHE_ALIGNED std::atomic<std::uint32_t> bias_{0};
  std::atomic<std::uint64_t> inhibit_until_{0};
  RcuPointer<RwHooks> hooks_{nullptr};
  std::atomic<std::uint32_t> default_mode_{
      static_cast<std::uint32_t>(RwMode::kNeutral)};
  std::uint64_t lock_id_ = 0;

  std::atomic<std::uint64_t> fast_reads_{0};
  std::atomic<std::uint64_t> slow_reads_{0};
  std::atomic<std::uint64_t> revocations_{0};
};

}  // namespace concord

#endif  // SRC_SYNC_BRAVO_H_
