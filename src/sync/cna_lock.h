// CNA — Compact NUMA-Aware lock (Dice & Kogan, EuroSys '19).
//
// An MCS variant with the memory footprint of one queue: at unlock time the
// holder searches the main queue for a waiter on its own socket, detaching
// skipped remote-socket waiters onto a secondary queue that travels with the
// lock. Once a fairness threshold of consecutive local handoffs is reached
// (or no local waiter exists), the secondary queue is spliced back so remote
// sockets make progress.
//
// Included as the third point in the NUMA-lock design space the paper cites
// (hierarchical/cohort vs CNA vs ShflLock): benches A1 compare all three
// under the same workloads.

#ifndef SRC_SYNC_CNA_LOCK_H_
#define SRC_SYNC_CNA_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/base/cacheline.h"
#include "src/topology/thread_context.h"

namespace concord {

struct CONCORD_CACHE_ALIGNED CnaQNode {
  std::atomic<CnaQNode*> next{nullptr};
  std::atomic<std::uint32_t> locked{1};
  std::uint32_t socket = 0;
  // Secondary queue (remote waiters) carried by the current holder's node.
  CnaQNode* sec_head = nullptr;
  CnaQNode* sec_tail = nullptr;
  // Consecutive local handoffs so far, inherited across handoffs.
  std::uint32_t local_handoffs = 0;
};

class CONCORD_CACHE_ALIGNED CnaLock {
 public:
  // After this many consecutive same-socket handoffs the secondary queue is
  // drained (fairness bound).
  static constexpr std::uint32_t kLocalHandoffLimit = 256;
  // Bounded search for a local successor per unlock.
  static constexpr std::uint32_t kMaxScan = 64;

  CnaLock() = default;
  CnaLock(const CnaLock&) = delete;
  CnaLock& operator=(const CnaLock&) = delete;

  void Lock(CnaQNode& node);
  void Unlock(CnaQNode& node);
  bool TryLock(CnaQNode& node);

  bool IsLocked() const { return tail_.load(std::memory_order_relaxed) != nullptr; }

  std::uint64_t secondary_moves() const {
    return secondary_moves_.load(std::memory_order_relaxed);
  }
  std::uint64_t splices() const { return splices_.load(std::memory_order_relaxed); }

 private:
  std::atomic<CnaQNode*> tail_{nullptr};
  std::atomic<std::uint64_t> secondary_moves_{0};
  std::atomic<std::uint64_t> splices_{0};
};

class CnaGuard {
 public:
  explicit CnaGuard(CnaLock& lock) : lock_(lock) { lock_.Lock(node_); }
  ~CnaGuard() { lock_.Unlock(node_); }
  CnaGuard(const CnaGuard&) = delete;
  CnaGuard& operator=(const CnaGuard&) = delete;

 private:
  CnaLock& lock_;
  CnaQNode node_;
};

}  // namespace concord

#endif  // SRC_SYNC_CNA_LOCK_H_
