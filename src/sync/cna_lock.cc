#include "src/sync/cna_lock.h"

#include "src/base/spinwait.h"

namespace concord {

void CnaLock::Lock(CnaQNode& node) {
  node.next.store(nullptr, std::memory_order_relaxed);
  node.locked.store(1, std::memory_order_relaxed);
  node.socket = Self().socket;
  node.sec_head = nullptr;
  node.sec_tail = nullptr;
  node.local_handoffs = 0;

  CnaQNode* pred = tail_.exchange(&node, std::memory_order_acq_rel);
  if (pred == nullptr) {
    return;
  }
  pred->next.store(&node, std::memory_order_release);
  SpinWait spin;
  while (node.locked.load(std::memory_order_acquire) != 0) {
    spin.Once();
  }
}

bool CnaLock::TryLock(CnaQNode& node) {
  node.next.store(nullptr, std::memory_order_relaxed);
  node.locked.store(0, std::memory_order_relaxed);
  node.socket = Self().socket;
  node.sec_head = nullptr;
  node.sec_tail = nullptr;
  node.local_handoffs = 0;
  CnaQNode* expected = nullptr;
  return tail_.compare_exchange_strong(expected, &node, std::memory_order_acq_rel,
                                       std::memory_order_relaxed);
}

void CnaLock::Unlock(CnaQNode& node) {
  // Grants the lock to `target`, handing over the secondary queue and the
  // local-handoff count.
  auto grant = [this](CnaQNode& from, CnaQNode* target, std::uint32_t handoffs) {
    if (target != nullptr) {
      target->sec_head = from.sec_head;
      target->sec_tail = from.sec_tail;
      target->local_handoffs = handoffs;
      target->locked.store(0, std::memory_order_release);
    }
  };

  CnaQNode* successor = node.next.load(std::memory_order_acquire);
  if (successor == nullptr) {
    // Maybe we are the last queued node; splice the secondary first so
    // remote waiters are not stranded.
    if (node.sec_head != nullptr) {
      CnaQNode* expected = &node;
      // Try to replace ourselves with the secondary chain as the new queue.
      if (tail_.compare_exchange_strong(expected, node.sec_tail,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        splices_.fetch_add(1, std::memory_order_relaxed);
        CnaQNode* head = node.sec_head;
        head->sec_head = nullptr;
        head->sec_tail = nullptr;
        head->local_handoffs = 0;
        head->locked.store(0, std::memory_order_release);
        return;
      }
      // A new waiter appeared behind us; wait for the link, then fall
      // through to the normal path.
      SpinWait spin;
      while ((successor = node.next.load(std::memory_order_acquire)) == nullptr) {
        spin.Once();
      }
    } else {
      CnaQNode* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;  // queue empty, no secondary
      }
      SpinWait spin;
      while ((successor = node.next.load(std::memory_order_acquire)) == nullptr) {
        spin.Once();
      }
    }
  }

  // Fairness: past the local-handoff limit, drain the secondary queue first.
  if (node.local_handoffs >= kLocalHandoffLimit && node.sec_head != nullptr) {
    splices_.fetch_add(1, std::memory_order_relaxed);
    // Splice secondary in front of the main-queue successor.
    node.sec_tail->next.store(successor, std::memory_order_relaxed);
    CnaQNode* head = node.sec_head;
    head->sec_head = nullptr;
    head->sec_tail = nullptr;
    head->local_handoffs = 0;
    head->locked.store(0, std::memory_order_release);
    return;
  }

  // Search (bounded) for a successor on our socket, detaching skipped remote
  // waiters to the secondary queue.
  CnaQNode* scan = successor;
  CnaQNode* skipped_head = nullptr;
  CnaQNode* skipped_tail = nullptr;
  std::uint32_t scanned = 0;
  while (scan != nullptr && scan->socket != node.socket && scanned < kMaxScan) {
    CnaQNode* next = scan->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      break;  // cannot detach the tail node safely
    }
    if (skipped_head == nullptr) {
      skipped_head = scan;
    }
    skipped_tail = scan;
    scan = next;
    ++scanned;
  }

  if (scan == nullptr || scan->socket != node.socket || skipped_head == nullptr) {
    // No (reachable) local successor: plain FIFO handoff.
    grant(node, successor, 0);
    return;
  }

  // Detach [skipped_head, skipped_tail] onto the secondary queue and grant
  // to the local `scan`.
  skipped_tail->next.store(nullptr, std::memory_order_relaxed);
  if (node.sec_head == nullptr) {
    node.sec_head = skipped_head;
  } else {
    node.sec_tail->next.store(skipped_head, std::memory_order_relaxed);
  }
  node.sec_tail = skipped_tail;
  secondary_moves_.fetch_add(scanned, std::memory_order_relaxed);
  grant(node, scan, node.local_handoffs + 1);
}

}  // namespace concord
