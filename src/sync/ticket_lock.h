// Ticket spinlock — the "Stock" baseline.
//
// FIFO-fair, single cache line. This is the stand-in for a stock kernel
// spinlock in the paper's Figure 2(b): fair but collapses under cross-socket
// contention because every waiter spins on the same now-serving word.

#ifndef SRC_SYNC_TICKET_LOCK_H_
#define SRC_SYNC_TICKET_LOCK_H_

#include <atomic>

#include "src/base/cacheline.h"
#include "src/base/spinwait.h"

namespace concord {

class CONCORD_CACHE_ALIGNED TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void Lock() {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait spin;
    while (serving_.load(std::memory_order_acquire) != my) {
      spin.Once();
    }
  }

  bool TryLock() {
    std::uint32_t serving = serving_.load(std::memory_order_relaxed);
    std::uint32_t expected = serving;
    // Lock is free iff next == serving; claim by bumping next.
    return next_.compare_exchange_strong(expected, serving + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void Unlock() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

  bool IsLocked() const {
    return next_.load(std::memory_order_relaxed) !=
           serving_.load(std::memory_order_relaxed);
  }

  // Approximate number of threads waiting behind the current holder.
  std::uint32_t WaitersApprox() const {
    const std::uint32_t pending = next_.load(std::memory_order_relaxed) -
                                  serving_.load(std::memory_order_relaxed);
    return pending > 1 ? pending - 1 : 0;
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

}  // namespace concord

#endif  // SRC_SYNC_TICKET_LOCK_H_
