// Test-and-set and test-and-test-and-set spinlocks.
//
// These are the baseline "non-scalable" locks: every contended acquisition
// bounces the lock's cache line across all waiters. They exist as (a) the
// stock baseline in benchmarks and (b) the per-socket building block inside
// cohort locks.

#ifndef SRC_SYNC_TAS_LOCK_H_
#define SRC_SYNC_TAS_LOCK_H_

#include <atomic>

#include "src/base/cacheline.h"
#include "src/base/spinwait.h"

namespace concord {

class CONCORD_CACHE_ALIGNED TasLock {
 public:
  TasLock() = default;
  TasLock(const TasLock&) = delete;
  TasLock& operator=(const TasLock&) = delete;

  void Lock() {
    SpinWait spin;
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      spin.Once();
    }
  }

  bool TryLock() { return flag_.exchange(1, std::memory_order_acquire) == 0; }

  void Unlock() { flag_.store(0, std::memory_order_release); }

  bool IsLocked() const { return flag_.load(std::memory_order_relaxed) != 0; }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

// TTAS: spins on a plain load and only attempts the exchange when the lock
// looks free, avoiding the write-storm of pure TAS.
class CONCORD_CACHE_ALIGNED TtasLock {
 public:
  TtasLock() = default;
  TtasLock(const TtasLock&) = delete;
  TtasLock& operator=(const TtasLock&) = delete;

  void Lock() {
    SpinWait spin;
    while (true) {
      if (flag_.load(std::memory_order_relaxed) == 0 &&
          flag_.exchange(1, std::memory_order_acquire) == 0) {
        return;
      }
      spin.Once();
    }
  }

  bool TryLock() {
    return flag_.load(std::memory_order_relaxed) == 0 &&
           flag_.exchange(1, std::memory_order_acquire) == 0;
  }

  void Unlock() { flag_.store(0, std::memory_order_release); }

  bool IsLocked() const { return flag_.load(std::memory_order_relaxed) != 0; }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

}  // namespace concord

#endif  // SRC_SYNC_TAS_LOCK_H_
