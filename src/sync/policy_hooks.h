// Lock policy hook tables — the mechanism behind Table 1 of the paper.
//
// A lock does not know *why* one waiter should run before another; a policy
// does. Locks in this library consult an RCU-published hook table at their
// decision points. The Concord layer (src/concord) builds these tables from
// either native C++ functions ("precompiled" in the paper's comparison) or
// verified BPF programs ("Concord-..."), and hot-swaps them while the lock is
// under contention. BPF-backed slots dispatch through RunPolicyProgram
// (src/bpf/jit/jit.h): attach-time JIT-compiled native code when available,
// the interpreter otherwise — the table shape is identical either way.
//
// Hook semantics follow Table 1:
//   cmp_node        - should `curr` be moved into the shuffler's group?
//                     Pure decision: cannot mutate lock state. Hazard:
//                     fairness.
//   skip_shuffle    - skip this shuffling round entirely. Hazard: fairness.
//   schedule_waiter - should this waiter park now (vs. keep spinning)?
//                     Hazard: performance (wake-up latency).
//   lock_acquire / lock_contended / lock_acquired / lock_release
//                   - profiling taps. Hazard: lengthen the critical section.

#ifndef SRC_SYNC_POLICY_HOOKS_H_
#define SRC_SYNC_POLICY_HOOKS_H_

#include <cstdint>

namespace concord {

// The waiter snapshot handed to policy decisions. Field layout is load-
// bearing: src/concord/hooks.cc declares the matching BPF context
// descriptors against these exact offsets.
struct ShflWaiterView {
  std::uint64_t wait_ns = 0;       // off 0:  time spent waiting so far
  std::uint64_t cs_ewma_ns = 0;    // off 8:  waiter's critical-section EWMA
  std::uint32_t socket = 0;        // off 16: virtual socket
  std::uint32_t vcpu = 0;          // off 20: virtual CPU
  std::int32_t priority = 0;       // off 24: task priority annotation
  std::uint32_t task_class = 0;    // off 28: TaskClass
  std::uint32_t locks_held = 0;    // off 32: current nesting depth
  std::uint32_t task_id = 0;       // off 36
};
static_assert(sizeof(ShflWaiterView) == 40);

struct ShflHooks {
  // Opaque cookie passed to every hook (Concord stores its policy object
  // here; native policies store whatever they like).
  void* user_data = nullptr;

  // Shuffling decisions. Null => lock default (no shuffling).
  bool (*cmp_node)(void* user_data, const ShflWaiterView& shuffler,
                   const ShflWaiterView& curr) = nullptr;
  bool (*skip_shuffle)(void* user_data, const ShflWaiterView& shuffler) = nullptr;

  // Parking decision for blocking locks. Null => default spin-then-park.
  // `spin_iterations` is how many wait steps the waiter has taken.
  bool (*schedule_waiter)(void* user_data, const ShflWaiterView& waiter,
                          std::uint32_t spin_iterations) = nullptr;

  // Profiling taps. `lock_id` is the lock's registry id (0 if unregistered).
  void (*lock_acquire)(void* user_data, std::uint64_t lock_id) = nullptr;
  void (*lock_contended)(void* user_data, std::uint64_t lock_id) = nullptr;
  void (*lock_acquired)(void* user_data, std::uint64_t lock_id) = nullptr;
  void (*lock_release)(void* user_data, std::uint64_t lock_id) = nullptr;

  // Safety bound on shuffling rounds per lock handover (§4.2: "statically
  // bounding the number of shuffling rounds minimizes starvation"). The lock
  // clamps this to ShflLock::kShuffleRoundCap.
  std::uint32_t max_shuffle_rounds = 64;

  // Maintain per-acquisition hold-time accounting (timestamps, CS EWMA).
  // Costs two clock reads per acquisition; needed by profiling and by
  // policies reading cs_ewma_ns (e.g. scheduler-cooperative locking).
  bool track_hold_time = false;

  // Starvation bound per *waiter*: once a queued waiter has been overtaken
  // this many times by policy moves, no further waiter may be reordered past
  // it (the shuffle-round budget bounds the shuffler; this bounds the
  // victim). Clamped to ShflLock::kBypassCap.
  std::uint32_t max_waiter_bypasses = 128;

  // Runtime budget per hook invocation, in nanoseconds. 0 disables budget
  // timing entirely for this table. When nonzero, the Concord dispatch path
  // times each hook call and trips containment after `hook_budget_trip`
  // overruns (see src/concord/containment.h).
  std::uint64_t hook_budget_ns = 0;
  std::uint32_t hook_budget_trip = 8;
};

// Readers-writer lock mode, consulted by BRAVO-style locks on the reader
// path. Policies switch a lock between flavours on the fly (§3.1.1 "lock
// switching").
enum class RwMode : std::uint32_t {
  kNeutral = 0,     // plain underlying readers-writer lock
  kReaderBias = 1,  // BRAVO fast path enabled
  kWriterOnly = 2,  // readers take the write path (write-heavy workloads)
};

struct RwHooks {
  void* user_data = nullptr;

  // Which mode should the lock operate in right now? Null => kNeutral unless
  // the lock was constructed with a fixed mode.
  std::uint32_t (*rw_mode)(void* user_data) = nullptr;

  // Profiling taps (same semantics as ShflHooks).
  void (*lock_acquire)(void* user_data, std::uint64_t lock_id) = nullptr;
  void (*lock_contended)(void* user_data, std::uint64_t lock_id) = nullptr;
  void (*lock_acquired)(void* user_data, std::uint64_t lock_id) = nullptr;
  void (*lock_release)(void* user_data, std::uint64_t lock_id) = nullptr;

  // Same semantics as ShflHooks::hook_budget_ns / hook_budget_trip.
  std::uint64_t hook_budget_ns = 0;
  std::uint32_t hook_budget_trip = 8;
};

}  // namespace concord

#endif  // SRC_SYNC_POLICY_HOOKS_H_
