#include "src/concord/rpc/dispatch.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "src/base/fault.h"
#include "src/base/time.h"
#include "src/bpf/analysis/certify.h"
#include "src/bpf/assembler.h"
#include "src/bpf/maps.h"
#include "src/concord/agent/fleet.h"
#include "src/concord/autotune/controller.h"
#include "src/concord/concord.h"
#include "src/concord/containment.h"
#include "src/concord/hooks.h"
#include "src/concord/policy.h"
#include "src/concord/policy_lint.h"
#include "src/concord/policy_source.h"

namespace concord {
namespace {

// --- param helpers -----------------------------------------------------------

std::string StringParam(const JsonValue& params, const std::string& key,
                        const std::string& fallback) {
  const JsonValue* value = params.Find(key);
  if (value == nullptr || !value->IsString()) {
    return fallback;
  }
  return value->string_value;
}

StatusOr<std::string> RequiredStringParam(const JsonValue& params,
                                          const std::string& key) {
  const JsonValue* value = params.IsObject() ? params.Find(key) : nullptr;
  if (value == nullptr || !value->IsString() || value->string_value.empty()) {
    return InvalidArgumentError("missing required string param '" + key + "'");
  }
  return value->string_value;
}

// Accepts a JSON number or a decimal string — concordctl forwards every
// --param as a string, so "pid": "12345" must work as well as "pid": 12345.
StatusOr<std::uint64_t> RequiredU64Param(const JsonValue& params,
                                         const std::string& key) {
  const JsonValue* value = params.IsObject() ? params.Find(key) : nullptr;
  if (value != nullptr && value->IsNumber() && value->number_value >= 0) {
    return static_cast<std::uint64_t>(value->number_value);
  }
  if (value != nullptr && value->IsString() && !value->string_value.empty()) {
    std::uint64_t parsed = 0;
    for (const char c : value->string_value) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("param '" + key +
                                    "' is not a non-negative integer");
      }
      parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return parsed;
  }
  return InvalidArgumentError("missing required integer param '" + key + "'");
}

// --- verb bodies -------------------------------------------------------------

StatusOr<std::string> HandleStatus(
    const JsonValue& params,
    const std::function<void(JsonWriter&)>& extra_status) {
  const std::string selector = StringParam(params, "selector", "*");
  const auto locks = Concord::Global().ListLocks(selector);
  JsonWriter json;
  json.BeginObject();
  json.NumberField("pid", static_cast<std::int64_t>(getpid()));
  json.NumberField("now_ns", MonotonicNowNs());
  json.Key("autotune_running").Bool(AutotuneController::Global().running());
  json.Key("locks").BeginArray();
  for (const auto& lock : locks) {
    json.BeginObject();
    json.NumberField("lock_id", lock.lock_id);
    json.Field("name", lock.name);
    json.Field("class", lock.lock_class);
    json.Key("is_rw").Bool(lock.is_rw);
    json.Key("has_policy").Bool(lock.has_policy);
    json.Field("policy", lock.policy_name);
    json.Key("profiling").Bool(lock.profiling);
    json.Key("tracing").Bool(lock.tracing);
    json.EndObject();
  }
  json.EndArray();
  if (extra_status) {
    extra_status(json);
  }
  json.EndObject();
  return json.TakeString();
}

StatusOr<std::string> HandleAutotuneEnable(const JsonValue& params) {
  const std::string selector = StringParam(params, "selector", "*");
  CONCORD_RETURN_IF_ERROR(Concord::Global().EnableAutotune(selector));
  JsonWriter json;
  json.BeginObject();
  json.Key("enabled").Bool(true);
  json.Field("selector", selector);
  json.EndObject();
  return json.TakeString();
}

StatusOr<std::string> HandleAutotuneDisable(const JsonValue&) {
  CONCORD_RETURN_IF_ERROR(Concord::Global().DisableAutotune());
  return std::string("{\"disabled\":true}");
}

StatusOr<std::string> HandleTraceEnable(const JsonValue& params) {
  const std::string selector = StringParam(params, "selector", "*");
  CONCORD_RETURN_IF_ERROR(
      Concord::Global().EnableTracingBySelector(selector));
  JsonWriter json;
  json.BeginObject();
  json.Key("tracing").Bool(true);
  json.Field("selector", selector);
  json.EndObject();
  return json.TakeString();
}

StatusOr<std::string> HandleTraceDisable(const JsonValue& params) {
  const std::string selector = StringParam(params, "selector", "*");
  Concord& concord = Concord::Global();
  const auto ids = concord.Select(selector);
  if (ids.empty()) {
    return NotFoundError("selector '" + selector + "' matches no locks");
  }
  std::uint64_t disabled = 0;
  for (const std::uint64_t id : ids) {
    if (concord.DisableTracing(id).ok()) {
      ++disabled;
    }
  }
  JsonWriter json;
  json.BeginObject();
  json.NumberField("disabled", disabled);
  json.EndObject();
  return json.TakeString();
}

StatusOr<std::string> HandleTraceDump(const JsonValue&) {
  // Already one complete JSON value (Chrome trace-event format).
  return Concord::Global().TraceChromeJson();
}

StatusOr<std::string> HandleMapDump(const JsonValue& params) {
  const std::string selector = StringParam(params, "selector", "*");
  const std::string map_name = StringParam(params, "map", "");
  return Concord::Global().MapDumpJson(selector, map_name);
}

StatusOr<std::string> HandleContainmentStatus(const JsonValue& params) {
  const std::string selector = StringParam(params, "selector", "*");
  const auto locks = Concord::Global().ListLocks(selector);
  ContainmentRegistry& registry = ContainmentRegistry::Global();
  JsonWriter json;
  json.BeginObject();
  json.Key("locks").BeginArray();
  for (const auto& lock : locks) {
    json.BeginObject();
    json.NumberField("lock_id", lock.lock_id);
    json.Field("name", lock.name);
    const auto status = registry.StatusOf(lock.lock_id);
    if (status.has_value()) {
      json.Field("health", PolicyHealthName(status->health));
      json.Field("policy", status->policy_name);
      json.NumberField("fault_count", status->fault_count);
      json.NumberField("quarantine_count", status->quarantine_count);
      json.NumberField("backoff_ns", status->backoff_ns);
    } else {
      json.Field("health", PolicyHealthName(PolicyHealth::kActive));
      json.Field("policy", "");
    }
    json.EndObject();
  }
  json.EndArray();
  // Newest events last, bounded so a long-lived process cannot grow the
  // response without limit.
  constexpr std::size_t kMaxEvents = 64;
  const auto events = registry.events();
  const std::size_t start =
      events.size() > kMaxEvents ? events.size() - kMaxEvents : 0;
  json.Key("events").BeginArray();
  for (std::size_t i = start; i < events.size(); ++i) {
    const ContainmentEvent& event = events[i];
    json.BeginObject();
    json.NumberField("time_ns", event.time_ns);
    json.NumberField("lock_id", event.lock_id);
    json.Field("policy", event.policy_name);
    json.Field("fault", ContainmentFaultName(event.fault));
    json.Field("action", ContainmentActionName(event.action));
    json.Field("detail", event.detail);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

StatusOr<std::string> HandleFaultsArm(const JsonValue& params) {
#if CONCORD_FAULT_INJECTION
  auto directive = RequiredStringParam(params, "directive");
  CONCORD_RETURN_IF_ERROR(directive.status());
  if (!FaultRegistry::Global().ArmFromDirective(*directive)) {
    return InvalidArgumentError("malformed fault directive '" + *directive +
                                "' (want point=always|1inN[:seed]|nthN|firstN"
                                "[@delay_ns])");
  }
  JsonWriter json;
  json.BeginObject();
  json.Field("armed", *directive);
  json.EndObject();
  return json.TakeString();
#else
  (void)params;
  return FailedPreconditionError(
      "fault injection is compiled out of this build "
      "(-DCONCORD_ENABLE_FAULT_INJECTION=ON to enable)");
#endif
}

StatusOr<std::string> HandleFaultsList(const JsonValue&) {
  JsonWriter json;
  json.BeginObject();
#if CONCORD_FAULT_INJECTION
  json.Key("compiled_in").Bool(true);
  json.Key("points").BeginArray();
  for (const auto& point : FaultRegistry::Global().ListPoints()) {
    json.BeginObject();
    json.Field("name", point.name);
    json.Field("description", point.description);
    json.Key("armed").Bool(point.armed);
    if (point.armed) {
      json.Field("directive", point.directive);
      json.NumberField("evaluations", point.evaluations);
      json.NumberField("fires", point.fires);
    }
    json.EndObject();
  }
  json.EndArray();
#else
  json.Key("compiled_in").Bool(false);
  json.Key("points").BeginArray().EndArray();
#endif
  json.EndObject();
  return json.TakeString();
}

StatusOr<std::string> HandlePolicyAttach(const JsonValue& params) {
  auto selector = RequiredStringParam(params, "selector");
  CONCORD_RETURN_IF_ERROR(selector.status());

  std::string source = StringParam(params, "source", "");
  std::string name = StringParam(params, "name", "");
  const std::string file = StringParam(params, "file", "");
  if (source.empty() == file.empty()) {
    return InvalidArgumentError(
        "exactly one of 'file' (server-side .casm path) or 'source' (inline "
        "assembly) is required");
  }
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      return NotFoundError("cannot open policy file '" + file + "'");
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
    if (name.empty()) {
      const std::size_t slash = file.find_last_of('/');
      name = slash == std::string::npos ? file : file.substr(slash + 1);
      const std::size_t dot = name.rfind(".casm");
      if (dot != std::string::npos) {
        name = name.substr(0, dot);
      }
    }
  }
  if (name.empty()) {
    name = "rpc_policy";
  }

  HookKind hook;
  const std::string hook_param = StringParam(params, "hook", "");
  if (!hook_param.empty()) {
    if (!ParseHookKindName(hook_param, &hook)) {
      return InvalidArgumentError("unknown hook '" + hook_param + "'");
    }
  } else {
    auto resolved = ResolveHookDirective(source);
    if (!resolved.ok()) {
      if (resolved.status().code() == StatusCode::kNotFound) {
        return InvalidArgumentError(
            "policy has no '; hook: <name>' directive and no 'hook' param");
      }
      return resolved.status();  // malformed/unknown, with line context
    }
    hook = *resolved;
  }

  // Runtime budget: an explicit 'budget_ns' param wins; otherwise a
  // `; budget_ns: <N>` directive in the source applies. Whichever it is,
  // the WCET gate below certifies the program against it before attach.
  std::uint64_t budget_ns = 0;
  const JsonValue* budget_param = params.Find("budget_ns");
  if (budget_param != nullptr) {
    if (!budget_param->IsNumber() || budget_param->number_value < 0) {
      return InvalidArgumentError("'budget_ns' must be a non-negative number");
    }
    budget_ns = static_cast<std::uint64_t>(budget_param->number_value);
  } else {
    auto directive = ResolveBudgetDirective(source);
    if (directive.ok()) {
      budget_ns = *directive;
    } else if (directive.status().code() != StatusCode::kNotFound) {
      return directive.status();
    }
  }

  // The full static-analysis gate: assemble, verify under the hook's
  // capability mask, lint the lock invariants. Only then does the spec reach
  // Concord::Attach (which re-verifies — belt and braces, same as every
  // other attach path).
  //
  // Policies that declare no maps of their own get the legacy 8-slot
  // "scratch" knob array at map index 0. A source with `.map` directives
  // owns the whole map table instead — its declarations index from 0, which
  // is how the assembly in the policy was written.
  std::shared_ptr<ArrayMap> scratch;
  std::vector<BpfMap*> caller_maps;
  if (!SourceDeclaresMaps(source)) {
    scratch = std::make_shared<ArrayMap>("scratch", 8, 8);
    caller_maps.push_back(scratch.get());
  }
  std::vector<std::shared_ptr<BpfMap>> declared_maps;
  auto program = AssembleProgram(name, source, &DescriptorFor(hook),
                                 std::move(caller_maps), &declared_maps);
  CONCORD_RETURN_IF_ERROR(program.status());
  LintReport lint;
  Verifier::Analysis analysis;
  CONCORD_RETURN_IF_ERROR(CheckPolicyProgram(hook, *program, &lint, &analysis));
  // Certification gate (WCET vs budget, shared-map races). VerifyAll re-runs
  // it inside Attach — belt and braces — but certifying here hands the RPC
  // caller the full diagnostic with the offending instruction and map site.
  CertificationReport cert;
  CONCORD_RETURN_IF_ERROR(CertifyProgram(*program, analysis, budget_ns, &cert));

  PolicySpec spec;
  spec.name = name;
  spec.hook_budget_ns = budget_ns;
  CONCORD_RETURN_IF_ERROR(spec.AddProgram(hook, std::move(*program)));
  if (scratch != nullptr) {
    spec.maps.push_back(std::move(scratch));
  }
  for (auto& map : declared_maps) {
    spec.maps.push_back(std::move(map));  // keep `.map`-declared maps alive
  }
  CONCORD_RETURN_IF_ERROR(
      Concord::Global().AttachBySelector(*selector, spec));

  JsonWriter json;
  json.BeginObject();
  json.Field("attached", name);
  json.Field("hook", HookKindName(hook));
  json.Field("selector", *selector);
  json.NumberField("certified_wcet_ns", cert.wcet.certified_ns);
  if (budget_ns != 0) {
    json.NumberField("budget_ns", budget_ns);
  }
  json.NumberField(
      "locks",
      static_cast<std::uint64_t>(Concord::Global().Select(*selector).size()));
  json.EndObject();
  return json.TakeString();
}

StatusOr<std::string> HandlePolicyDetach(const JsonValue& params) {
  auto selector = RequiredStringParam(params, "selector");
  CONCORD_RETURN_IF_ERROR(selector.status());
  Concord& concord = Concord::Global();
  const auto locks = concord.ListLocks(*selector);
  if (locks.empty()) {
    return NotFoundError("selector '" + *selector + "' matches no locks");
  }
  std::uint64_t detached = 0;
  for (const auto& lock : locks) {
    if (lock.has_policy && concord.Detach(lock.lock_id).ok()) {
      ++detached;
    }
  }
  JsonWriter json;
  json.BeginObject();
  json.NumberField("detached", detached);
  json.NumberField("matched", static_cast<std::uint64_t>(locks.size()));
  json.EndObject();
  return json.TakeString();
}

// --- fleet agent verbs -------------------------------------------------------
//
// The multi-process agent (src/concord/agent/fleet.h) runs an RpcServer with
// this same dispatcher; workers call agent.register/agent.leave against it.
// Registration is deliberately cheap and synchronous-side-effect-free: the
// worker is recorded, and the agent's next Tick maps the segment and pushes
// incumbent policies. Pushing from here would call back into the worker's
// socket while the worker is still blocked in this very RPC.

StatusOr<std::string> HandleAgentRegister(const JsonValue& params) {
  auto pid = RequiredU64Param(params, "pid");
  CONCORD_RETURN_IF_ERROR(pid.status());
  auto shm = RequiredStringParam(params, "shm");
  CONCORD_RETURN_IF_ERROR(shm.status());
  auto socket = RequiredStringParam(params, "socket");
  CONCORD_RETURN_IF_ERROR(socket.status());
  CONCORD_RETURN_IF_ERROR(
      FleetAgent::Global().RegisterWorker(*pid, *shm, *socket));
  JsonWriter json;
  json.BeginObject();
  json.NumberField("pid", *pid);
  json.NumberField(
      "workers", static_cast<std::uint64_t>(FleetAgent::Global().WorkerCount()));
  json.EndObject();
  return json.TakeString();
}

StatusOr<std::string> HandleAgentLeave(const JsonValue& params) {
  auto pid = RequiredU64Param(params, "pid");
  CONCORD_RETURN_IF_ERROR(pid.status());
  CONCORD_RETURN_IF_ERROR(FleetAgent::Global().LeaveWorker(*pid));
  JsonWriter json;
  json.BeginObject();
  json.NumberField("pid", *pid);
  json.NumberField(
      "workers", static_cast<std::uint64_t>(FleetAgent::Global().WorkerCount()));
  json.EndObject();
  return json.TakeString();
}

}  // namespace

RpcDispatcher::RpcDispatcher() {
  auto add = [this](std::string name, bool read_only,
                    std::function<StatusOr<std::string>(const JsonValue&)> fn) {
    verbs_.push_back({std::move(name), read_only, std::move(fn)});
  };
  add("status", true,
      [this](const JsonValue& params) {
        return HandleStatus(params, extra_status_);
      });
  add("autotune.enable", false, HandleAutotuneEnable);
  add("autotune.disable", false, HandleAutotuneDisable);
  add("autotune.status", true, [](const JsonValue&) -> StatusOr<std::string> {
    return Concord::Global().AutotuneStatusJson();
  });
  add("trace.enable", false, HandleTraceEnable);
  add("trace.disable", false, HandleTraceDisable);
  add("trace.dump", true, HandleTraceDump);
  add("map.dump", true, HandleMapDump);
  add("containment.status", true, HandleContainmentStatus);
  add("faults.arm", false, HandleFaultsArm);
  add("faults.list", true, HandleFaultsList);
  add("policy.attach", false, HandlePolicyAttach);
  add("policy.detach", false, HandlePolicyDetach);
  add("agent.register", false, HandleAgentRegister);
  add("agent.leave", false, HandleAgentLeave);
  add("agent.status", true, [](const JsonValue&) -> StatusOr<std::string> {
    return FleetAgent::Global().StatusJson();
  });
}

const RpcDispatcher::Verb* RpcDispatcher::Find(const std::string& method) const {
  for (const Verb& verb : verbs_) {
    if (verb.name == method) {
      return &verb;
    }
  }
  return nullptr;
}

bool RpcDispatcher::Has(const std::string& method) const {
  return Find(method) != nullptr;
}

bool RpcDispatcher::IsReadOnly(const std::string& method) const {
  const Verb* verb = Find(method);
  return verb != nullptr && verb->read_only;
}

std::vector<std::string> RpcDispatcher::Methods() const {
  std::vector<std::string> names;
  names.reserve(verbs_.size());
  for (const Verb& verb : verbs_) {
    names.push_back(verb.name);
  }
  return names;
}

StatusOr<std::string> RpcDispatcher::Dispatch(const std::string& method,
                                              const JsonValue& params) const {
  const Verb* verb = Find(method);
  if (verb == nullptr) {
    return NotFoundError("unknown method '" + method + "'");
  }
  if (CONCORD_FAULT_POINT("rpc.handler")) {
    return InternalError("injected rpc.handler fault");
  }
  return verb->handler(params);
}

void RpcDispatcher::SetExtraStatus(std::function<void(JsonWriter&)> extra) {
  extra_status_ = std::move(extra);
}

}  // namespace concord
