// Control-plane RPC client: one request/response exchange over the local
// socket, with per-request deadlines and an optional bounded-backoff retry
// loop.
//
// Retry policy (the robustness contract concordctl builds on):
//   - A retry is attempted only when the caller marks the request
//     idempotent. Read-only verbs (status, *.status, faults.list,
//     trace.dump) qualify; mutating verbs never do — a mutating request
//     whose response was lost may already have been applied, and resending
//     it is not the client's call to make.
//   - Retried failures: transport errors (connect refused, deadline
//     exceeded, short/garbled reply) and server responses explicitly marked
//     retryable (`busy` load shed, `unavailable` drain).
//   - Backoff is exponential with jitter, bounded by backoff_max_ms, and the
//     attempt count is bounded by max_attempts — the client always
//     terminates, it never camps on a dead socket.

#ifndef SRC_CONCORD_RPC_CLIENT_H_
#define SRC_CONCORD_RPC_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/concord/rpc/protocol.h"

namespace concord {

struct RpcClientOptions {
  std::string socket_path;

  // Per-attempt deadline covering connect + send + receive.
  std::uint64_t timeout_ms = 2'000;

  // Total tries for idempotent requests (1 = no retry). Non-idempotent
  // requests always get exactly one attempt.
  std::uint32_t max_attempts = 4;

  // Exponential backoff between attempts: delay doubles from initial,
  // capped at max, each with +-50% deterministic jitter.
  std::uint64_t backoff_initial_ms = 25;
  std::uint64_t backoff_max_ms = 1'000;
  // 0 seeds from the pid so concurrent clients don't thunder in phase.
  std::uint64_t jitter_seed = 0;
};

class RpcClient {
 public:
  explicit RpcClient(RpcClientOptions options);

  // Single attempt, no retry. `params_json` must be a JSON object or empty
  // (treated as no params). Transport-level failures (connect, deadline,
  // malformed reply) are a non-OK status; a server-side error is an OK
  // return with response.ok == false.
  StatusOr<RpcResponse> CallOnce(const std::string& method,
                                 const std::string& params_json);

  // Retries per the policy above when `idempotent`; single attempt
  // otherwise.
  StatusOr<RpcResponse> Call(const std::string& method,
                             const std::string& params_json, bool idempotent);

  const RpcClientOptions& options() const { return options_; }

 private:
  std::uint64_t NextJitteredBackoffMs(std::uint32_t attempt);

  RpcClientOptions options_;
  std::uint64_t rng_state_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace concord

#endif  // SRC_CONCORD_RPC_CLIENT_H_
