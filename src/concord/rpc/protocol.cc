#include "src/concord/rpc/protocol.h"

namespace concord {

const char* RpcErrorCodeName(RpcErrorCode code) {
  switch (code) {
    case RpcErrorCode::kParseError:
      return "parse_error";
    case RpcErrorCode::kInvalidRequest:
      return "invalid_request";
    case RpcErrorCode::kUnknownMethod:
      return "unknown_method";
    case RpcErrorCode::kInvalidParams:
      return "invalid_params";
    case RpcErrorCode::kNotFound:
      return "not_found";
    case RpcErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case RpcErrorCode::kPermissionDenied:
      return "permission_denied";
    case RpcErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case RpcErrorCode::kBusy:
      return "busy";
    case RpcErrorCode::kUnavailable:
      return "unavailable";
    case RpcErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case RpcErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

RpcErrorCode RpcErrorCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return RpcErrorCode::kInternal;  // callers never map an OK status
    case StatusCode::kInvalidArgument:
      return RpcErrorCode::kInvalidParams;
    case StatusCode::kFailedPrecondition:
      return RpcErrorCode::kFailedPrecondition;
    case StatusCode::kNotFound:
      return RpcErrorCode::kNotFound;
    case StatusCode::kPermissionDenied:
      return RpcErrorCode::kPermissionDenied;
    case StatusCode::kResourceExhausted:
      return RpcErrorCode::kResourceExhausted;
    case StatusCode::kInternal:
      return RpcErrorCode::kInternal;
  }
  return RpcErrorCode::kInternal;
}

namespace {

Status RequestError(RpcErrorCode code, const std::string& what) {
  return InvalidArgumentError(std::string(RpcErrorCodeName(code)) + ": " + what);
}

// Serializes an id value (validated to be number or string) into `out`.
void AppendId(std::string& out, const JsonValue& id) {
  if (id.IsString()) {
    JsonWriter::AppendEscaped(out, id.string_value);
    return;
  }
  JsonWriter writer;
  writer.Number(id.number_value);
  out += writer.str();
}

}  // namespace

StatusOr<RpcRequest> ParseRpcRequest(std::string_view line) {
  if (line.size() > kRpcMaxRequestBytes) {
    return RequestError(RpcErrorCode::kInvalidRequest,
                        "request exceeds " +
                            std::to_string(kRpcMaxRequestBytes) + " bytes");
  }
  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    return RequestError(RpcErrorCode::kParseError, parsed.status().message());
  }
  if (!parsed->IsObject()) {
    return RequestError(RpcErrorCode::kInvalidRequest,
                        "request must be a JSON object");
  }

  RpcRequest request;
  for (const auto& [key, value] : parsed->object) {
    if (key == "method") {
      if (!value.IsString() || value.string_value.empty()) {
        return RequestError(RpcErrorCode::kInvalidRequest,
                            "'method' must be a non-empty string");
      }
      request.method = value.string_value;
    } else if (key == "params") {
      if (!value.IsObject() && !value.IsNull()) {
        return RequestError(RpcErrorCode::kInvalidRequest,
                            "'params' must be an object");
      }
      request.params = value;
    } else if (key == "id") {
      if (!value.IsNumber() && !value.IsString()) {
        return RequestError(RpcErrorCode::kInvalidRequest,
                            "'id' must be a number or string");
      }
      request.id = value;
      request.has_id = true;
    } else {
      return RequestError(RpcErrorCode::kInvalidRequest,
                          "unknown request field '" + key + "'");
    }
  }
  if (request.method.empty()) {
    return RequestError(RpcErrorCode::kInvalidRequest, "missing 'method'");
  }
  return request;
}

std::string BuildRpcOk(const RpcRequest& request, std::string_view result_json) {
  std::string out = "{\"id\":";
  if (request.has_id) {
    AppendId(out, request.id);
  } else {
    out += "null";
  }
  out += ",\"ok\":true,\"result\":";
  out += result_json;
  out += "}\n";
  return out;
}

std::string BuildRpcError(const JsonValue* id, RpcErrorCode code,
                          std::string_view message, bool retryable) {
  std::string out = "{\"id\":";
  if (id != nullptr && (id->IsNumber() || id->IsString())) {
    AppendId(out, *id);
  } else {
    out += "null";
  }
  out += ",\"ok\":false,\"error\":{\"code\":";
  JsonWriter::AppendEscaped(out, RpcErrorCodeName(code));
  out += ",\"message\":";
  JsonWriter::AppendEscaped(out, message);
  out += "},\"retryable\":";
  out += retryable ? "true" : "false";
  out += "}\n";
  return out;
}

StatusOr<RpcResponse> ParseRpcResponse(std::string_view line) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    return InvalidArgumentError("response is not valid JSON: " +
                                parsed.status().message());
  }
  if (!parsed->IsObject()) {
    return InvalidArgumentError("response must be a JSON object");
  }
  const JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->IsBool()) {
    return InvalidArgumentError("response missing boolean 'ok'");
  }

  RpcResponse response;
  response.ok = ok->bool_value;
  if (response.ok) {
    const JsonValue* result = parsed->Find("result");
    if (result == nullptr) {
      return InvalidArgumentError("ok response missing 'result'");
    }
    // Re-serialize the result so callers get one canonical JSON value. A
    // structural re-emit (rather than slicing the original text) keeps this
    // robust against whitespace and escaping variation.
    JsonWriter writer;
    struct Emit {
      static void Value(JsonWriter& w, const JsonValue& v) {
        switch (v.type) {
          case JsonValue::Type::kNull:
            w.Null();
            break;
          case JsonValue::Type::kBool:
            w.Bool(v.bool_value);
            break;
          case JsonValue::Type::kNumber:
            w.Number(v.number_value);
            break;
          case JsonValue::Type::kString:
            w.String(v.string_value);
            break;
          case JsonValue::Type::kArray:
            w.BeginArray();
            for (const JsonValue& item : v.array) {
              Value(w, item);
            }
            w.EndArray();
            break;
          case JsonValue::Type::kObject:
            w.BeginObject();
            for (const auto& [key, item] : v.object) {
              w.Key(key);
              Value(w, item);
            }
            w.EndObject();
            break;
        }
      }
    };
    Emit::Value(writer, *result);
    response.result = writer.TakeString();
    return response;
  }

  const JsonValue* error = parsed->Find("error");
  if (error == nullptr || !error->IsObject()) {
    return InvalidArgumentError("error response missing 'error' object");
  }
  const JsonValue* code = error->Find("code");
  const JsonValue* message = error->Find("message");
  if (code == nullptr || !code->IsString()) {
    return InvalidArgumentError("error response missing string 'code'");
  }
  response.error_code = code->string_value;
  if (message != nullptr && message->IsString()) {
    response.error_message = message->string_value;
  }
  const JsonValue* retryable = parsed->Find("retryable");
  response.retryable =
      retryable != nullptr && retryable->IsBool() && retryable->bool_value;
  return response;
}

}  // namespace concord
