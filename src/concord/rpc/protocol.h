// Control-plane RPC wire protocol (docs/OPERATIONS.md).
//
// The transport is a local unix-domain stream socket carrying newline-
// delimited JSON frames — one request per line, one response per line, in
// order. This header is the pure framing/parsing layer: no sockets, no
// handler logic, so the request parser can be fuzzed and unit-tested as a
// plain function (tests/concord/rpc_protocol_test.cc feeds it truncated,
// oversized and mutated frames).
//
// Request:  {"id": 1, "method": "status", "params": {...}}
//   id      optional; number or string, echoed verbatim in the response so a
//           client can match pipelined replies. Anything else is rejected.
//   method  required non-empty string.
//   params  optional; must be an object when present.
//
// Response: {"id": 1, "ok": true,  "result": <value>}
//           {"id": 1, "ok": false, "error": {"code": "...", "message":
//            "..."}, "retryable": <bool>}
//
// `retryable` is the server's verdict that resending the identical request
// is safe and might succeed (load shed, shutting down). Clients combine it
// with their own verb table: concordctl retries read-only verbs only, no
// matter what the server claims — a mutating request whose response was lost
// may have been applied.

#ifndef SRC_CONCORD_RPC_PROTOCOL_H_
#define SRC_CONCORD_RPC_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "src/base/json.h"
#include "src/base/status.h"

namespace concord {

// Hard cap on one request frame (including the newline). The server sheds
// anything longer without parsing it; the parser enforces it again so no
// caller can feed an unbounded line through this layer.
inline constexpr std::size_t kRpcMaxRequestBytes = 64 * 1024;

// Stable wire error codes. The enum order is meaningless; the names are the
// contract (failure-mode table in docs/OPERATIONS.md).
enum class RpcErrorCode : std::uint8_t {
  kParseError,          // frame is not valid JSON
  kInvalidRequest,      // valid JSON, malformed envelope (bad id/method/params)
  kUnknownMethod,       // no such verb
  kInvalidParams,       // verb rejected its params
  kNotFound,            // named entity (lock, fault point, file) missing
  kFailedPrecondition,  // legal request, wrong state (e.g. autotune running)
  kPermissionDenied,    // policy failed the verifier or lint gate
  kResourceExhausted,   // capacity limit inside the facade
  kBusy,                // load shed: accept/work queue full — retry later
  kUnavailable,         // server draining/shutting down
  kDeadlineExceeded,    // connection read/write timed out
  kInternal,            // handler bug or injected rpc.handler fault
};

const char* RpcErrorCodeName(RpcErrorCode code);

// Facade Status -> wire code, for handler errors bubbled out of Concord.
RpcErrorCode RpcErrorCodeForStatus(const Status& status);

struct RpcRequest {
  std::string method;
  JsonValue params;  // kObject when given, kNull otherwise
  JsonValue id;      // kNumber or kString when given, kNull otherwise
  bool has_id = false;
};

// Parses one frame (the line without its trailing newline). Returns
// InvalidArgumentError whose message starts with the wire error code name
// ("parse_error: ..." / "invalid_request: ...") so the server can classify
// without re-parsing.
StatusOr<RpcRequest> ParseRpcRequest(std::string_view line);

// --- response envelopes ------------------------------------------------------

// `result_json` must be one complete JSON value (handlers build theirs with
// JsonWriter). The returned frame includes the trailing newline.
std::string BuildRpcOk(const RpcRequest& request, std::string_view result_json);

// `id` may be null (unparseable request — nothing to echo).
std::string BuildRpcError(const JsonValue* id, RpcErrorCode code,
                          std::string_view message, bool retryable);

// --- client side -------------------------------------------------------------

struct RpcResponse {
  bool ok = false;
  std::string result;  // raw JSON value when ok
  std::string error_code;
  std::string error_message;
  bool retryable = false;
};

// Parses a response frame. Malformed frames are an error (a broken server is
// a transport failure, not a protocol answer).
StatusOr<RpcResponse> ParseRpcResponse(std::string_view line);

}  // namespace concord

#endif  // SRC_CONCORD_RPC_PROTOCOL_H_
