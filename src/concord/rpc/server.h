// Local control-plane RPC server (docs/OPERATIONS.md).
//
// A unix-domain stream socket speaking the newline-delimited JSON protocol
// in src/concord/rpc/protocol.h, dispatching verbs through RpcDispatcher.
// Robustness is the design center — every failure mode of the socket must be
// invisible to the lock hot path (bench/a12_rpc measures exactly that):
//
//   isolation      the accept loop and workers are dedicated threads that
//                  only ever call control-plane facade functions; they take
//                  the same mutexes AutotuneStatusJson takes and nothing
//                  else. No lock/waiter/queue state is touched.
//   bounded queue  accepted connections wait in a bounded work queue; when
//                  it is full the connection gets a `busy` (503-style) error
//                  reply and is closed — the queue never grows without
//                  bound, no matter how fast clients connect.
//   timeouts       per-connection read and write timeouts: a client that
//                  connects and hangs, or stops draining its receive buffer,
//                  is disconnected; it cannot pin a worker forever.
//   input limits   frames above max_request_bytes are rejected without being
//                  parsed; malformed frames get a structured error reply.
//   graceful stop  Stop() closes the listener, finishes the request each
//                  worker is serving, answers queued-but-unserved
//                  connections with `unavailable`, then joins every thread.
//
// Fault points (src/base/fault.h): rpc.accept drops a freshly accepted
// connection, rpc.read fails a request read, rpc.write suppresses a response
// write, rpc.handler (in the dispatcher) aborts a verb. The RpcChaos suite
// arms each and proves clients see clean errors while the data path stays
// unaffected.

#ifndef SRC_CONCORD_RPC_SERVER_H_
#define SRC_CONCORD_RPC_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/concord/rpc/dispatch.h"
#include "src/concord/rpc/protocol.h"

namespace concord {

struct RpcServerOptions {
  std::string socket_path;

  // Accepted connections waiting for a worker. Anything beyond this is shed
  // with a `busy` reply.
  std::size_t max_pending = 16;
  // Worker threads serving connections (each drains one connection fully —
  // clients may pipeline many requests per connection).
  std::size_t workers = 2;

  std::uint64_t read_timeout_ms = 2'000;
  std::uint64_t write_timeout_ms = 2'000;
  std::size_t max_request_bytes = kRpcMaxRequestBytes;
  int listen_backlog = 16;
};

// Monotonic counters, all relaxed: a statistical view for `status` replies
// and tests, not a synchronization mechanism.
struct RpcServerStats {
  std::uint64_t accepted = 0;        // connections handed to the queue
  std::uint64_t shed = 0;            // connections refused with `busy`
  std::uint64_t requests = 0;        // frames parsed and dispatched
  std::uint64_t errors = 0;          // error envelopes sent (any code)
  std::uint64_t oversized = 0;       // frames shed for size
  std::uint64_t read_timeouts = 0;   // connections dropped for idleness
  std::uint64_t write_failures = 0;  // responses that could not be written
  std::uint64_t faults_injected = 0; // rpc.accept/read/write fires observed
};

class RpcServer {
 public:
  explicit RpcServer(RpcServerOptions options);
  ~RpcServer();  // calls Stop()

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  // Binds the socket (replacing any stale file at the path), then starts the
  // accept thread and workers. Fails if already running or the path does not
  // fit sockaddr_un.
  Status Start();

  // Graceful shutdown: stop accepting, drain in-flight requests, answer
  // queued connections with `unavailable`, join all threads, unlink the
  // socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return options_.socket_path; }

  RpcDispatcher& dispatcher() { return dispatcher_; }
  RpcServerStats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  // Best-effort single-frame reply used for shed/drain paths.
  void SendErrorAndClose(int fd, RpcErrorCode code, const std::string& message,
                         bool retryable);
  bool WriteFrame(int fd, const std::string& frame);

  RpcServerOptions options_;
  RpcDispatcher dispatcher_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  // Relaxed counters; see RpcServerStats.
  struct {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> oversized{0};
    std::atomic<std::uint64_t> read_timeouts{0};
    std::atomic<std::uint64_t> write_failures{0};
    std::atomic<std::uint64_t> faults_injected{0};
  } counters_;
};

}  // namespace concord

#endif  // SRC_CONCORD_RPC_SERVER_H_
