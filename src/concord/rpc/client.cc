#include "src/concord/rpc/client.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <utility>

#include "src/base/time.h"

namespace concord {
namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void SleepMs(std::uint64_t ms) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
  nanosleep(&ts, nullptr);
}

// RAII fd so every early return path closes the socket.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) {
      close(fd);
    }
  }
};

Status DeadlineError(const std::string& stage) {
  return FailedPreconditionError("deadline exceeded during " + stage);
}

}  // namespace

RpcClient::RpcClient(RpcClientOptions options) : options_(std::move(options)) {
  if (options_.max_attempts == 0) {
    options_.max_attempts = 1;
  }
  rng_state_ = options_.jitter_seed != 0
                   ? options_.jitter_seed
                   : static_cast<std::uint64_t>(getpid()) * 0x9e3779b97f4a7c15ull;
}

std::uint64_t RpcClient::NextJitteredBackoffMs(std::uint32_t attempt) {
  std::uint64_t base = options_.backoff_initial_ms;
  for (std::uint32_t i = 0; i < attempt && base < options_.backoff_max_ms; ++i) {
    base *= 2;
  }
  if (base > options_.backoff_max_ms) {
    base = options_.backoff_max_ms;
  }
  if (base == 0) {
    return 0;
  }
  // +-50% jitter: [base/2, base*3/2].
  rng_state_ = SplitMix64(rng_state_);
  return base / 2 + rng_state_ % (base + 1);
}

StatusOr<RpcResponse> RpcClient::CallOnce(const std::string& method,
                                          const std::string& params_json) {
  const std::uint64_t deadline_ns =
      MonotonicNowNs() + options_.timeout_ms * 1'000'000ull;
  auto remaining_ms = [&]() -> std::int64_t {
    const std::uint64_t now = MonotonicNowNs();
    if (now >= deadline_ns) {
      return 0;
    }
    return static_cast<std::int64_t>((deadline_ns - now) / 1'000'000ull);
  };

  sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("bad socket path '" + options_.socket_path +
                                "'");
  }
  memcpy(addr.sun_path, options_.socket_path.c_str(),
         options_.socket_path.size() + 1);

  Fd sock;
  sock.fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (sock.fd < 0) {
    return InternalError(std::string("socket: ") + strerror(errno));
  }

  // Non-blocking connect + poll gives the connect step its own share of the
  // request deadline.
  if (connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return NotFoundError("connect(" + options_.socket_path +
                           "): " + strerror(errno));
    }
    pollfd pfd;
    pfd.fd = sock.fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, static_cast<int>(remaining_ms()));
    if (ready <= 0) {
      return DeadlineError("connect");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(sock.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return NotFoundError("connect(" + options_.socket_path +
                           "): " + strerror(err != 0 ? err : errno));
    }
  }

  std::string frame = "{\"id\":" + std::to_string(next_id_++) +
                      ",\"method\":";
  {
    std::string escaped;
    JsonWriter::AppendEscaped(escaped, method);
    frame += escaped;
  }
  if (!params_json.empty()) {
    frame += ",\"params\":";
    frame += params_json;
  }
  frame += "}\n";

  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t wrote = send(sock.fd, frame.data() + sent,
                               frame.size() - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd;
      pfd.fd = sock.fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      if (poll(&pfd, 1, static_cast<int>(remaining_ms())) <= 0) {
        return DeadlineError("send");
      }
      continue;
    }
    if (wrote < 0 && errno == EINTR) {
      continue;
    }
    return InternalError(std::string("send: ") + strerror(errno));
  }

  std::string reply;
  char chunk[4096];
  while (true) {
    const std::size_t newline = reply.find('\n');
    if (newline != std::string::npos) {
      reply.resize(newline);
      break;
    }
    if (reply.size() > kRpcMaxRequestBytes * 64) {
      return InternalError("response exceeds sanity limit without newline");
    }
    pollfd pfd;
    pfd.fd = sock.fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (poll(&pfd, 1, static_cast<int>(remaining_ms())) <= 0) {
      return DeadlineError("receive");
    }
    const ssize_t got = recv(sock.fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      reply.append(chunk, static_cast<std::size_t>(got));
    } else if (got == 0) {
      // A server killed mid-reply leaves a half-written frame. Name that
      // case explicitly instead of handing the partial bytes downstream,
      // where they used to surface as a confusing parse error.
      if (reply.empty()) {
        return InternalError("connection closed before any response");
      }
      return InternalError("connection lost mid-reply (" +
                           std::to_string(reply.size()) +
                           " bytes of a partial frame discarded)");
    } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      return InternalError(std::string("recv: ") + strerror(errno));
    }
  }

  auto response = ParseRpcResponse(reply);
  if (!response.ok()) {
    return InternalError("malformed response: " + response.status().message());
  }
  return *response;
}

StatusOr<RpcResponse> RpcClient::Call(const std::string& method,
                                      const std::string& params_json,
                                      bool idempotent) {
  const std::uint32_t attempts = idempotent ? options_.max_attempts : 1;
  Status last_error = InternalError("no attempts made");
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      SleepMs(NextJitteredBackoffMs(attempt - 1));
    }
    auto result = CallOnce(method, params_json);
    if (!result.ok()) {
      last_error = result.status();
      continue;  // transport failure: retry (idempotent only)
    }
    if (!result->ok && result->retryable && attempt + 1 < attempts) {
      last_error = FailedPreconditionError("server " + result->error_code +
                                           ": " + result->error_message);
      continue;  // busy/unavailable load shed: back off and retry
    }
    return result;
  }
  return last_error;
}

}  // namespace concord
