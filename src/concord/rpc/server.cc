#include "src/concord/rpc/server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "src/base/fault.h"
#include "src/base/json.h"

namespace concord {
namespace {

// Applies a SO_RCVTIMEO/SO_SNDTIMEO pair so a hung peer unblocks recv/send
// with EAGAIN instead of pinning a worker.
void SetSocketTimeouts(int fd, std::uint64_t read_ms, std::uint64_t write_ms) {
  timeval rcv;
  rcv.tv_sec = static_cast<time_t>(read_ms / 1000);
  rcv.tv_usec = static_cast<suseconds_t>((read_ms % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof(rcv));
  timeval snd;
  snd.tv_sec = static_cast<time_t>(write_ms / 1000);
  snd.tv_usec = static_cast<suseconds_t>((write_ms % 1000) * 1000);
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));
}

}  // namespace

RpcServer::RpcServer(RpcServerOptions options) : options_(std::move(options)) {
  if (options_.workers == 0) {
    options_.workers = 1;
  }
  if (options_.max_request_bytes > kRpcMaxRequestBytes) {
    options_.max_request_bytes = kRpcMaxRequestBytes;
  }
  dispatcher_.SetExtraStatus([this](JsonWriter& json) {
    const RpcServerStats stats = this->stats();
    json.Key("rpc").BeginObject();
    json.Field("socket", options_.socket_path);
    json.NumberField("accepted", stats.accepted);
    json.NumberField("shed", stats.shed);
    json.NumberField("requests", stats.requests);
    json.NumberField("errors", stats.errors);
    json.NumberField("oversized", stats.oversized);
    json.NumberField("read_timeouts", stats.read_timeouts);
    json.NumberField("write_failures", stats.write_failures);
    json.NumberField("faults_injected", stats.faults_injected);
    json.EndObject();
  });
}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("RPC server already running");
  }
  sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path empty or longer than " +
                                std::to_string(sizeof(addr.sun_path) - 1) +
                                " bytes");
  }
  memcpy(addr.sun_path, options_.socket_path.c_str(),
         options_.socket_path.size() + 1);

  const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + strerror(errno));
  }
  // A stale socket file from a crashed predecessor would fail bind; the
  // path is ours by contract, so replace it.
  (void)unlink(options_.socket_path.c_str());
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd);
    return InternalError("bind(" + options_.socket_path +
                         "): " + strerror(err));
  }
  if (listen(fd, options_.listen_backlog) != 0) {
    const int err = errno;
    close(fd);
    (void)unlink(options_.socket_path.c_str());
    return InternalError(std::string("listen: ") + strerror(err));
  }

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void RpcServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  (void)unlink(options_.socket_path.c_str());
  running_.store(false, std::memory_order_release);
}

RpcServerStats RpcServer::stats() const {
  RpcServerStats out;
  out.accepted = counters_.accepted.load(std::memory_order_relaxed);
  out.shed = counters_.shed.load(std::memory_order_relaxed);
  out.requests = counters_.requests.load(std::memory_order_relaxed);
  out.errors = counters_.errors.load(std::memory_order_relaxed);
  out.oversized = counters_.oversized.load(std::memory_order_relaxed);
  out.read_timeouts = counters_.read_timeouts.load(std::memory_order_relaxed);
  out.write_failures =
      counters_.write_failures.load(std::memory_order_relaxed);
  out.faults_injected =
      counters_.faults_injected.load(std::memory_order_relaxed);
  return out;
}

void RpcServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, 100);
    if (ready <= 0) {
      continue;  // timeout tick (re-check stopping_) or EINTR
    }
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    SetSocketTimeouts(client, options_.read_timeout_ms,
                      options_.write_timeout_ms);
    if (CONCORD_FAULT_POINT("rpc.accept")) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      close(client);
      continue;
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> guard(queue_mu_);
      if (pending_.size() >= options_.max_pending) {
        shed = true;
      } else {
        pending_.push_back(client);
      }
    }
    if (shed) {
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      SendErrorAndClose(client, RpcErrorCode::kBusy,
                        "work queue full, retry later", /*retryable=*/true);
    } else {
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
    }
  }
}

void RpcServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else {
        return;  // stopping and nothing queued
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Graceful drain: connections that never reached a worker get a
      // structured answer instead of a silent close.
      SendErrorAndClose(fd, RpcErrorCode::kUnavailable,
                        "server shutting down", /*retryable=*/true);
      continue;
    }
    ServeConnection(fd);
  }
}

void RpcServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool client_open = true;
  while (client_open) {
    // Drain complete frames already buffered before reading more.
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (line.empty()) {
        continue;
      }
      counters_.requests.fetch_add(1, std::memory_order_relaxed);

      auto request = ParseRpcRequest(line);
      std::string response;
      if (!request.ok()) {
        const std::string& message = request.status().message();
        const RpcErrorCode code =
            message.rfind("parse_error", 0) == 0 ? RpcErrorCode::kParseError
                                                 : RpcErrorCode::kInvalidRequest;
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        response = BuildRpcError(nullptr, code, message, /*retryable=*/false);
      } else if (!dispatcher_.Has(request->method)) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        response = BuildRpcError(&request->id, RpcErrorCode::kUnknownMethod,
                                 "unknown method '" + request->method + "'",
                                 /*retryable=*/false);
      } else {
        auto result = dispatcher_.Dispatch(request->method, request->params);
        if (result.ok()) {
          response = BuildRpcOk(*request, *result);
        } else {
          counters_.errors.fetch_add(1, std::memory_order_relaxed);
          response = BuildRpcError(&request->id,
                                   RpcErrorCodeForStatus(result.status()),
                                   result.status().message(),
                                   /*retryable=*/false);
        }
      }

      if (CONCORD_FAULT_POINT("rpc.write")) {
        counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
        close(fd);
        return;
      }
      if (!WriteFrame(fd, response)) {
        counters_.write_failures.fetch_add(1, std::memory_order_relaxed);
        close(fd);
        return;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      break;  // in-flight frames answered; stop taking new ones
    }

    // A frame that outgrows the limit can never complete: reject without
    // parsing and drop the connection (the rest of the oversized line would
    // otherwise be misread as new frames).
    if (buffer.size() > options_.max_request_bytes) {
      counters_.oversized.fetch_add(1, std::memory_order_relaxed);
      SendErrorAndClose(fd, RpcErrorCode::kInvalidRequest,
                        "request exceeds " +
                            std::to_string(options_.max_request_bytes) +
                            " bytes",
                        /*retryable=*/false);
      return;
    }

    if (CONCORD_FAULT_POINT("rpc.read")) {
      counters_.faults_injected.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      return;
    }
    const ssize_t got = recv(fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer.append(chunk, static_cast<std::size_t>(got));
    } else if (got == 0) {
      client_open = false;  // clean EOF
    } else if (errno == EINTR) {
      continue;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        counters_.read_timeouts.fetch_add(1, std::memory_order_relaxed);
      }
      client_open = false;
    }
  }
  close(fd);
}

void RpcServer::SendErrorAndClose(int fd, RpcErrorCode code,
                                  const std::string& message, bool retryable) {
  const std::string frame = BuildRpcError(nullptr, code, message, retryable);
  counters_.errors.fetch_add(1, std::memory_order_relaxed);
  if (!WriteFrame(fd, frame)) {
    counters_.write_failures.fetch_add(1, std::memory_order_relaxed);
  }
  close(fd);
}

bool RpcServer::WriteFrame(int fd, const std::string& frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t wrote =
        send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) {
      continue;
    }
    return false;  // timeout (EAGAIN via SO_SNDTIMEO), EPIPE, or other error
  }
  return true;
}

}  // namespace concord
