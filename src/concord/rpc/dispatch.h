// Control-plane verb table: RPC method name -> facade call.
//
// Every handler is a thin adapter over the same thread-safe facade surface a
// C++ controller already uses — Concord::Global(), AutotuneController,
// ContainmentRegistry, FaultRegistry. That is the hot-path isolation
// contract: a handler takes exactly the control-plane mutexes those facades
// take (the same ones AutotuneStatusJson takes) and never touches a lock's
// queue, waiter or policy dispatch state directly, so no RPC failure mode
// can block an acquirer beyond normal control-plane activity.
//
// policy.attach goes through the full static-analysis gate — assemble,
// range-tracking verifier under the hook's capability mask, lock-invariant
// lint — before Concord::Attach (which verifies again). A spec that fails
// any stage never reaches a lock; there is no raw attach verb.
//
// Verbs are registered in the constructor and immutable afterwards;
// Dispatch() is safe to call from any number of server workers concurrently.

#ifndef SRC_CONCORD_RPC_DISPATCH_H_
#define SRC_CONCORD_RPC_DISPATCH_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/status.h"

namespace concord {

class RpcDispatcher {
 public:
  // Registers the builtin verb table:
  //   read-only: status, autotune.status, containment.status, faults.list,
  //              trace.dump
  //   mutating:  autotune.enable, autotune.disable, trace.enable,
  //              trace.disable, faults.arm, policy.attach, policy.detach
  RpcDispatcher();

  bool Has(const std::string& method) const;

  // Read-only verbs are idempotent: safe to retry on a lost response. The
  // concordctl retry policy keys off the same classification.
  bool IsReadOnly(const std::string& method) const;

  std::vector<std::string> Methods() const;

  // Runs the verb; returns one complete JSON value on success. The
  // "rpc.handler" fault point aborts any verb with an internal error before
  // the handler body runs. Must only be called with a method Has() accepts.
  StatusOr<std::string> Dispatch(const std::string& method,
                                 const JsonValue& params) const;

  // Extra fields appended to the `status` result object (the server injects
  // its own accept/shed/served counters). Set before serving starts.
  void SetExtraStatus(std::function<void(JsonWriter&)> extra);

 private:
  struct Verb {
    std::string name;
    bool read_only = false;
    std::function<StatusOr<std::string>(const JsonValue&)> handler;
  };

  const Verb* Find(const std::string& method) const;

  std::vector<Verb> verbs_;
  std::function<void(JsonWriter&)> extra_status_;
};

}  // namespace concord

#endif  // SRC_CONCORD_RPC_DISPATCH_H_
