// Concord — the framework facade (paper §4).
//
// Life of a policy, mirroring Figure 1:
//   1. A privileged userspace controller writes a policy (BPF assembly or
//      the builder DSL) and bundles it into a PolicySpec.           (step 1)
//   2. Concord::Attach verifies every program against the hook's context
//      descriptor + helper capability mask (eBPF restrictions AND the
//      lock-specific rules).                                     (steps 2-4)
//   3. The verified spec is compiled into a hook table of trampolines and
//      published to the live lock with an RCU pointer swap — the livepatch
//      analogue; acquirers never block on a patch.               (steps 5-6)
//
// Locks participate by registering (kernel subsystems would do this at
// boot); registration assigns the dense lock id used for selection and
// profiling. Selection supports exact instance names, "class:<name>" and
// "*" — the granularity spectrum §3.2 contrasts with lockstat.

#ifndef SRC_CONCORD_CONCORD_H_
#define SRC_CONCORD_CONCORD_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/trace.h"
#include "src/concord/policy.h"
#include "src/concord/profiler.h"
#include "src/sync/policy_hooks.h"
#include "src/sync/shfllock.h"

namespace concord {

class Concord {
 public:
  static constexpr std::uint64_t kMaxLocks = 4096;

  static Concord& Global();

  // --- registration ---------------------------------------------------------

  // Registers a ShflLock instance under `name` in `lock_class`. Returns the
  // lock id used by every other call. The lock must outlive registration.
  std::uint64_t RegisterShflLock(ShflLock& lock, std::string name,
                                 std::string lock_class);

  // Registers any lock exposing InstallHooks(const RwHooks*) and
  // SetLockId(u64) — BravoLock<...> in this library.
  template <typename RwLockT>
  std::uint64_t RegisterRwLock(RwLockT& lock, std::string name,
                               std::string lock_class) {
    return RegisterRwImpl(
        std::move(name), std::move(lock_class),
        [&lock](const RwHooks* hooks) { return lock.InstallHooks(hooks); },
        [&lock](std::uint64_t id) { lock.SetLockId(id); });
  }

  // Detaches any policy, then removes the lock from the registry.
  Status Unregister(std::uint64_t lock_id);

  // --- selection -------------------------------------------------------------

  // "*" => all registered locks; "class:<c>" => every lock in class c;
  // anything else => exact instance name.
  std::vector<std::uint64_t> Select(const std::string& selector) const;
  StatusOr<std::uint64_t> Find(const std::string& name) const;
  std::string NameOf(std::uint64_t lock_id) const;

  // Structured registry listing for control planes / tooling.
  struct LockInfo {
    std::uint64_t lock_id = 0;
    std::string name;
    std::string lock_class;
    bool is_rw = false;
    bool has_policy = false;     // BPF spec or native hooks attached
    std::string policy_name;     // spec name, or "<native>" for native hooks
    bool profiling = false;
    bool tracing = false;        // flight-recorder runtime gate (src/base/trace.h)
  };
  std::vector<LockInfo> ListLocks(const std::string& selector = "*") const;

  // --- policy patching --------------------------------------------------------

  // Verifies `spec` and hot-swaps it onto the lock. Replaces any previously
  // attached policy atomically (readers see old or new, never a mix).
  Status Attach(std::uint64_t lock_id, PolicySpec spec);

  // Attaches to every lock matched by `selector`; fails fast on first error.
  Status AttachBySelector(const std::string& selector, const PolicySpec& spec);

  // "Precompiled" comparison path: native function-pointer hooks, no BPF.
  // `name` identifies the policy in containment events and ListLocks.
  Status AttachNative(std::uint64_t lock_id, const ShflHooks& hooks,
                      std::string name = "<native>");
  Status AttachNativeRw(std::uint64_t lock_id, const RwHooks& hooks,
                        std::string name = "<native>");

  // Removes any attached policy (lock reverts to default behaviour;
  // profiling, if enabled, stays).
  Status Detach(std::uint64_t lock_id);

  // --- containment plumbing (src/concord/containment.h) ----------------------

  // Detaches the policy's hook table but *parks* the spec/native hooks on
  // the entry so ReattachFromQuarantine can restore them without the
  // controller. Profiling stays. Fails if no policy is attached.
  Status DetachForQuarantine(std::uint64_t lock_id);

  // Restores a policy parked by DetachForQuarantine (probation re-attach).
  Status ReattachFromQuarantine(std::uint64_t lock_id);

  // Name of the attached (or quarantine-parked) policy, "" if none.
  std::string AttachedPolicyName(std::uint64_t lock_id) const;

  // A policy whose HookBudgetState crossed its trip threshold (or observed a
  // dispatch fault). Harvested — and the trip flag cleared — by
  // ContainmentRegistry::Poll().
  struct BudgetTrip {
    std::uint64_t lock_id = 0;
    std::string policy_name;
    std::uint64_t overruns = 0;
    std::uint64_t dispatch_faults = 0;
    std::uint64_t max_observed_ns = 0;
  };
  std::vector<BudgetTrip> HarvestBudgetTrips();

  // Budget accounting for the attached policy, nullptr when absent (no
  // policy, or budgets compiled out / not configured).
  const HookBudgetState* BudgetState(std::uint64_t lock_id) const;

  // --- dynamic profiling ------------------------------------------------------

  Status EnableProfiling(std::uint64_t lock_id);
  Status EnableProfilingBySelector(const std::string& selector);
  Status DisableProfiling(std::uint64_t lock_id);
  const ShardedLockProfileStats* Stats(std::uint64_t lock_id) const;
  // Containment needs to bump per-lock quarantine counters; tests use it to
  // feed synthetic samples into the watchdog's histograms. Control-plane
  // writers should target ControlShard().
  ShardedLockProfileStats* MutableStats(std::uint64_t lock_id);

  // Formatted report for all profiled locks matching `selector`.
  std::string ProfileReport(const std::string& selector = "*") const;

  // Machine-readable profiling stats for every profiled lock matching
  // `selector`: {"locks":[{"lock_id","name","class","stats":{...},
  // "policy_maps":[...]}]}. policy_maps holds a dump of each map owned by
  // the lock's attached policy spec (per-CPU maps aggregated per key — see
  // AppendMapDumpJson in trace_export.h); omitted when no policy is attached.
  std::string StatsJson(const std::string& selector = "*") const;

  // Dumps the maps of attached policies on locks matching `selector`:
  // {"locks":[{"lock_id","name","policy","maps":[<map dump>...]}]}. When
  // `map_name` is non-empty only maps with that name are included; errors
  // when the selector matches nothing. Backs the `map.dump` RPC verb.
  StatusOr<std::string> MapDumpJson(const std::string& selector,
                                    const std::string& map_name = "") const;

  // --- flight recorder (src/base/trace.h) -------------------------------------

  // Runtime per-lock trace gates. Tracing needs no policy or profiling
  // attachment — the recorder taps are compiled into the lock paths and cost
  // one branch per event site while disabled.
  Status EnableTracing(std::uint64_t lock_id);
  Status EnableTracingBySelector(const std::string& selector);
  Status DisableTracing(std::uint64_t lock_id);

  // Merged, ts-sorted snapshot of every thread's ring.
  std::vector<TraceEvent> TraceEvents() const;

  // Chrome trace-event JSON (Perfetto-loadable) of the current snapshot,
  // labeled with registered lock names.
  std::string TraceChromeJson() const;

  // --- autotune (src/concord/autotune/controller.h) ---------------------------

  // Enrolls every lock matched by `selector` into the adaptive policy
  // controller — enabling profiling on each — and starts its background
  // decision thread. Honors the CONCORD_AUTOTUNE kill switch: when that
  // environment variable is "0", "off" or "false", this fails and nothing
  // starts.
  Status EnableAutotune(const std::string& selector = "*");
  Status EnableAutotune(const std::string& selector,
                        const struct AutotuneConfig& config);

  // Stops the controller thread. Enrollment and any controller-attached
  // policies stay as they are.
  Status DisableAutotune();

  // AutotuneController::StatusJson() passthrough.
  std::string AutotuneStatusJson() const;

  // Test-only: drops every registration. No lock may be under contention.
  void ResetForTest();

 private:
  friend struct CompiledPolicy;

  enum class LockKind { kNone, kShfl, kRw };

  struct Entry {
    LockKind kind = LockKind::kNone;
    std::string name;
    std::string lock_class;
    ShflLock* shfl = nullptr;
    std::function<const RwHooks*(const RwHooks*)> rw_install;

    // Current attachment state (control plane, guarded by mu_).
    std::shared_ptr<struct CompiledPolicy> current;
    std::shared_ptr<const PolicySpec> spec;          // BPF policy, if any
    std::optional<ShflHooks> native;                 // native policy, if any
    std::optional<RwHooks> native_rw;
    std::string native_name;                         // label for native hooks
    bool profiling = false;
    std::unique_ptr<ShardedLockProfileStats> stats;
    // Window boundary reported by StatsJson: ClockNowNs() at the most recent
    // EnableProfiling call (counters are cumulative since then).
    std::uint64_t profile_window_start_ns = 0;

    // Quarantine parking spots (DetachForQuarantine / ReattachFromQuarantine).
    std::shared_ptr<const PolicySpec> quarantined_spec;
    std::optional<ShflHooks> quarantined_native;
    std::optional<RwHooks> quarantined_native_rw;

    // Budget accounting shared with the live CompiledPolicy. Replaced (after
    // the RCU grace period) on every reinstall, so counters restart per
    // attachment epoch.
    std::unique_ptr<HookBudgetState> budget;
  };

  Concord() = default;

  std::uint64_t RegisterRwImpl(
      std::string name, std::string lock_class,
      std::function<const RwHooks*(const RwHooks*)> install,
      std::function<void(std::uint64_t)> set_id);

  // Rebuilds the hook table from entry state and hot-swaps it in.
  // Pre: mu_ held.
  Status ReinstallLocked(std::uint64_t lock_id);

  Entry* EntryFor(std::uint64_t lock_id);
  const Entry* EntryFor(std::uint64_t lock_id) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // index = lock_id - 1
};

}  // namespace concord

#endif  // SRC_CONCORD_CONCORD_H_
