#include "src/concord/trace_export.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/base/json.h"

namespace concord {
namespace {

// LIFO matcher state for one (tid, lock_id) pair.
struct MatchState {
  std::vector<std::uint64_t> wait_starts;  // kAcquire timestamps
  std::vector<std::uint64_t> hold_starts;  // kAcquired timestamps
};

std::uint64_t PairKey(std::uint32_t tid, std::uint64_t lock_id) {
  return (static_cast<std::uint64_t>(tid) << 32) | (lock_id & 0xFFFFFFFFull);
}

std::string LockLabel(std::uint64_t lock_id,
                      const std::map<std::uint64_t, std::string>& lock_names) {
  const auto it = lock_names.find(lock_id);
  if (it != lock_names.end()) {
    return it->second;
  }
  return "lock" + std::to_string(lock_id);
}

}  // namespace

std::vector<TraceLockSummary> SummarizeTrace(
    const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, TraceLockSummary> by_lock;
  std::map<std::uint64_t, MatchState> matchers;

  for (const TraceEvent& event : events) {
    TraceLockSummary& s = by_lock[event.lock_id];
    s.lock_id = event.lock_id;
    MatchState& m = matchers[PairKey(event.tid, event.lock_id)];
    switch (event.kind) {
      case TraceEventKind::kAcquire:
        m.wait_starts.push_back(event.ts_ns);
        break;
      case TraceEventKind::kContended:
        ++s.contentions;
        break;
      case TraceEventKind::kAcquired:
        ++s.acquisitions;
        if (m.wait_starts.empty()) {
          ++s.unmatched_events;
        } else {
          const std::uint64_t wait = event.ts_ns - m.wait_starts.back();
          m.wait_starts.pop_back();
          ++s.matched_waits;
          s.total_wait_ns += wait;
          s.max_wait_ns = std::max(s.max_wait_ns, wait);
        }
        m.hold_starts.push_back(event.ts_ns);
        break;
      case TraceEventKind::kRelease:
        ++s.releases;
        if (m.hold_starts.empty()) {
          ++s.unmatched_events;
        } else {
          const std::uint64_t hold = event.ts_ns - m.hold_starts.back();
          m.hold_starts.pop_back();
          ++s.matched_holds;
          s.total_hold_ns += hold;
          s.max_hold_ns = std::max(s.max_hold_ns, hold);
        }
        break;
      case TraceEventKind::kPark:
        ++s.parks;
        break;
      case TraceEventKind::kWake:
        ++s.wakes;
        break;
      case TraceEventKind::kShuffleRound:
        ++s.shuffle_rounds;
        break;
      case TraceEventKind::kPolicyDispatch:
        ++s.policy_dispatches;
        break;
      case TraceEventKind::kBudgetTrip:
        ++s.budget_trips;
        break;
      case TraceEventKind::kQuarantine:
        ++s.quarantines;
        break;
    }
  }

  // Acquires and acquireds still waiting for a partner are unmatched.
  for (const auto& [key, m] : matchers) {
    const std::uint64_t lock_id = key & 0xFFFFFFFFull;
    by_lock[lock_id].unmatched_events +=
        m.wait_starts.size() + m.hold_starts.size();
  }

  std::vector<TraceLockSummary> summaries;
  summaries.reserve(by_lock.size());
  for (auto& [id, summary] : by_lock) {
    summaries.push_back(std::move(summary));
  }
  std::sort(summaries.begin(), summaries.end(),
            [](const TraceLockSummary& a, const TraceLockSummary& b) {
              if (a.total_wait_ns != b.total_wait_ns) {
                return a.total_wait_ns > b.total_wait_ns;
              }
              return a.lock_id < b.lock_id;
            });
  return summaries;
}

namespace {

// One Chrome trace event. `ph` "X" events carry a duration; "i" instants
// carry a scope. ts/dur are microseconds per the trace-event format.
void AppendChromeEvent(JsonWriter& writer, const std::string& name,
                       const char* cat, const char* ph, std::uint64_t ts_ns,
                       std::uint64_t dur_ns, std::uint32_t tid,
                       std::uint64_t lock_id, std::uint64_t arg,
                       bool has_arg) {
  writer.BeginObject();
  writer.Field("name", name);
  writer.Field("cat", cat);
  writer.Field("ph", ph);
  writer.NumberField("ts", static_cast<double>(ts_ns) / 1000.0);
  if (ph[0] == 'X') {
    writer.NumberField("dur", static_cast<double>(dur_ns) / 1000.0);
  } else {
    writer.Field("s", "t");  // thread-scoped instant
  }
  writer.NumberField("pid", 1);
  writer.NumberField("tid", tid);
  writer.Key("args").BeginObject();
  writer.NumberField("lock_id", lock_id);
  if (has_arg) {
    writer.NumberField("arg", arg);
  }
  writer.EndObject();
  writer.EndObject();
}

}  // namespace

std::string ChromeTraceJson(
    const std::vector<TraceEvent>& events,
    const std::map<std::uint64_t, std::string>& lock_names) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Field("displayTimeUnit", "ns");
  writer.Key("traceEvents").BeginArray();

  std::map<std::uint64_t, MatchState> matchers;
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& event : events) {
    if (std::find(tids.begin(), tids.end(), event.tid) == tids.end()) {
      tids.push_back(event.tid);
    }
    const std::string label = LockLabel(event.lock_id, lock_names);
    MatchState& m = matchers[PairKey(event.tid, event.lock_id)];
    switch (event.kind) {
      case TraceEventKind::kAcquire:
        m.wait_starts.push_back(event.ts_ns);
        break;
      case TraceEventKind::kAcquired:
        if (!m.wait_starts.empty()) {
          const std::uint64_t start = m.wait_starts.back();
          m.wait_starts.pop_back();
          AppendChromeEvent(writer, label + " wait", "wait", "X", start,
                            event.ts_ns - start, event.tid, event.lock_id, 0,
                            /*has_arg=*/false);
        }
        m.hold_starts.push_back(event.ts_ns);
        break;
      case TraceEventKind::kRelease:
        if (!m.hold_starts.empty()) {
          const std::uint64_t start = m.hold_starts.back();
          m.hold_starts.pop_back();
          AppendChromeEvent(writer, label + " hold", "hold", "X", start,
                            event.ts_ns - start, event.tid, event.lock_id, 0,
                            /*has_arg=*/false);
        }
        break;
      case TraceEventKind::kContended:
      case TraceEventKind::kPark:
      case TraceEventKind::kWake:
      case TraceEventKind::kShuffleRound:
      case TraceEventKind::kPolicyDispatch:
      case TraceEventKind::kBudgetTrip:
      case TraceEventKind::kQuarantine:
        AppendChromeEvent(
            writer, label + " " + TraceEventKindName(event.kind), "lock", "i",
            event.ts_ns, 0, event.tid, event.lock_id, event.arg,
            /*has_arg=*/true);
        break;
    }
  }

  // Thread tracks get stable names so Perfetto's timeline is readable.
  for (std::uint32_t tid : tids) {
    writer.BeginObject();
    writer.Field("name", "thread_name");
    writer.Field("ph", "M");
    writer.NumberField("pid", 1);
    writer.NumberField("tid", tid);
    writer.Key("args").BeginObject();
    writer.Field("name", "recorder thread " + std::to_string(tid));
    writer.EndObject();
    writer.EndObject();
  }

  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

namespace {

std::string HexBytes(const void* data, std::uint32_t size) {
  static const char kDigits[] = "0123456789abcdef";
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::string out = "0x";
  for (std::uint32_t i = 0; i < size; ++i) {
    out += kDigits[bytes[i] >> 4];
    out += kDigits[bytes[i] & 0xf];
  }
  return out;
}

}  // namespace

void AppendMapDumpJson(JsonWriter& writer, BpfMap& map) {
  writer.BeginObject();
  writer.Field("name", map.name());
  writer.Field("type", MapTypeName(map.type()));
  writer.NumberField("key_size", map.key_size());
  writer.NumberField("value_size", map.value_size());
  writer.NumberField("max_entries", map.max_entries());
  writer.NumberField("num_cpus", map.num_cpus());
  writer.NumberField("live", map.Size());
  writer.Key("entries").BeginArray();

  const std::uint32_t key_size = map.key_size();
  const bool u64_values = map.value_size() >= sizeof(std::uint64_t);
  std::vector<std::uint8_t> cur_key;
  bool open = false;
  std::uint64_t sum = 0;
  auto close = [&] {
    if (!open) {
      return;
    }
    writer.EndArray();  // values
    if (u64_values) {
      writer.NumberField("sum", sum);
    }
    writer.EndObject();
    open = false;
  };

  map.ForEach([&](const void* key, const void* value) {
    if (!open || std::memcmp(cur_key.data(), key, key_size) != 0) {
      close();
      const auto* kb = static_cast<const std::uint8_t*>(key);
      cur_key.assign(kb, kb + key_size);
      writer.BeginObject();
      writer.Field("key", HexBytes(key, key_size));
      writer.Key("values").BeginArray();
      sum = 0;
      open = true;
    }
    if (u64_values) {
      // Relaxed atomic lane read: dumps race benignly with policy counters.
      const std::uint64_t lane = __atomic_load_n(
          reinterpret_cast<const std::uint64_t*>(value), __ATOMIC_RELAXED);
      writer.Number(lane);
      sum += lane;
    } else {
      writer.String(HexBytes(value, map.value_size()));
    }
  });
  close();

  writer.EndArray();
  writer.EndObject();
}

}  // namespace concord
