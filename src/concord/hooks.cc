#include "src/concord/hooks.h"

namespace concord {
namespace {

// Appends the ShflWaiterView fields at `base` with a name prefix.
void AppendWaiterViewFields(std::vector<ContextField>& fields,
                            const std::string& prefix, std::uint32_t base) {
  fields.push_back({prefix + "wait_ns", base + 0, 8, false});
  fields.push_back({prefix + "cs_ewma_ns", base + 8, 8, false});
  fields.push_back({prefix + "socket", base + 16, 4, false});
  fields.push_back({prefix + "vcpu", base + 20, 4, false});
  fields.push_back({prefix + "priority", base + 24, 4, false});
  fields.push_back({prefix + "task_class", base + 28, 4, false});
  fields.push_back({prefix + "locks_held", base + 32, 4, false});
  fields.push_back({prefix + "task_id", base + 36, 4, false});
}

ContextDescriptor MakeCmpNodeDescriptor() {
  std::vector<ContextField> fields;
  AppendWaiterViewFields(fields, "shuffler_", 0);
  AppendWaiterViewFields(fields, "curr_", sizeof(ShflWaiterView));
  return ContextDescriptor("cmp_node", sizeof(CmpNodeCtx), std::move(fields));
}

ContextDescriptor MakeSkipShuffleDescriptor() {
  std::vector<ContextField> fields;
  AppendWaiterViewFields(fields, "shuffler_", 0);
  return ContextDescriptor("skip_shuffle", sizeof(SkipShuffleCtx),
                           std::move(fields));
}

ContextDescriptor MakeScheduleWaiterDescriptor() {
  std::vector<ContextField> fields;
  AppendWaiterViewFields(fields, "waiter_", 0);
  fields.push_back({"spin_iterations", 40, 4, false});
  return ContextDescriptor("schedule_waiter", sizeof(ScheduleWaiterCtx),
                           std::move(fields));
}

ContextDescriptor MakeProfileDescriptor() {
  std::vector<ContextField> fields;
  fields.push_back({"lock_id", 0, 8, false});
  fields.push_back({"now_ns", 8, 8, false});
  fields.push_back({"hook", 16, 4, false});
  return ContextDescriptor("lock_profile", sizeof(ProfileCtx), std::move(fields));
}

ContextDescriptor MakeRwModeDescriptor() {
  std::vector<ContextField> fields;
  fields.push_back({"lock_id", 0, 8, false});
  return ContextDescriptor("rw_mode", sizeof(RwModeCtx), std::move(fields));
}

}  // namespace

const char* HookKindName(HookKind kind) {
  switch (kind) {
    case HookKind::kCmpNode:
      return "cmp_node";
    case HookKind::kSkipShuffle:
      return "skip_shuffle";
    case HookKind::kScheduleWaiter:
      return "schedule_waiter";
    case HookKind::kLockAcquire:
      return "lock_acquire";
    case HookKind::kLockContended:
      return "lock_contended";
    case HookKind::kLockAcquired:
      return "lock_acquired";
    case HookKind::kLockRelease:
      return "lock_release";
    case HookKind::kRwMode:
      return "rw_mode";
  }
  return "unknown";
}

bool ParseHookKindName(const std::string& name, HookKind* out) {
  for (int i = 0; i < kNumHookKinds; ++i) {
    const auto kind = static_cast<HookKind>(i);
    if (name == HookKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const ContextDescriptor& DescriptorFor(HookKind kind) {
  static const ContextDescriptor cmp_node = MakeCmpNodeDescriptor();
  static const ContextDescriptor skip_shuffle = MakeSkipShuffleDescriptor();
  static const ContextDescriptor schedule_waiter = MakeScheduleWaiterDescriptor();
  static const ContextDescriptor profile = MakeProfileDescriptor();
  static const ContextDescriptor rw_mode = MakeRwModeDescriptor();
  switch (kind) {
    case HookKind::kCmpNode:
      return cmp_node;
    case HookKind::kSkipShuffle:
      return skip_shuffle;
    case HookKind::kScheduleWaiter:
      return schedule_waiter;
    case HookKind::kLockAcquire:
    case HookKind::kLockContended:
    case HookKind::kLockAcquired:
    case HookKind::kLockRelease:
      return profile;
    case HookKind::kRwMode:
      return rw_mode;
  }
  return profile;
}

std::uint32_t CapabilitiesFor(HookKind kind) {
  switch (kind) {
    case HookKind::kCmpNode:
    case HookKind::kSkipShuffle:
      // Pure decisions: observe + map state, no tracing, no lock mutation.
      return kCapRead | kCapMapRead | kCapMapWrite;
    case HookKind::kScheduleWaiter:
    case HookKind::kRwMode:
      return kCapRead | kCapMapRead | kCapMapWrite;
    case HookKind::kLockAcquire:
    case HookKind::kLockContended:
    case HookKind::kLockAcquired:
    case HookKind::kLockRelease:
      // Profiling hooks may also trace.
      return kCapRead | kCapMapRead | kCapMapWrite | kCapTrace;
  }
  return kCapRead;
}

}  // namespace concord
