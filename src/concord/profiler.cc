#include "src/concord/profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/base/json.h"
#include "src/base/time.h"
#include "src/topology/thread_context.h"

namespace concord {
namespace {

// Per-thread in-flight acquisition records. Locks nest, so this behaves as a
// small stack: slots are matched by lock id at acquired/release time,
// newest-first (LIFO). Matching the *oldest* slot instead — as an earlier
// version did — pairs a recursive re-acquisition's timestamps with the outer
// acquisition's slot, inflating its hold time and orphaning the inner slot.
// Out-of-order release of different locks still works because matching is by
// lock id, not strictly stack order.
struct InFlight {
  std::uint64_t lock_id = 0;
  std::uint64_t acquire_ns = 0;
  std::uint64_t acquired_ns = 0;
  std::uint64_t seq = 0;  // allocation order; higher = more recent
  bool contended = false;
  bool live = false;
};

constexpr int kMaxInFlight = 16;
thread_local InFlight tls_inflight[kMaxInFlight];
thread_local std::uint64_t tls_inflight_seq = 0;

// Newest live slot for `lock_id` (highest seq), or nullptr.
InFlight* FindSlot(std::uint64_t lock_id) {
  InFlight* best = nullptr;
  for (auto& slot : tls_inflight) {
    if (slot.live && slot.lock_id == lock_id &&
        (best == nullptr || slot.seq > best->seq)) {
      best = &slot;
    }
  }
  return best;
}

InFlight* AllocSlot(std::uint64_t lock_id) {
  for (auto& slot : tls_inflight) {
    if (!slot.live) {
      slot.live = true;
      slot.lock_id = lock_id;
      slot.contended = false;
      slot.acquire_ns = 0;
      slot.acquired_ns = 0;
      slot.seq = ++tls_inflight_seq;
      return &slot;
    }
  }
  return nullptr;  // too deeply nested: caller records the drop
}

// The socket slot a virtual socket folds into (sockets beyond the tracked
// range share the last slot).
std::size_t SocketSlotFor(std::uint32_t socket) {
  return socket < kProfilerSocketSlots ? socket : kProfilerSocketSlots - 1;
}

void AppendCountersJson(JsonWriter& writer, std::uint64_t acquisitions,
                        std::uint64_t contentions, std::uint64_t releases,
                        std::uint64_t dropped, std::uint64_t overruns,
                        std::uint64_t quarantines,
                        const std::uint64_t* socket_acquisitions,
                        std::uint64_t cross_socket_handoffs,
                        double contention_rate, const Log2Histogram& wait_ns,
                        const Log2Histogram& hold_ns) {
  writer.BeginObject();
  writer.NumberField("acquisitions", acquisitions);
  writer.NumberField("contentions", contentions);
  writer.NumberField("releases", releases);
  writer.NumberField("dropped_samples", dropped);
  writer.NumberField("budget_overruns", overruns);
  writer.NumberField("quarantines", quarantines);
  writer.Key("socket_acquisitions").BeginArray();
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    writer.Number(socket_acquisitions[i]);
  }
  writer.EndArray();
  writer.NumberField("cross_socket_handoffs", cross_socket_handoffs);
  writer.NumberField("contention_rate", contention_rate);
  writer.Key("wait_ns");
  wait_ns.AppendJson(writer);
  writer.Key("hold_ns");
  hold_ns.AppendJson(writer);
  writer.EndObject();
}

std::string SummaryLine(std::uint64_t acquisitions, std::uint64_t contentions,
                        std::uint64_t releases, std::uint64_t dropped,
                        std::uint64_t overruns, std::uint64_t quarantines,
                        double contention_rate, const Log2Histogram& wait_ns,
                        const Log2Histogram& hold_ns) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "acq=%" PRIu64 " contended=%" PRIu64 " (%.1f%%) rel=%" PRIu64
                " wait[p50=%" PRIu64 "ns p99=%" PRIu64 "ns max=%" PRIu64
                "ns] hold[p50=%" PRIu64 "ns p99=%" PRIu64 "ns]",
                acquisitions, contentions, 100.0 * contention_rate, releases,
                wait_ns.Percentile(50), wait_ns.Percentile(99), wait_ns.Max(),
                hold_ns.Percentile(50), hold_ns.Percentile(99));
  std::string out = line;
  if (dropped != 0) {
    std::snprintf(line, sizeof(line), " dropped_samples=%" PRIu64, dropped);
    out += line;
  }
  if (overruns != 0 || quarantines != 0) {
    std::snprintf(line, sizeof(line),
                  " budget_overruns=%" PRIu64 " quarantines=%" PRIu64, overruns,
                  quarantines);
    out += line;
  }
  return out;
}

}  // namespace

void ProfilerTaps::OnAcquire(ShardedLockProfileStats& stats,
                             std::uint64_t lock_id) {
  LockProfileStats& shard = stats.Shard();
  shard.acquisitions.fetch_add(1, std::memory_order_relaxed);
  shard.socket_acquisitions[SocketSlotFor(Self().socket)].fetch_add(
      1, std::memory_order_relaxed);
  if (InFlight* slot = AllocSlot(lock_id)) {
    slot->acquire_ns = ClockNowNs();
  } else {
    shard.dropped_samples.fetch_add(1, std::memory_order_relaxed);
  }
}

void ProfilerTaps::OnContended(ShardedLockProfileStats& stats,
                               std::uint64_t lock_id) {
  stats.Shard().contentions.fetch_add(1, std::memory_order_relaxed);
  if (InFlight* slot = FindSlot(lock_id)) {
    slot->contended = true;
  }
}

void ProfilerTaps::OnAcquired(ShardedLockProfileStats& stats,
                              std::uint64_t lock_id) {
  if (InFlight* slot = FindSlot(lock_id)) {
    const std::uint64_t now = ClockNowNs();
    slot->acquired_ns = now;
    if (slot->contended) {
      stats.Shard().wait_ns.Record(now - slot->acquire_ns);
      // Contended grants carry the NUMA handoff signal: did the lock move to
      // a different socket than its previous (contended) owner's? Uncontended
      // fast-path acquisitions skip this — they never ping-pong the line.
      const std::uint32_t socket = Self().socket;
      const std::uint32_t prev = stats.ExchangeOwnerSocket(socket);
      if (prev != kNoOwnerSocket && prev != socket) {
        stats.Shard().cross_socket_handoffs.fetch_add(1,
                                                      std::memory_order_relaxed);
      }
    }
  }
}

void ProfilerTaps::OnRelease(ShardedLockProfileStats& stats,
                             std::uint64_t lock_id) {
  LockProfileStats& shard = stats.Shard();
  shard.releases.fetch_add(1, std::memory_order_relaxed);
  if (InFlight* slot = FindSlot(lock_id)) {
    if (slot->acquired_ns != 0) {
      shard.hold_ns.Record(ClockNowNs() - slot->acquired_ns);
    }
    slot->live = false;
  }
  // No slot: either the sample was dropped at acquire (already counted) or
  // profiling attached mid-critical-section; nothing to time either way.
}

void LockProfileStats::MergeFrom(const LockProfileStats& other) {
  acquisitions.fetch_add(other.acquisitions.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  contentions.fetch_add(other.contentions.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  releases.fetch_add(other.releases.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    socket_acquisitions[i].fetch_add(
        other.socket_acquisitions[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  cross_socket_handoffs.fetch_add(
      other.cross_socket_handoffs.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  dropped_samples.fetch_add(
      other.dropped_samples.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  budget_overruns.fetch_add(
      other.budget_overruns.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  quarantines.fetch_add(other.quarantines.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  wait_ns.MergeFrom(other.wait_ns);
  hold_ns.MergeFrom(other.hold_ns);
}

std::string LockProfileStats::Summary() const {
  return SummaryLine(acquisitions.load(std::memory_order_relaxed),
                     contentions.load(std::memory_order_relaxed),
                     releases.load(std::memory_order_relaxed),
                     dropped_samples.load(std::memory_order_relaxed),
                     budget_overruns.load(std::memory_order_relaxed),
                     quarantines.load(std::memory_order_relaxed),
                     ContentionRate(), wait_ns, hold_ns);
}

void LockProfileStats::AppendJson(JsonWriter& writer) const {
  std::uint64_t sockets[kProfilerSocketSlots];
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    sockets[i] = socket_acquisitions[i].load(std::memory_order_relaxed);
  }
  AppendCountersJson(writer, acquisitions.load(std::memory_order_relaxed),
                     contentions.load(std::memory_order_relaxed),
                     releases.load(std::memory_order_relaxed),
                     dropped_samples.load(std::memory_order_relaxed),
                     budget_overruns.load(std::memory_order_relaxed),
                     quarantines.load(std::memory_order_relaxed), sockets,
                     cross_socket_handoffs.load(std::memory_order_relaxed),
                     ContentionRate(), wait_ns, hold_ns);
}

std::size_t ShardedLockProfileStats::ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

Log2Histogram ShardedLockProfileStats::WaitNs() const {
  Log2Histogram merged;
  for (const AlignedStats& shard : shards_) {
    merged.MergeFrom(shard.stats.wait_ns);
  }
  return merged;
}

Log2Histogram ShardedLockProfileStats::HoldNs() const {
  Log2Histogram merged;
  for (const AlignedStats& shard : shards_) {
    merged.MergeFrom(shard.stats.hold_ns);
  }
  return merged;
}

void ShardedLockProfileStats::MergeInto(LockProfileStats& out) const {
  for (const AlignedStats& shard : shards_) {
    out.MergeFrom(shard.stats);
  }
}

std::string ShardedLockProfileStats::Summary() const {
  return SummaryLine(Acquisitions(), Contentions(), Releases(),
                     DroppedSamples(), BudgetOverruns(), Quarantines(),
                     ContentionRate(), WaitNs(), HoldNs());
}

void ShardedLockProfileStats::AppendJson(JsonWriter& writer) const {
  std::uint64_t sockets[kProfilerSocketSlots];
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    sockets[i] = SocketAcquisitions(i);
  }
  AppendCountersJson(writer, Acquisitions(), Contentions(), Releases(),
                     DroppedSamples(), BudgetOverruns(), Quarantines(), sockets,
                     CrossSocketHandoffs(), ContentionRate(), WaitNs(),
                     HoldNs());
}

std::uint64_t ShardedLockProfileStats::SocketAcquisitions(
    std::size_t socket_slot) const {
  if (socket_slot >= kProfilerSocketSlots) {
    return 0;
  }
  std::uint64_t total = 0;
  for (const AlignedStats& shard : shards_) {
    total += shard.stats.socket_acquisitions[socket_slot].load(
        std::memory_order_relaxed);
  }
  return total;
}

LockProfileSnapshot ShardedLockProfileStats::Snapshot() const {
  LockProfileSnapshot snap;
  snap.taken_at_ns = ClockNowNs();
  // One merge pass over the shards instead of one cross-shard sweep per
  // field. The per-field accessors each walk all shards, so a snapshot taken
  // concurrently with writers used to pair counters from visibly different
  // instants — e.g. a contention recorded after the acquisitions sweep but
  // before the contentions sweep could make a window delta report
  // contentions > acquisitions. Merging shard-by-shard reads each shard's
  // fields back-to-back, shrinking the skew to the handful of ops in flight
  // during one MergeFrom. The residual skew cannot be eliminated without
  // stopping the writers (the taps are deliberately lock-free), so the
  // cross-field invariants consumers rely on (contentions <= acquisitions,
  // releases <= acquisitions, ContentionRate() <= 1) are restored by the
  // clamps below; each counter remains individually monotonic.
  LockProfileStats merged;
  MergeInto(merged);
  snap.acquisitions = merged.acquisitions.load(std::memory_order_relaxed);
  snap.contentions =
      std::min(merged.contentions.load(std::memory_order_relaxed),
               snap.acquisitions);
  snap.releases = std::min(merged.releases.load(std::memory_order_relaxed),
                           snap.acquisitions);
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    snap.socket_acquisitions[i] =
        merged.socket_acquisitions[i].load(std::memory_order_relaxed);
  }
  snap.cross_socket_handoffs =
      merged.cross_socket_handoffs.load(std::memory_order_relaxed);
  snap.dropped_samples =
      merged.dropped_samples.load(std::memory_order_relaxed);
  snap.budget_overruns =
      merged.budget_overruns.load(std::memory_order_relaxed);
  snap.quarantines = merged.quarantines.load(std::memory_order_relaxed);
  snap.wait_ns = merged.wait_ns;
  snap.hold_ns = merged.hold_ns;
  return snap;
}

namespace {
std::uint64_t ClampedDelta(std::uint64_t now, std::uint64_t then) {
  return now > then ? now - then : 0;
}
}  // namespace

std::uint32_t LockProfileSnapshot::ActiveSockets(double min_share) const {
  std::uint64_t total = 0;
  for (const std::uint64_t slot : socket_acquisitions) {
    total += slot;
  }
  if (total == 0) {
    return 0;
  }
  std::uint32_t active = 0;
  for (const std::uint64_t slot : socket_acquisitions) {
    if (static_cast<double>(slot) >=
        min_share * static_cast<double>(total)) {
      ++active;
    }
  }
  return active;
}

LockProfileSnapshot LockProfileSnapshot::DeltaSince(
    const LockProfileSnapshot& earlier) const {
  LockProfileSnapshot delta;
  delta.taken_at_ns = taken_at_ns;
  delta.window_start_ns = earlier.taken_at_ns;
  delta.acquisitions = ClampedDelta(acquisitions, earlier.acquisitions);
  delta.contentions = ClampedDelta(contentions, earlier.contentions);
  delta.releases = ClampedDelta(releases, earlier.releases);
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    delta.socket_acquisitions[i] =
        ClampedDelta(socket_acquisitions[i], earlier.socket_acquisitions[i]);
  }
  delta.cross_socket_handoffs =
      ClampedDelta(cross_socket_handoffs, earlier.cross_socket_handoffs);
  delta.dropped_samples = ClampedDelta(dropped_samples, earlier.dropped_samples);
  delta.budget_overruns = ClampedDelta(budget_overruns, earlier.budget_overruns);
  delta.quarantines = ClampedDelta(quarantines, earlier.quarantines);
  delta.wait_ns = wait_ns.DeltaSince(earlier.wait_ns);
  delta.hold_ns = hold_ns.DeltaSince(earlier.hold_ns);
  return delta;
}

void ShardedLockProfileStats::Reset() {
  for (AlignedStats& shard : shards_) {
    shard.stats.Reset();
  }
}

}  // namespace concord
