#include "src/concord/profiler.h"

#include <cinttypes>
#include <cstdio>

#include "src/base/time.h"

namespace concord {
namespace {

// Per-thread in-flight acquisition records. Locks nest, so this is a small
// stack; entries are matched by lock id at acquired/release time, tolerating
// out-of-order release for the (rare) non-LIFO unlock patterns.
struct InFlight {
  std::uint64_t lock_id = 0;
  std::uint64_t acquire_ns = 0;
  std::uint64_t acquired_ns = 0;
  bool contended = false;
  bool live = false;
};

constexpr int kMaxInFlight = 16;
thread_local InFlight tls_inflight[kMaxInFlight];

InFlight* FindSlot(std::uint64_t lock_id) {
  for (auto& slot : tls_inflight) {
    if (slot.live && slot.lock_id == lock_id) {
      return &slot;
    }
  }
  return nullptr;
}

InFlight* AllocSlot(std::uint64_t lock_id) {
  for (auto& slot : tls_inflight) {
    if (!slot.live) {
      slot.live = true;
      slot.lock_id = lock_id;
      slot.contended = false;
      slot.acquire_ns = 0;
      slot.acquired_ns = 0;
      return &slot;
    }
  }
  return nullptr;  // too deeply nested: drop the sample
}

}  // namespace

void ProfilerTaps::OnAcquire(LockProfileStats& stats, std::uint64_t lock_id) {
  stats.acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (InFlight* slot = AllocSlot(lock_id)) {
    slot->acquire_ns = MonotonicNowNs();
  }
}

void ProfilerTaps::OnContended(LockProfileStats& stats, std::uint64_t lock_id) {
  stats.contentions.fetch_add(1, std::memory_order_relaxed);
  if (InFlight* slot = FindSlot(lock_id)) {
    slot->contended = true;
  }
}

void ProfilerTaps::OnAcquired(LockProfileStats& stats, std::uint64_t lock_id) {
  const std::uint64_t now = MonotonicNowNs();
  if (InFlight* slot = FindSlot(lock_id)) {
    slot->acquired_ns = now;
    if (slot->contended) {
      stats.wait_ns.Record(now - slot->acquire_ns);
    }
  }
}

void ProfilerTaps::OnRelease(LockProfileStats& stats, std::uint64_t lock_id) {
  const std::uint64_t now = MonotonicNowNs();
  stats.releases.fetch_add(1, std::memory_order_relaxed);
  if (InFlight* slot = FindSlot(lock_id)) {
    if (slot->acquired_ns != 0) {
      stats.hold_ns.Record(now - slot->acquired_ns);
    }
    slot->live = false;
  }
}

std::string LockProfileStats::Summary() const {
  char line[256];
  std::snprintf(
      line, sizeof(line),
      "acq=%" PRIu64 " contended=%" PRIu64 " (%.1f%%) rel=%" PRIu64
      " wait[p50=%" PRIu64 "ns p99=%" PRIu64 "ns max=%" PRIu64
      "ns] hold[p50=%" PRIu64 "ns p99=%" PRIu64 "ns]",
      acquisitions.load(std::memory_order_relaxed),
      contentions.load(std::memory_order_relaxed), 100.0 * ContentionRate(),
      releases.load(std::memory_order_relaxed), wait_ns.Percentile(50),
      wait_ns.Percentile(99), wait_ns.Max(), hold_ns.Percentile(50),
      hold_ns.Percentile(99));
  std::string out = line;
  const std::uint64_t overruns = budget_overruns.load(std::memory_order_relaxed);
  const std::uint64_t quars = quarantines.load(std::memory_order_relaxed);
  if (overruns != 0 || quars != 0) {
    std::snprintf(line, sizeof(line),
                  " budget_overruns=%" PRIu64 " quarantines=%" PRIu64, overruns,
                  quars);
    out += line;
  }
  return out;
}

}  // namespace concord
