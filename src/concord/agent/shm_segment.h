// Shared-memory profiler segments — the transport between a worker process
// and the host-level autotune agent (ROADMAP "multi-process agent").
//
// Each worker publishes point-in-time copies of its per-lock profiler
// counters into one file-backed mmap segment; the agent maps the same file
// read-only and diffs consecutive reads with LockProfileSnapshot::DeltaSince,
// exactly like the in-process controller diffs live counters. The segment is
// a one-writer/many-reader seqlock:
//
//   [ ShmSegmentHeader | ShmLockRecord * capacity ]
//
// - The header carries schema magic + version and the segment geometry so a
//   reader from a different build can reject an incompatible layout instead
//   of misinterpreting it.
// - Publishes are stamped with a seqlock sequence (odd while the writer is
//   mid-publish) AND a checksum over the header and the live record region.
//   A reader accepts a sample only if the sequence is even, unchanged across
//   the copy, and the checksum matches — so torn reads, truncated files and
//   corrupted bytes all fail cleanly instead of producing plausible garbage.
// - All shared words are copied with relaxed per-u64 atomic accesses; the
//   seqlock fences order them. This keeps cross-thread readers (tests, the
//   in-process chaos suite) ThreadSanitizer-clean.
//
// Failure philosophy: Read() never crashes and never returns a half-valid
// snapshot. Every anomaly maps to a Status the agent can act on —
// kInvalidArgument for permanent damage (bad magic/version/geometry/checksum,
// truncation), kFailedPrecondition for transient contention (writer mid-publish
// after bounded retries).

#ifndef SRC_CONCORD_AGENT_SHM_SEGMENT_H_
#define SRC_CONCORD_AGENT_SHM_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/concord/profiler.h"

namespace concord {

// "CCRDSHM1" little-endian.
inline constexpr std::uint64_t kShmSegmentMagic = 0x314D485344524343ull;
inline constexpr std::uint32_t kShmSegmentVersion = 1;
inline constexpr std::uint32_t kShmSegmentDefaultCapacity = 64;
inline constexpr std::size_t kShmMaxLockName = 56;

// Fixed-size POD record for one lock's cumulative counters. Field-for-field
// mirror of LockProfileSnapshot with the histograms flattened to raw buckets.
// Every field is a u64 multiple so the whole record is copied word-by-word
// with relaxed atomics.
struct ShmLockRecord {
  std::uint64_t lock_id;
  char name[kShmMaxLockName];  // NUL-padded; truncated if longer

  std::uint64_t acquisitions;
  std::uint64_t contentions;
  std::uint64_t releases;
  std::uint64_t socket_acquisitions[kProfilerSocketSlots];
  std::uint64_t cross_socket_handoffs;
  std::uint64_t dropped_samples;
  std::uint64_t budget_overruns;
  std::uint64_t quarantines;

  std::uint64_t wait_buckets[Log2Histogram::kBuckets];
  std::uint64_t wait_sum;
  std::uint64_t wait_max;
  std::uint64_t hold_buckets[Log2Histogram::kBuckets];
  std::uint64_t hold_sum;
  std::uint64_t hold_max;
};
static_assert(sizeof(ShmLockRecord) % sizeof(std::uint64_t) == 0);

// Segment header. The geometry fields (magic..capacity, pid) are written
// once at Create(); the publish fields (sequence..lock_count, checksum) are
// rewritten inside the seqlock critical section on every publish. `checksum`
// covers the whole header (with the checksum field itself zeroed) plus the
// first `lock_count` records, computed against the post-publish even
// sequence — any byte flip anywhere in the live region breaks it.
struct ShmSegmentHeader {
  std::uint64_t magic;
  std::uint64_t version;
  std::uint64_t header_bytes;
  std::uint64_t record_bytes;
  std::uint64_t capacity;
  std::uint64_t pid;
  std::uint64_t sequence;      // seqlock: odd while a publish is in flight
  std::uint64_t published_ns;  // ClockNowNs() of the newest publish
  std::uint64_t publish_count; // total publishes; the agent's progress signal
  std::uint64_t lock_count;    // live records in [0, capacity]
  std::uint64_t checksum;
};
static_assert(sizeof(ShmSegmentHeader) % sizeof(std::uint64_t) == 0);

// One lock's sample as the reader hands it to the agent.
struct ShmLockSample {
  std::uint64_t lock_id = 0;
  std::string name;
  // Cumulative counters; taken_at_ns is the segment's published_ns so deltas
  // across reads window correctly even though the agent never saw the
  // worker's clock directly.
  LockProfileSnapshot snapshot;
};

// One successful torn-read-safe read of a whole segment.
struct ShmSegmentSample {
  std::uint64_t pid = 0;
  std::uint64_t published_ns = 0;
  std::uint64_t publish_count = 0;
  std::vector<ShmLockSample> locks;
};

// The worker side: creates (or re-creates) the segment file and publishes
// snapshots under the seqlock. Single-writer; callers serialize Publish().
class ShmSegmentWriter {
 public:
  static StatusOr<std::unique_ptr<ShmSegmentWriter>> Create(
      const std::string& path,
      std::uint32_t capacity = kShmSegmentDefaultCapacity);
  ~ShmSegmentWriter();

  ShmSegmentWriter(const ShmSegmentWriter&) = delete;
  ShmSegmentWriter& operator=(const ShmSegmentWriter&) = delete;

  // Publishes the given per-lock cumulative snapshots, stamped with
  // `published_ns` (pass ClockNowNs()). Fails if locks.size() > capacity.
  Status Publish(const std::vector<ShmLockSample>& locks,
                 std::uint64_t published_ns);

  const std::string& path() const { return path_; }
  std::uint32_t capacity() const { return capacity_; }

 private:
  ShmSegmentWriter(std::string path, int fd, void* base, std::size_t bytes,
                   std::uint32_t capacity);

  std::string path_;
  int fd_;
  void* base_;
  std::size_t bytes_;
  std::uint32_t capacity_;
};

// The agent side: maps an existing segment read-only and produces validated
// samples. Map() checks geometry once; every Read() re-checks the file size
// (the worker may have died and the file been truncated) and then runs the
// bounded seqlock + checksum protocol.
class ShmSegmentReader {
 public:
  static StatusOr<std::unique_ptr<ShmSegmentReader>> Map(
      const std::string& path);
  ~ShmSegmentReader();

  ShmSegmentReader(const ShmSegmentReader&) = delete;
  ShmSegmentReader& operator=(const ShmSegmentReader&) = delete;

  // Torn-read-safe sample. kInvalidArgument = permanent (corrupt/truncated;
  // evict the worker), kFailedPrecondition = transient (writer mid-publish; retry
  // next tick).
  StatusOr<ShmSegmentSample> Read(int max_retries = 8) const;

  const std::string& path() const { return path_; }

 private:
  ShmSegmentReader(std::string path, int fd, const void* base,
                   std::size_t bytes);

  std::string path_;
  int fd_;
  const void* base_;
  std::size_t bytes_;  // mapped size; also the minimum valid file size
};

// Layout helpers shared by writer/reader/tests.
std::size_t ShmSegmentBytes(std::uint32_t capacity);

// Serialization between the profiler's snapshot type and the POD record
// (exposed for tests).
void ShmEncodeRecord(const ShmLockSample& sample, ShmLockRecord& out);
void ShmDecodeRecord(const ShmLockRecord& record, std::uint64_t published_ns,
                     ShmLockSample& out);

}  // namespace concord

#endif  // SRC_CONCORD_AGENT_SHM_SEGMENT_H_
