// Fleet agent — the host-level half of the multi-process autotune story
// (ROADMAP "multi-process agent", docs/OPERATIONS.md §multi-process).
//
// One agent per host manages N worker processes. Each worker exports its
// profiler into a shared-memory segment (src/concord/agent/shm_segment.h)
// and serves its own control-plane socket; the agent
//
//   sample   reads every registered worker's segment, diffs it against the
//            previous read per lock *name* (the fleet key — lock ids are
//            per-process), and merges the per-worker deltas into one
//            fleet-wide window per lock name
//   classify runs the same RegimeSignals/RegimeHysteresis machinery as the
//            in-process controller on the merged window
//   act      runs one canary-promote-rollback loop per lock name, scoring
//            with the shared CanaryScore/CanaryPromotes verdict from
//            autotune/controller.h, and pushes the winning policy to every
//            worker through its certifier-gated policy.attach verb
//
// Aggregating across workers is the point: per-process windows are noisy,
// the merged window is what makes a promotion trustworthy — and a promotion
// applies to the whole fleet at once, including workers that join later.
//
// Degradation contract (the tentpole's hard requirement): a dead worker
// (pid gone, socket refusing), a stale segment (publishes stopped), or a
// corrupt/version-mismatched/truncated segment is detected and the worker
// EVICTED — an event is emitted, the remaining fleet keeps converging, and
// the agent never crashes or blocks on the failed worker. Candidates a
// worker already received stay attached on eviction (a policy the certifier
// admitted is safe to leave running; a restarted worker re-registers and
// resyncs).
//
// Failure-injection: `agent.shm_map` fails segment (re)maps; `agent.merge`
// skips the decision phase for a tick AFTER sampling, mirroring
// `autotune.decide` — a wedged agent loses decisions, never consistency.

#ifndef SRC_CONCORD_AGENT_FLEET_H_
#define SRC_CONCORD_AGENT_FLEET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/concord/autotune/controller.h"
#include "src/concord/autotune/regime.h"
#include "src/concord/agent/shm_segment.h"

namespace concord {

// A policy the agent may push to the fleet. Unlike in-process
// PolicyCandidates (factories for PolicySpecs), fleet candidates are .casm
// *sources*: they cross the process boundary through policy.attach, where
// every worker re-runs the full verifier + lint + certifier gate before the
// policy touches a lock.
struct FleetCandidate {
  std::string name;
  ContentionRegime regime = ContentionRegime::kModerate;
  bool for_rw = false;
  std::string source;  // .casm text, pushed inline
};

struct FleetAgentConfig {
  // Background tick period (also the merged sampling window).
  std::uint64_t window_ns = 100'000'000;  // 100ms

  // Same roles as their AutotuneConfig namesakes, applied to the merged
  // fleet-wide window.
  std::uint32_t hysteresis_windows = 2;
  std::uint32_t canary_windows = 3;
  std::uint64_t min_window_acquisitions = 64;
  double promote_margin = 0.05;
  std::uint32_t cooldown_windows = 5;
  std::uint32_t failed_candidate_backoff_windows = 20;
  ClassifierConfig classifier;

  // Eviction: a worker is evicted after this many consecutive ticks without
  // readable publish progress (transient read failures and unchanged
  // publish_count both count; permanent segment corruption and a dead pid
  // evict immediately). Progress-based rather than clock-based so an agent
  // under FakeClock still detects real workers stalling.
  std::uint32_t evict_after_stale_ticks = 3;

  // Per-worker RPC budget for policy pushes. Deliberately short: a worker
  // that cannot answer within this is treated as dead and evicted rather
  // than allowed to block the fleet loop.
  std::uint64_t push_timeout_ms = 1'000;

  // Seed candidates from every .casm in this directory ("" = skip); regime
  // inferred from the filename as in PolicyCandidateRegistry.
  std::string policy_dir;
};

enum class FleetEventKind : std::uint8_t {
  kWorkerJoin,
  kWorkerEvict,
  kRegimeChange,
  kCanaryStart,
  kPromote,
  kRollback,
  kCanaryAbort,
  kError,
};

const char* FleetEventKindName(FleetEventKind kind);

struct FleetEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t worker_pid = 0;   // 0 for fleet-wide (lock-keyed) events
  std::string lock_name;          // "" for worker-keyed events
  FleetEventKind kind = FleetEventKind::kError;
  ContentionRegime regime = ContentionRegime::kUncontended;
  std::string candidate;
  std::string detail;
};

// The agent. One per process (Global()); the RPC verbs agent.register/
// agent.leave/agent.status are thin wrappers over it.
class FleetAgent {
 public:
  static FleetAgent& Global();

  // Applies config; fails while the background loop is running.
  Status Configure(const FleetAgentConfig& config);
  FleetAgentConfig config() const;

  // Registers a candidate after running the local admission pipeline
  // (assemble + verify + lint + certify) on its source — a candidate the
  // agent itself cannot certify would just bounce off every worker.
  // Replaces any candidate with the same name.
  Status AddCandidate(const FleetCandidate& candidate);
  // Loads every admissible .casm under `dir`; returns how many registered.
  int SeedCandidatesFromDir(const std::string& dir);
  std::vector<std::string> CandidateNames() const;

  // --- membership (RPC-driven) ----------------------------------------------

  // Registers (or re-registers) a worker. Replaces any existing entry for
  // `pid`; the segment is mapped lazily on the next tick, and the current
  // incumbent policies are pushed to the worker then (never synchronously
  // from the RPC thread — the worker is mid-Call and pushing back into its
  // socket from here invites a distributed deadlock).
  Status RegisterWorker(std::uint64_t pid, const std::string& shm_path,
                        const std::string& control_socket);
  Status LeaveWorker(std::uint64_t pid);
  std::size_t WorkerCount() const;

  // --- the loop -------------------------------------------------------------

  // One sample+classify+act pass. Deterministic given manual ticks and
  // deterministic worker feeds; tests call this directly instead of Start().
  std::vector<FleetEvent> Tick();

  Status Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- introspection --------------------------------------------------------

  // {"running","window_ns","workers":[...],"locks":[...],
  //  "candidates":[...],"events":[...]}
  std::string StatusJson() const;
  std::vector<FleetEvent> RecentEvents(std::size_t max = 64) const;

  // Stops the loop, drops workers/locks/candidates/events/config.
  void ResetForTest();

 private:
  static constexpr std::uint32_t kCanaryPatience = 8;  // as the controller
  static constexpr std::size_t kMaxEvents = 256;

  enum class Mode : std::uint8_t { kObserving, kCanary };

  struct SkipEntry {
    std::string name;
    std::uint32_t windows_left = 0;
  };

  struct Worker {
    std::uint64_t pid = 0;
    std::string shm_path;
    std::string control_socket;
    std::unique_ptr<ShmSegmentReader> reader;

    // Progress tracking for staleness eviction.
    bool have_sample = false;
    std::uint64_t last_publish_count = 0;
    std::uint32_t stale_ticks = 0;

    // Cumulative per-lock snapshots from the previous successful read, keyed
    // by lock name; diffed against the next read.
    std::map<std::string, LockProfileSnapshot> last_by_lock;

    // Policies this worker still needs pushed (set at registration so a
    // late joiner converges onto the fleet's incumbents).
    bool needs_sync = true;
  };

  struct FleetLockState {
    std::string name;
    bool is_rw = false;  // mutex-profiled segments cannot mark rw; stays false

    RegimeHysteresis hysteresis;
    std::string incumbent;  // kPlainCandidateName when no policy
    Mode mode = Mode::kObserving;
    std::uint32_t cooldown = 0;

    bool have_baseline = false;
    std::uint64_t baseline_p50_ns = 0;
    std::uint64_t baseline_p99_ns = 0;

    std::string canary_candidate;
    Log2Histogram canary_wait;
    std::uint32_t canary_scored = 0;
    std::uint32_t canary_total = 0;

    std::vector<SkipEntry> skip;
  };

  FleetAgent() = default;

  // Sampling phase helpers. All return false if the worker must be evicted
  // (reason in *evict_reason).
  bool SampleWorkerLocked(Worker& worker,
                          std::map<std::string, LockProfileSnapshot>& merged,
                          std::string* evict_reason);
  void EvictWorkerPidLocked(std::uint64_t pid, const std::string& reason,
                            std::uint64_t now_ns,
                            std::vector<FleetEvent>& events);

  // Decision phase helpers (mirror the controller's, on merged windows).
  void TickLockLocked(FleetLockState& state,
                      const LockProfileSnapshot& window, std::uint64_t now_ns,
                      std::vector<FleetEvent>& events);
  const FleetCandidate* CandidateForLocked(
      ContentionRegime regime, bool is_rw,
      const std::vector<std::string>& skip) const;
  void StartCanaryLocked(FleetLockState& state,
                         const FleetCandidate& candidate, std::uint64_t now_ns,
                         std::vector<FleetEvent>& events);
  void FinishCanaryLocked(FleetLockState& state, bool promote,
                          FleetEventKind kind, const std::string& detail,
                          std::uint64_t now_ns,
                          std::vector<FleetEvent>& events);

  // Pushes candidate `name` ("plain" = detach) for `lock_name` to every
  // live worker; workers whose socket fails are evicted. Returns ok if at
  // least one worker holds the policy afterwards (or the fleet is empty).
  Status PushToFleetLocked(const std::string& lock_name,
                           const std::string& name, std::uint64_t now_ns,
                           std::vector<FleetEvent>& events);
  // One worker, one lock; "plain" detaches. Sets *transport_failed when the
  // failure is the worker's socket (dead/wedged worker — evict) rather than
  // a server-side rejection (bad candidate — back off).
  Status PushToWorkerLocked(Worker& worker, const std::string& lock_name,
                            const std::string& name, bool* transport_failed);
  // Brings a late joiner up to date with every incumbent/canary policy.
  // Returns false if the worker must be evicted (reason in *evict_reason).
  bool SyncWorkerLocked(Worker& worker, std::uint64_t now_ns,
                        std::vector<FleetEvent>& events,
                        std::string* evict_reason);

  void AddSkipLocked(FleetLockState& state, const std::string& name);
  void EmitLocked(FleetEvent event, std::vector<FleetEvent>& events);
  void ThreadMain();

  mutable std::mutex mu_;
  FleetAgentConfig config_;
  std::vector<FleetCandidate> candidates_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<std::string, std::unique_ptr<FleetLockState>> locks_;
  std::deque<FleetEvent> events_;

  std::atomic<bool> running_{false};
  std::thread thread_;
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;
  bool stop_requested_ = false;
};

}  // namespace concord

#endif  // SRC_CONCORD_AGENT_FLEET_H_
