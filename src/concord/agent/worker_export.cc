#include "src/concord/agent/worker_export.h"

#include <chrono>
#include <utility>
#include <vector>

#include "src/base/json.h"
#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/concord/rpc/client.h"

namespace concord {

ShmExporter::ShmExporter(ShmExporterOptions options,
                         std::unique_ptr<ShmSegmentWriter> writer)
    : options_(std::move(options)), writer_(std::move(writer)) {}

ShmExporter::~ShmExporter() { Stop(); }

StatusOr<std::unique_ptr<ShmExporter>> ShmExporter::Create(
    ShmExporterOptions options) {
  auto writer = ShmSegmentWriter::Create(options.shm_path, options.capacity);
  CONCORD_RETURN_IF_ERROR(writer.status());
  return std::unique_ptr<ShmExporter>(
      new ShmExporter(std::move(options), std::move(writer.value())));
}

Status ShmExporter::ExportOnce() {
  Concord& concord = Concord::Global();
  std::vector<ShmLockSample> samples;
  for (const Concord::LockInfo& info : concord.ListLocks(options_.selector)) {
    if (!info.profiling) {
      continue;
    }
    const ShardedLockProfileStats* stats = concord.Stats(info.lock_id);
    if (stats == nullptr) {
      continue;
    }
    ShmLockSample sample;
    sample.lock_id = info.lock_id;
    sample.name = info.name;
    sample.snapshot = stats->Snapshot();
    samples.push_back(std::move(sample));
  }
  return writer_->Publish(samples, ClockNowNs());
}

Status ShmExporter::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return FailedPreconditionError("shm exporter already running");
  }
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      // Export errors are not fatal to the loop: a transiently over-capacity
      // registry simply skips a beat and the agent sees no publish progress.
      (void)ExportOnce();
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.period_ms));
    }
  });
  return Status::Ok();
}

void ShmExporter::Stop() {
  if (running_.exchange(false) && thread_.joinable()) {
    thread_.join();
  }
}

namespace {

std::string RegisterParamsJson(std::uint64_t pid, const std::string& shm_path,
                               const std::string& control_socket) {
  JsonWriter writer;
  writer.BeginObject();
  writer.NumberField("pid", pid);
  writer.Field("shm", shm_path);
  writer.Field("socket", control_socket);
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace

Status RegisterWithAgent(const std::string& agent_socket, std::uint64_t pid,
                         const std::string& shm_path,
                         const std::string& control_socket,
                         std::uint32_t attempts,
                         std::uint64_t retry_delay_ms) {
  RpcClientOptions options;
  options.socket_path = agent_socket;
  options.max_attempts = 1;
  RpcClient client(options);
  const std::string params = RegisterParamsJson(pid, shm_path, control_socket);
  Status last = InternalError("agent registration never attempted");
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(retry_delay_ms));
    }
    // agent.register mutates agent state but is idempotent per pid (the
    // agent replaces any existing entry), so the worker may retry freely
    // while the agent is still coming up.
    auto response = client.CallOnce("agent.register", params);
    if (!response.ok()) {
      last = response.status();
      continue;
    }
    if (!response->ok) {
      return InternalError("agent.register rejected: " +
                           response->error_message);
    }
    return Status::Ok();
  }
  return last;
}

Status LeaveAgent(const std::string& agent_socket, std::uint64_t pid) {
  RpcClientOptions options;
  options.socket_path = agent_socket;
  options.max_attempts = 1;
  RpcClient client(options);
  JsonWriter writer;
  writer.BeginObject();
  writer.NumberField("pid", pid);
  writer.EndObject();
  auto response = client.CallOnce("agent.leave", writer.TakeString());
  if (!response.ok()) {
    return response.status();
  }
  if (!response->ok) {
    return InternalError("agent.leave rejected: " + response->error_message);
  }
  return Status::Ok();
}

}  // namespace concord
