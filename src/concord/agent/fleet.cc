#include "src/concord/agent/fleet.h"

#include <signal.h>

#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/base/fault.h"
#include "src/base/json.h"
#include "src/base/time.h"
#include "src/bpf/analysis/certify.h"
#include "src/bpf/assembler.h"
#include "src/bpf/maps.h"
#include "src/concord/autotune/candidates.h"
#include "src/concord/hooks.h"
#include "src/concord/policy.h"
#include "src/concord/policy_lint.h"
#include "src/concord/policy_source.h"
#include "src/concord/rpc/client.h"

namespace concord {

const char* FleetEventKindName(FleetEventKind kind) {
  switch (kind) {
    case FleetEventKind::kWorkerJoin:
      return "worker-join";
    case FleetEventKind::kWorkerEvict:
      return "worker-evict";
    case FleetEventKind::kRegimeChange:
      return "regime-change";
    case FleetEventKind::kCanaryStart:
      return "canary-start";
    case FleetEventKind::kPromote:
      return "promote";
    case FleetEventKind::kRollback:
      return "rollback";
    case FleetEventKind::kCanaryAbort:
      return "canary-abort";
    case FleetEventKind::kError:
      return "error";
  }
  return "unknown";
}

namespace {

// One worker's window for a lock, added into the fleet-wide window. Counters
// add, histograms merge, the window bounds widen to cover every contributor
// (each worker stamps its own publishes, but all of them read the same
// system-wide CLOCK_MONOTONIC).
void MergeWindow(const LockProfileSnapshot& delta,
                 LockProfileSnapshot& merged) {
  merged.acquisitions += delta.acquisitions;
  merged.contentions += delta.contentions;
  merged.releases += delta.releases;
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    merged.socket_acquisitions[i] += delta.socket_acquisitions[i];
  }
  merged.cross_socket_handoffs += delta.cross_socket_handoffs;
  merged.dropped_samples += delta.dropped_samples;
  merged.budget_overruns += delta.budget_overruns;
  merged.quarantines += delta.quarantines;
  merged.wait_ns.MergeFrom(delta.wait_ns);
  merged.hold_ns.MergeFrom(delta.hold_ns);
  if (merged.window_start_ns == 0 ||
      (delta.window_start_ns != 0 &&
       delta.window_start_ns < merged.window_start_ns)) {
    merged.window_start_ns = delta.window_start_ns;
  }
  if (delta.taken_at_ns > merged.taken_at_ns) {
    merged.taken_at_ns = delta.taken_at_ns;
  }
}

// The same admission pipeline a worker runs inside policy.attach (assemble,
// verify under the hook's capability mask, lint, certify). A candidate the
// agent cannot certify locally would only bounce off every worker's gate.
Status ValidateCandidateSource(const std::string& name,
                               const std::string& source) {
  auto hook = ResolveHookDirective(source);
  if (!hook.ok()) {
    if (hook.status().code() == StatusCode::kNotFound) {
      return InvalidArgumentError("fleet candidate '" + name +
                                  "' has no '; hook: <name>' directive");
    }
    return hook.status();
  }
  std::uint64_t budget_ns = 0;
  auto budget = ResolveBudgetDirective(source);
  if (budget.ok()) {
    budget_ns = *budget;
  } else if (budget.status().code() != StatusCode::kNotFound) {
    return budget.status();
  }
  std::shared_ptr<ArrayMap> scratch;
  std::vector<BpfMap*> caller_maps;
  if (!SourceDeclaresMaps(source)) {
    scratch = std::make_shared<ArrayMap>("scratch", 8, 8);
    caller_maps.push_back(scratch.get());
  }
  std::vector<std::shared_ptr<BpfMap>> declared_maps;
  auto program = AssembleProgram(name, source, &DescriptorFor(*hook),
                                 std::move(caller_maps), &declared_maps);
  CONCORD_RETURN_IF_ERROR(program.status());
  Verifier::Analysis analysis;
  CONCORD_RETURN_IF_ERROR(
      CheckPolicyProgram(*hook, *program, nullptr, &analysis));
  CONCORD_RETURN_IF_ERROR(CertifyProgram(*program, analysis, budget_ns));
  return Status::Ok();
}

}  // namespace

FleetAgent& FleetAgent::Global() {
  static FleetAgent* instance = new FleetAgent();
  return *instance;
}

Status FleetAgent::Configure(const FleetAgentConfig& config) {
  std::string policy_dir;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (running_.load(std::memory_order_acquire)) {
      return FailedPreconditionError(
          "fleet agent: cannot reconfigure while running");
    }
    config_ = config;
    policy_dir = config.policy_dir;
  }
  if (!policy_dir.empty()) {
    (void)SeedCandidatesFromDir(policy_dir);
  }
  return Status::Ok();
}

FleetAgentConfig FleetAgent::config() const {
  std::lock_guard<std::mutex> guard(mu_);
  return config_;
}

Status FleetAgent::AddCandidate(const FleetCandidate& candidate) {
  if (candidate.name.empty() || candidate.name == kPlainCandidateName) {
    return InvalidArgumentError("fleet candidate needs a non-reserved name");
  }
  if (candidate.source.empty()) {
    return InvalidArgumentError("fleet candidate '" + candidate.name +
                                "' has no source");
  }
  CONCORD_RETURN_IF_ERROR(
      ValidateCandidateSource(candidate.name, candidate.source));
  std::lock_guard<std::mutex> guard(mu_);
  for (FleetCandidate& existing : candidates_) {
    if (existing.name == candidate.name) {
      existing = candidate;
      return Status::Ok();
    }
  }
  candidates_.push_back(candidate);
  return Status::Ok();
}

int FleetAgent::SeedCandidatesFromDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return 0;
  }
  int registered = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file() || entry.path().extension() != ".casm") {
      continue;
    }
    std::ifstream file(entry.path());
    if (!file) {
      continue;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    FleetCandidate candidate;
    candidate.name = entry.path().stem().string();
    candidate.source = buffer.str();
    if (!RegimeFromPolicyFilename(candidate.name, &candidate.regime)) {
      continue;
    }
    auto hook = ResolveHookDirective(candidate.source);
    candidate.for_rw = hook.ok() && *hook == HookKind::kRwMode;
    if (AddCandidate(candidate).ok()) {
      ++registered;
    }
  }
  return registered;
}

std::vector<std::string> FleetAgent::CandidateNames() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> names;
  names.reserve(candidates_.size());
  for (const FleetCandidate& candidate : candidates_) {
    names.push_back(candidate.name);
  }
  return names;
}

Status FleetAgent::RegisterWorker(std::uint64_t pid,
                                  const std::string& shm_path,
                                  const std::string& control_socket) {
  if (pid == 0 || shm_path.empty() || control_socket.empty()) {
    return InvalidArgumentError(
        "agent.register needs pid, shm path and control socket");
  }
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<FleetEvent> events;
  // Re-registration (worker restart, or a retry whose first response was
  // lost) replaces the entry wholesale: fresh reader, fresh baselines.
  for (auto it = workers_.begin(); it != workers_.end(); ++it) {
    if ((*it)->pid == pid) {
      workers_.erase(it);
      break;
    }
  }
  auto worker = std::make_unique<Worker>();
  worker->pid = pid;
  worker->shm_path = shm_path;
  worker->control_socket = control_socket;
  workers_.push_back(std::move(worker));
  EmitLocked({ClockNowNs(), pid, "", FleetEventKind::kWorkerJoin,
              ContentionRegime::kUncontended, "", "shm=" + shm_path},
             events);
  return Status::Ok();
}

Status FleetAgent::LeaveWorker(std::uint64_t pid) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = workers_.begin(); it != workers_.end(); ++it) {
    if ((*it)->pid == pid) {
      workers_.erase(it);
      return Status::Ok();
    }
  }
  return NotFoundError("no registered worker with pid " + std::to_string(pid));
}

std::size_t FleetAgent::WorkerCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  return workers_.size();
}

// --- sampling ----------------------------------------------------------------

bool FleetAgent::SampleWorkerLocked(
    Worker& worker, std::map<std::string, LockProfileSnapshot>& merged,
    std::string* evict_reason) {
  // Liveness first: a dead pid is an immediate eviction, not a stale count.
  // (EPERM still means "exists"; only ESRCH is death.)
  if (::kill(static_cast<pid_t>(worker.pid), 0) != 0 && errno == ESRCH) {
    *evict_reason = "process exited";
    return false;
  }

  const auto transient_failure = [&](const std::string& what) {
    ++worker.stale_ticks;
    if (worker.stale_ticks >= config_.evict_after_stale_ticks) {
      *evict_reason = what;
      return false;
    }
    return true;
  };

  // Chaos hook: an armed "agent.shm_map" fault makes this tick's segment
  // access fail (and drops any existing mapping, as a failed re-map would).
  if (CONCORD_FAULT_POINT("agent.shm_map")) {
    worker.reader.reset();
    return transient_failure("injected agent.shm_map fault");
  }

  if (worker.reader == nullptr) {
    auto reader = ShmSegmentReader::Map(worker.shm_path);
    if (!reader.ok()) {
      if (reader.status().code() == StatusCode::kInvalidArgument) {
        *evict_reason = reader.status().message();
        return false;
      }
      return transient_failure("segment unreadable: " +
                               reader.status().message());
    }
    worker.reader = std::move(*reader);
  }

  auto sample = worker.reader->Read();
  if (!sample.ok()) {
    if (sample.status().code() == StatusCode::kInvalidArgument) {
      // Permanent corruption (bad magic/version/checksum, truncation).
      *evict_reason = sample.status().message();
      return false;
    }
    return transient_failure("segment unstable: " +
                             sample.status().message());
  }

  if (!worker.have_sample) {
    // First successful read is the baseline; windows start next tick.
    worker.have_sample = true;
    worker.stale_ticks = 0;
    worker.last_publish_count = sample->publish_count;
    for (const ShmLockSample& lock : sample->locks) {
      worker.last_by_lock[lock.name] = lock.snapshot;
    }
    return true;
  }

  if (sample->publish_count == worker.last_publish_count) {
    // Readable but not advancing: the exporter (and so probably the worker)
    // is wedged. Progress-based on purpose — an agent under FakeClock still
    // sees a real worker stalling.
    return transient_failure("stale segment: no publish progress");
  }

  worker.stale_ticks = 0;
  worker.last_publish_count = sample->publish_count;
  for (const ShmLockSample& lock : sample->locks) {
    auto prev = worker.last_by_lock.find(lock.name);
    if (prev != worker.last_by_lock.end()) {
      MergeWindow(lock.snapshot.DeltaSince(prev->second), merged[lock.name]);
    }
    worker.last_by_lock[lock.name] = lock.snapshot;
  }
  return true;
}

void FleetAgent::EvictWorkerPidLocked(std::uint64_t pid,
                                      const std::string& reason,
                                      std::uint64_t now_ns,
                                      std::vector<FleetEvent>& events) {
  for (auto it = workers_.begin(); it != workers_.end(); ++it) {
    if ((*it)->pid == pid) {
      EmitLocked({now_ns, pid, "", FleetEventKind::kWorkerEvict,
                  ContentionRegime::kUncontended, "", reason},
                 events);
      workers_.erase(it);
      return;
    }
  }
}

// --- policy pushes -----------------------------------------------------------

Status FleetAgent::PushToWorkerLocked(Worker& worker,
                                      const std::string& lock_name,
                                      const std::string& name,
                                      bool* transport_failed) {
  *transport_failed = false;
  RpcClientOptions options;
  options.socket_path = worker.control_socket;
  options.timeout_ms = config_.push_timeout_ms;
  options.max_attempts = 1;
  RpcClient client(options);

  if (name == kPlainCandidateName) {
    JsonWriter params;
    params.BeginObject();
    params.Field("selector", lock_name);
    params.EndObject();
    auto response = client.CallOnce("policy.detach", params.TakeString());
    if (!response.ok()) {
      *transport_failed = true;
      return response.status();
    }
    if (!response->ok && response->error_code != "not_found") {
      // not_found = the worker has no such lock (or nothing attached);
      // reverting to plain there is already a fact, not a failure.
      return InternalError("policy.detach rejected: " +
                           response->error_message);
    }
    return Status::Ok();
  }

  const FleetCandidate* candidate = nullptr;
  for (const FleetCandidate& entry : candidates_) {
    if (entry.name == name) {
      candidate = &entry;
      break;
    }
  }
  if (candidate == nullptr) {
    return NotFoundError("no fleet candidate named '" + name + "'");
  }
  JsonWriter params;
  params.BeginObject();
  params.Field("selector", lock_name);
  params.Field("name", candidate->name);
  params.Field("source", candidate->source);
  params.EndObject();
  auto response = client.CallOnce("policy.attach", params.TakeString());
  if (!response.ok()) {
    *transport_failed = true;
    return response.status();
  }
  if (!response->ok) {
    return InternalError("policy.attach rejected (" + response->error_code +
                         "): " + response->error_message);
  }
  return Status::Ok();
}

Status FleetAgent::PushToFleetLocked(const std::string& lock_name,
                                     const std::string& name,
                                     std::uint64_t now_ns,
                                     std::vector<FleetEvent>& events) {
  std::vector<std::pair<std::uint64_t, std::string>> evictions;
  Status first_rejection = Status::Ok();
  for (auto& worker : workers_) {
    bool transport_failed = false;
    const Status status =
        PushToWorkerLocked(*worker, lock_name, name, &transport_failed);
    if (status.ok()) {
      continue;
    }
    if (transport_failed) {
      // Worker unreachable on its own socket: dead or wedged. Evicting here
      // (instead of failing the push) is what keeps one killed worker from
      // blocking or rolling back the surviving fleet.
      evictions.emplace_back(worker->pid,
                             "policy push failed: " + status.message());
      continue;
    }
    if (first_rejection.ok()) {
      first_rejection = status;
    }
  }
  for (const auto& [pid, reason] : evictions) {
    EvictWorkerPidLocked(pid, reason, now_ns, events);
  }
  return first_rejection;
}

bool FleetAgent::SyncWorkerLocked(Worker& worker, std::uint64_t now_ns,
                                  std::vector<FleetEvent>& events,
                                  std::string* evict_reason) {
  for (const auto& [lock_name, state] : locks_) {
    const std::string effective = state->mode == Mode::kCanary
                                      ? state->canary_candidate
                                      : state->incumbent;
    if (effective == kPlainCandidateName) {
      continue;  // a fresh worker is already plain
    }
    bool transport_failed = false;
    const Status status =
        PushToWorkerLocked(worker, lock_name, effective, &transport_failed);
    if (transport_failed) {
      *evict_reason = "policy sync failed: " + status.message();
      return false;
    }
    if (!status.ok()) {
      EmitLocked({now_ns, worker.pid, lock_name, FleetEventKind::kError,
                  ContentionRegime::kUncontended, effective,
                  "sync rejected: " + status.message()},
                 events);
    }
  }
  return true;
}

// --- decisions ---------------------------------------------------------------

const FleetCandidate* FleetAgent::CandidateForLocked(
    ContentionRegime regime, bool is_rw,
    const std::vector<std::string>& skip) const {
  for (const FleetCandidate& candidate : candidates_) {
    if (candidate.regime != regime || candidate.for_rw != is_rw) {
      continue;
    }
    bool skipped = false;
    for (const std::string& name : skip) {
      if (name == candidate.name) {
        skipped = true;
        break;
      }
    }
    if (!skipped) {
      return &candidate;
    }
  }
  return nullptr;  // the implicit plain candidate
}

void FleetAgent::TickLockLocked(FleetLockState& state,
                                const LockProfileSnapshot& window,
                                std::uint64_t now_ns,
                                std::vector<FleetEvent>& events) {
  const bool window_qualifies =
      window.acquisitions >= config_.min_window_acquisitions;

  // Classify (observation windows only — canary windows measure, not steer).
  if (state.mode == Mode::kObserving && window_qualifies) {
    const RegimeSignals signals = RegimeSignals::FromWindow(window, state.is_rw);
    const DefaultRegimeClassifier classifier(config_.classifier);
    const ContentionRegime before = state.hysteresis.stable();
    const ContentionRegime stable =
        state.hysteresis.Observe(classifier.Classify(signals));
    if (stable != before) {
      EmitLocked({now_ns, 0, state.name, FleetEventKind::kRegimeChange, stable,
                  "", std::string("from ") + ContentionRegimeName(before)},
                 events);
    }
    state.baseline_p50_ns = window.wait_ns.Percentile(50);
    state.baseline_p99_ns = window.wait_ns.Percentile(99);
    state.have_baseline = true;
  }

  for (SkipEntry& entry : state.skip) {
    if (entry.windows_left > 0) {
      --entry.windows_left;
    }
  }
  if (state.cooldown > 0) {
    --state.cooldown;
    return;
  }

  if (state.mode == Mode::kCanary) {
    ++state.canary_total;
    if (window_qualifies) {
      state.canary_wait.MergeFrom(window.wait_ns);
      ++state.canary_scored;
    }
    if (state.canary_scored < config_.canary_windows) {
      if (state.canary_total >= config_.canary_windows * kCanaryPatience) {
        FinishCanaryLocked(state, /*promote=*/false,
                           FleetEventKind::kCanaryAbort,
                           "canary starved of samples", now_ns, events);
      }
      return;
    }
    // Verdict — the same evidence rule as the in-process controller.
    const CanaryScore score = {state.baseline_p50_ns, state.baseline_p99_ns,
                               state.canary_wait.Percentile(50),
                               state.canary_wait.Percentile(99)};
    const bool promote = CanaryPromotes(score, config_.promote_margin);
    FinishCanaryLocked(state, promote,
                       promote ? FleetEventKind::kPromote
                               : FleetEventKind::kRollback,
                       CanaryScoreDetail(score), now_ns, events);
    return;
  }

  // Observing, no cooldown: act if the stable regime wants a different
  // policy than the fleet incumbent.
  const ContentionRegime stable = state.hysteresis.stable();
  std::vector<std::string> skip;
  for (const SkipEntry& entry : state.skip) {
    if (entry.windows_left > 0) {
      skip.push_back(entry.name);
    }
  }
  const FleetCandidate* target =
      CandidateForLocked(stable, state.is_rw, skip);
  const std::string target_name =
      target != nullptr ? target->name : std::string(kPlainCandidateName);
  if (target_name == state.incumbent) {
    return;
  }
  if (target == nullptr) {
    // Reverting the fleet to plain needs no canary: detaching is always
    // safe, and an uncontended fleet produces no samples to score anyway.
    const Status status =
        PushToFleetLocked(state.name, kPlainCandidateName, now_ns, events);
    if (status.ok()) {
      const std::string previous = state.incumbent;
      state.incumbent = kPlainCandidateName;
      state.cooldown = config_.cooldown_windows;
      EmitLocked({now_ns, 0, state.name, FleetEventKind::kPromote, stable,
                  kPlainCandidateName, "reverted fleet from " + previous},
                 events);
    } else {
      EmitLocked({now_ns, 0, state.name, FleetEventKind::kError, stable,
                  kPlainCandidateName, "revert failed: " + status.message()},
                 events);
    }
    return;
  }
  if (!state.have_baseline) {
    return;  // nothing to score a canary against yet
  }
  StartCanaryLocked(state, *target, now_ns, events);
}

void FleetAgent::StartCanaryLocked(FleetLockState& state,
                                   const FleetCandidate& candidate,
                                   std::uint64_t now_ns,
                                   std::vector<FleetEvent>& events) {
  const Status status =
      PushToFleetLocked(state.name, candidate.name, now_ns, events);
  if (!status.ok()) {
    // Some worker's gate rejected the candidate: back it off, and restore
    // the incumbent everywhere so the fleet never splits on a half-applied
    // canary.
    AddSkipLocked(state, candidate.name);
    (void)PushToFleetLocked(state.name, state.incumbent, now_ns, events);
    EmitLocked({now_ns, 0, state.name, FleetEventKind::kError,
                state.hysteresis.stable(), candidate.name,
                "canary attach failed: " + status.message()},
               events);
    return;
  }
  state.mode = Mode::kCanary;
  state.canary_candidate = candidate.name;
  state.canary_wait.Reset();
  state.canary_scored = 0;
  state.canary_total = 0;
  EmitLocked({now_ns, 0, state.name, FleetEventKind::kCanaryStart,
              state.hysteresis.stable(), candidate.name,
              "fleet of " + std::to_string(workers_.size())},
             events);
}

void FleetAgent::FinishCanaryLocked(FleetLockState& state, bool promote,
                                    FleetEventKind kind,
                                    const std::string& detail,
                                    std::uint64_t now_ns,
                                    std::vector<FleetEvent>& events) {
  const std::string candidate = state.canary_candidate;
  state.mode = Mode::kObserving;
  state.canary_candidate.clear();
  state.canary_wait.Reset();
  state.canary_scored = 0;
  state.canary_total = 0;
  state.cooldown = config_.cooldown_windows;
  if (promote) {
    state.incumbent = candidate;
  } else {
    AddSkipLocked(state, candidate);
    const Status status =
        PushToFleetLocked(state.name, state.incumbent, now_ns, events);
    if (!status.ok()) {
      EmitLocked({now_ns, 0, state.name, FleetEventKind::kError,
                  state.hysteresis.stable(), state.incumbent,
                  "rollback push failed: " + status.message()},
                 events);
    }
  }
  EmitLocked({now_ns, 0, state.name, kind, state.hysteresis.stable(),
              candidate, detail},
             events);
}

void FleetAgent::AddSkipLocked(FleetLockState& state,
                               const std::string& name) {
  for (SkipEntry& entry : state.skip) {
    if (entry.name == name) {
      entry.windows_left = config_.failed_candidate_backoff_windows;
      return;
    }
  }
  state.skip.push_back({name, config_.failed_candidate_backoff_windows});
}

void FleetAgent::EmitLocked(FleetEvent event, std::vector<FleetEvent>& events) {
  events_.push_back(event);
  while (events_.size() > kMaxEvents) {
    events_.pop_front();
  }
  events.push_back(std::move(event));
}

// --- the loop ----------------------------------------------------------------

std::vector<FleetEvent> FleetAgent::Tick() {
  std::lock_guard<std::mutex> guard(mu_);
  const std::uint64_t now_ns = ClockNowNs();
  std::vector<FleetEvent> events;

  // Sample phase: read every worker's segment, evicting the unreadable.
  std::map<std::string, LockProfileSnapshot> merged;
  std::vector<std::pair<std::uint64_t, std::string>> evictions;
  for (auto& worker : workers_) {
    std::string reason;
    if (!SampleWorkerLocked(*worker, merged, &reason)) {
      evictions.emplace_back(worker->pid, reason);
    }
  }
  for (const auto& [pid, reason] : evictions) {
    EvictWorkerPidLocked(pid, reason, now_ns, events);
  }

  // Sync phase: late joiners converge onto the fleet's current policies.
  evictions.clear();
  for (auto& worker : workers_) {
    if (!worker->needs_sync) {
      continue;
    }
    std::string reason;
    if (SyncWorkerLocked(*worker, now_ns, events, &reason)) {
      worker->needs_sync = false;
    } else {
      evictions.emplace_back(worker->pid, reason);
    }
  }
  for (const auto& [pid, reason] : evictions) {
    EvictWorkerPidLocked(pid, reason, now_ns, events);
  }

  // Chaos hook: an armed "agent.merge" fault wedges the decision phase for
  // the tick. Sampling above already happened — a wedged agent loses
  // decisions, never membership or attachment-state consistency (mirrors
  // "autotune.decide").
  if (CONCORD_FAULT_POINT("agent.merge")) {
    return events;
  }

  // Decision phase: one fleet-wide canary loop per lock name.
  for (auto& [name, window] : merged) {
    auto it = locks_.find(name);
    if (it == locks_.end()) {
      auto state = std::make_unique<FleetLockState>();
      state->name = name;
      state->incumbent = kPlainCandidateName;
      state->hysteresis = RegimeHysteresis(config_.hysteresis_windows);
      it = locks_.emplace(name, std::move(state)).first;
    }
    TickLockLocked(*it->second, window, now_ns, events);
  }
  return events;
}

void FleetAgent::ThreadMain() {
  while (running_.load(std::memory_order_acquire)) {
    (void)Tick();
    std::unique_lock<std::mutex> lock(stop_mu_);
    const std::uint64_t window_ns = [this] {
      std::lock_guard<std::mutex> guard(mu_);
      return config_.window_ns;
    }();
    stop_cv_.wait_for(lock, std::chrono::nanoseconds(window_ns),
                      [this] { return stop_requested_; });
  }
}

Status FleetAgent::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return FailedPreconditionError("fleet agent: already running");
  }
  {
    std::lock_guard<std::mutex> guard(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { ThreadMain(); });
  return Status::Ok();
}

void FleetAgent::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  {
    std::lock_guard<std::mutex> guard(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

// --- introspection -----------------------------------------------------------

std::string FleetAgent::StatusJson() const {
  std::lock_guard<std::mutex> guard(mu_);
  JsonWriter json;
  json.BeginObject();
  json.Key("running").Bool(running_.load(std::memory_order_acquire));
  json.NumberField("window_ns", config_.window_ns);
  json.NumberField("worker_count",
                   static_cast<std::uint64_t>(workers_.size()));
  json.Key("workers").BeginArray();
  for (const auto& worker : workers_) {
    json.BeginObject();
    json.NumberField("pid", worker->pid);
    json.Field("shm", worker->shm_path);
    json.Field("socket", worker->control_socket);
    json.NumberField("publish_count", worker->last_publish_count);
    json.NumberField("stale_ticks", worker->stale_ticks);
    json.NumberField("locks_seen",
                     static_cast<std::uint64_t>(worker->last_by_lock.size()));
    json.Key("synced").Bool(!worker->needs_sync);
    json.EndObject();
  }
  json.EndArray();
  json.Key("locks").BeginArray();
  for (const auto& [name, state] : locks_) {
    json.BeginObject();
    json.Field("name", name);
    json.Field("regime", ContentionRegimeName(state->hysteresis.stable()));
    json.Field("mode",
               state->mode == Mode::kCanary ? "canary" : "observing");
    json.Field("incumbent", state->incumbent);
    json.NumberField("cooldown", state->cooldown);
    if (state->have_baseline) {
      json.NumberField("baseline_p50_ns", state->baseline_p50_ns);
      json.NumberField("baseline_p99_ns", state->baseline_p99_ns);
    }
    if (state->mode == Mode::kCanary) {
      json.Key("canary").BeginObject();
      json.Field("candidate", state->canary_candidate);
      json.NumberField("scored", state->canary_scored);
      json.NumberField("total", state->canary_total);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("candidates").BeginArray();
  for (const FleetCandidate& candidate : candidates_) {
    json.BeginObject();
    json.Field("name", candidate.name);
    json.Field("regime", ContentionRegimeName(candidate.regime));
    json.Key("for_rw").Bool(candidate.for_rw);
    json.EndObject();
  }
  json.EndArray();
  json.Key("events").BeginArray();
  for (const FleetEvent& event : events_) {
    json.BeginObject();
    json.NumberField("ts_ns", event.ts_ns);
    if (event.worker_pid != 0) {
      json.NumberField("pid", event.worker_pid);
    }
    if (!event.lock_name.empty()) {
      json.Field("lock", event.lock_name);
    }
    json.Field("kind", FleetEventKindName(event.kind));
    json.Field("regime", ContentionRegimeName(event.regime));
    if (!event.candidate.empty()) {
      json.Field("candidate", event.candidate);
    }
    json.Field("detail", event.detail);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.TakeString();
}

std::vector<FleetEvent> FleetAgent::RecentEvents(std::size_t max) const {
  std::lock_guard<std::mutex> guard(mu_);
  const std::size_t start = events_.size() > max ? events_.size() - max : 0;
  return std::vector<FleetEvent>(events_.begin() + start, events_.end());
}

void FleetAgent::ResetForTest() {
  Stop();
  std::lock_guard<std::mutex> guard(mu_);
  workers_.clear();
  locks_.clear();
  candidates_.clear();
  events_.clear();
  config_ = FleetAgentConfig{};
}

}  // namespace concord
