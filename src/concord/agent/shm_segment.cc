#include "src/concord/agent/shm_segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/base/spinwait.h"

namespace concord {
namespace {

// FNV-1a over u64 words. Not cryptographic — it only needs to make a random
// byte flip (fuzz tests, disk corruption) fail validation deterministically.
std::uint64_t HashWords(std::uint64_t seed, const std::uint64_t* words,
                        std::size_t count) {
  std::uint64_t hash = seed == 0 ? 1469598103934665603ull : seed;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t word = words[i];
    for (int b = 0; b < 8; ++b) {
      hash ^= (word >> (b * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

// Relaxed per-word copies in and out of the shared mapping. The surrounding
// seqlock fences provide ordering; per-word atomicity keeps concurrent
// in-process reader/writer pairs TSan-clean.
void CopyWordsFromShared(std::uint64_t* dst, const std::uint64_t* shared,
                         std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = __atomic_load_n(&shared[i], __ATOMIC_RELAXED);
  }
}

void CopyWordsToShared(std::uint64_t* shared, const std::uint64_t* src,
                       std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    __atomic_store_n(&shared[i], src[i], __ATOMIC_RELAXED);
  }
}

constexpr std::size_t kHeaderWords =
    sizeof(ShmSegmentHeader) / sizeof(std::uint64_t);
constexpr std::size_t kRecordWords =
    sizeof(ShmLockRecord) / sizeof(std::uint64_t);

std::uint64_t* RecordBase(void* base) {
  return reinterpret_cast<std::uint64_t*>(static_cast<char*>(base) +
                                          sizeof(ShmSegmentHeader));
}

const std::uint64_t* RecordBase(const void* base) {
  return reinterpret_cast<const std::uint64_t*>(
      static_cast<const char*>(base) + sizeof(ShmSegmentHeader));
}

// Checksum over the staged header (checksum field zeroed) and the first
// lock_count staged records. The header's `sequence` must already hold the
// final even value when this is computed.
std::uint64_t SegmentChecksum(const ShmSegmentHeader& header,
                              const std::uint64_t* records,
                              std::uint64_t lock_count) {
  ShmSegmentHeader scratch = header;
  scratch.checksum = 0;
  std::uint64_t hash =
      HashWords(0, reinterpret_cast<const std::uint64_t*>(&scratch),
                kHeaderWords);
  return HashWords(hash, records, lock_count * kRecordWords);
}

void EncodeHistogram(const Log2Histogram& hist, std::uint64_t* buckets,
                     std::uint64_t& sum, std::uint64_t& max) {
  for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
    buckets[i] = hist.BucketCount(i);
  }
  sum = hist.Sum();
  max = hist.Max();
}

void DecodeHistogram(const std::uint64_t* buckets, std::uint64_t sum,
                     std::uint64_t max, Log2Histogram& out) {
  out.Reset();
  for (int i = 0; i < Log2Histogram::kBuckets; ++i) {
    if (buckets[i] != 0) {
      out.AddBucketCount(i, buckets[i]);
    }
  }
  out.AddSum(sum);
  out.ObserveMax(max);
}

}  // namespace

std::size_t ShmSegmentBytes(std::uint32_t capacity) {
  return sizeof(ShmSegmentHeader) +
         static_cast<std::size_t>(capacity) * sizeof(ShmLockRecord);
}

void ShmEncodeRecord(const ShmLockSample& sample, ShmLockRecord& out) {
  std::memset(&out, 0, sizeof(out));
  out.lock_id = sample.lock_id;
  const std::size_t copy =
      sample.name.size() < kShmMaxLockName - 1 ? sample.name.size()
                                               : kShmMaxLockName - 1;
  std::memcpy(out.name, sample.name.data(), copy);
  const LockProfileSnapshot& snap = sample.snapshot;
  out.acquisitions = snap.acquisitions;
  out.contentions = snap.contentions;
  out.releases = snap.releases;
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    out.socket_acquisitions[i] = snap.socket_acquisitions[i];
  }
  out.cross_socket_handoffs = snap.cross_socket_handoffs;
  out.dropped_samples = snap.dropped_samples;
  out.budget_overruns = snap.budget_overruns;
  out.quarantines = snap.quarantines;
  EncodeHistogram(snap.wait_ns, out.wait_buckets, out.wait_sum, out.wait_max);
  EncodeHistogram(snap.hold_ns, out.hold_buckets, out.hold_sum, out.hold_max);
}

void ShmDecodeRecord(const ShmLockRecord& record, std::uint64_t published_ns,
                     ShmLockSample& out) {
  out.lock_id = record.lock_id;
  out.name.assign(record.name, strnlen(record.name, kShmMaxLockName));
  LockProfileSnapshot& snap = out.snapshot;
  snap = LockProfileSnapshot{};
  snap.taken_at_ns = published_ns;
  snap.acquisitions = record.acquisitions;
  snap.contentions = record.contentions;
  snap.releases = record.releases;
  for (std::size_t i = 0; i < kProfilerSocketSlots; ++i) {
    snap.socket_acquisitions[i] = record.socket_acquisitions[i];
  }
  snap.cross_socket_handoffs = record.cross_socket_handoffs;
  snap.dropped_samples = record.dropped_samples;
  snap.budget_overruns = record.budget_overruns;
  snap.quarantines = record.quarantines;
  DecodeHistogram(record.wait_buckets, record.wait_sum, record.wait_max,
                  snap.wait_ns);
  DecodeHistogram(record.hold_buckets, record.hold_sum, record.hold_max,
                  snap.hold_ns);
}

// --- writer -----------------------------------------------------------------

ShmSegmentWriter::ShmSegmentWriter(std::string path, int fd, void* base,
                                   std::size_t bytes, std::uint32_t capacity)
    : path_(std::move(path)),
      fd_(fd),
      base_(base),
      bytes_(bytes),
      capacity_(capacity) {}

ShmSegmentWriter::~ShmSegmentWriter() {
  if (base_ != nullptr) {
    ::munmap(base_, bytes_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
  // The file itself is left in place: a reader may still hold a mapping, and
  // the owning process (worker shutdown path) unlinks it explicitly.
}

StatusOr<std::unique_ptr<ShmSegmentWriter>> ShmSegmentWriter::Create(
    const std::string& path, std::uint32_t capacity) {
  if (capacity == 0) {
    return InvalidArgumentError("shm segment capacity must be > 0");
  }
  const std::size_t bytes = ShmSegmentBytes(capacity);
  // No O_TRUNC: shrinking an already-mapped file would turn a stale reader's
  // loads into SIGBUS. ftruncate to the exact size instead; a reader mapped
  // to an old layout fails its checksum and re-maps.
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return InternalError("open(" + path + "): " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    return InternalError("ftruncate(" + path + "): " + std::strerror(err));
  }
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    return InternalError("mmap(" + path + "): " + std::strerror(err));
  }
  auto writer = std::unique_ptr<ShmSegmentWriter>(
      new ShmSegmentWriter(path, fd, base, bytes, capacity));
  // Publish an empty-but-valid state so a reader that maps between Create()
  // and the first real Publish() gets a clean zero-lock sample instead of a
  // corruption error. Any pre-existing file content is overwritten here
  // under the same seqlock protocol.
  CONCORD_RETURN_IF_ERROR(writer->Publish({}, 0));
  return writer;
}

Status ShmSegmentWriter::Publish(const std::vector<ShmLockSample>& locks,
                                 std::uint64_t published_ns) {
  if (locks.size() > capacity_) {
    return ResourceExhaustedError(
        "shm segment capacity " + std::to_string(capacity_) +
        " < " + std::to_string(locks.size()) + " profiled locks");
  }
  auto* shared_header = static_cast<ShmSegmentHeader*>(base_);
  auto* shared_words = reinterpret_cast<std::uint64_t*>(base_);

  // Stage everything locally so the shared critical section is a straight
  // word copy and the checksum is computed over exactly what gets written.
  std::vector<ShmLockRecord> records(locks.size());
  for (std::size_t i = 0; i < locks.size(); ++i) {
    ShmEncodeRecord(locks[i], records[i]);
  }
  const std::uint64_t seq =
      __atomic_load_n(&shared_header->sequence, __ATOMIC_RELAXED);

  ShmSegmentHeader staged;
  staged.magic = kShmSegmentMagic;
  staged.version = kShmSegmentVersion;
  staged.header_bytes = sizeof(ShmSegmentHeader);
  staged.record_bytes = sizeof(ShmLockRecord);
  staged.capacity = capacity_;
  staged.pid = static_cast<std::uint64_t>(::getpid());
  staged.sequence = seq + 2;  // the post-publish even value
  staged.published_ns = published_ns;
  staged.publish_count =
      __atomic_load_n(&shared_header->publish_count, __ATOMIC_RELAXED) + 1;
  staged.lock_count = locks.size();
  staged.checksum = SegmentChecksum(
      staged, reinterpret_cast<const std::uint64_t*>(records.data()),
      staged.lock_count);

  // Seqlock write side: odd sequence, full fence, payload, fence, even
  // sequence. seq_cst fences keep the relaxed payload stores inside the
  // odd/even window on weakly-ordered hardware.
  __atomic_store_n(&shared_header->sequence, seq + 1, __ATOMIC_RELAXED);
  __atomic_thread_fence(__ATOMIC_SEQ_CST);
  if (!records.empty()) {
    CopyWordsToShared(RecordBase(base_),
                      reinterpret_cast<const std::uint64_t*>(records.data()),
                      records.size() * kRecordWords);
  }
  // Header words except `sequence` (word index 6).
  const auto* staged_words = reinterpret_cast<const std::uint64_t*>(&staged);
  constexpr std::size_t kSequenceWord =
      offsetof(ShmSegmentHeader, sequence) / sizeof(std::uint64_t);
  for (std::size_t i = 0; i < kHeaderWords; ++i) {
    if (i != kSequenceWord) {
      __atomic_store_n(&shared_words[i], staged_words[i], __ATOMIC_RELAXED);
    }
  }
  __atomic_thread_fence(__ATOMIC_SEQ_CST);
  __atomic_store_n(&shared_header->sequence, seq + 2, __ATOMIC_RELEASE);
  return Status::Ok();
}

// --- reader -----------------------------------------------------------------

ShmSegmentReader::ShmSegmentReader(std::string path, int fd, const void* base,
                                   std::size_t bytes)
    : path_(std::move(path)), fd_(fd), base_(base), bytes_(bytes) {}

ShmSegmentReader::~ShmSegmentReader() {
  if (base_ != nullptr) {
    ::munmap(const_cast<void*>(base_), bytes_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

StatusOr<std::unique_ptr<ShmSegmentReader>> ShmSegmentReader::Map(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return NotFoundError("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return InternalError("fstat(" + path + "): " + std::strerror(err));
  }
  if (static_cast<std::size_t>(st.st_size) < sizeof(ShmSegmentHeader)) {
    ::close(fd);
    return InvalidArgumentError(
        "shm segment " + path + " smaller than its header (" +
        std::to_string(st.st_size) + " bytes)");
  }
  // Geometry probe: read the header with ordinary I/O (no mapping yet) to
  // size the mapping. Full validation happens on every Read().
  ShmSegmentHeader probe = {};
  if (::pread(fd, &probe, sizeof(probe), 0) !=
      static_cast<ssize_t>(sizeof(probe))) {
    ::close(fd);
    return InternalError("pread(" + path + ") short read");
  }
  if (probe.magic != kShmSegmentMagic) {
    ::close(fd);
    return InvalidArgumentError("shm segment " + path + " bad magic");
  }
  if (probe.version != kShmSegmentVersion) {
    ::close(fd);
    return InvalidArgumentError(
        "shm segment " + path + " schema version " +
        std::to_string(probe.version) + " != expected " +
        std::to_string(kShmSegmentVersion));
  }
  if (probe.header_bytes != sizeof(ShmSegmentHeader) ||
      probe.record_bytes != sizeof(ShmLockRecord) || probe.capacity == 0 ||
      probe.capacity > (1u << 20)) {
    ::close(fd);
    return InvalidArgumentError("shm segment " + path + " bad geometry");
  }
  const std::size_t bytes =
      ShmSegmentBytes(static_cast<std::uint32_t>(probe.capacity));
  if (static_cast<std::size_t>(st.st_size) < bytes) {
    ::close(fd);
    return InvalidArgumentError(
        "shm segment " + path + " truncated: " + std::to_string(st.st_size) +
        " < " + std::to_string(bytes) + " bytes");
  }
  const void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    return InternalError("mmap(" + path + "): " + std::strerror(err));
  }
  return std::unique_ptr<ShmSegmentReader>(
      new ShmSegmentReader(path, fd, base, bytes));
}

StatusOr<ShmSegmentSample> ShmSegmentReader::Read(int max_retries) const {
  // Re-check the backing file size first: if the worker died and something
  // truncated the file, touching pages past EOF is SIGBUS, not a wild read.
  struct stat st = {};
  if (::fstat(fd_, &st) != 0) {
    return InternalError("fstat(" + path_ + "): " + std::strerror(errno));
  }
  if (static_cast<std::size_t>(st.st_size) < bytes_) {
    return InvalidArgumentError(
        "shm segment " + path_ + " truncated under the mapping: " +
        std::to_string(st.st_size) + " < " + std::to_string(bytes_) +
        " bytes");
  }

  const auto* shared_header = static_cast<const ShmSegmentHeader*>(base_);
  const auto* shared_words = reinterpret_cast<const std::uint64_t*>(base_);
  const std::uint64_t mapped_capacity =
      (bytes_ - sizeof(ShmSegmentHeader)) / sizeof(ShmLockRecord);

  Status last_error =
      FailedPreconditionError("shm segment " + path_ + " reader never ran");
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) {
      CpuRelax();
    }
    const std::uint64_t seq_before =
        __atomic_load_n(&shared_header->sequence, __ATOMIC_ACQUIRE);
    if ((seq_before & 1) != 0) {
      last_error = FailedPreconditionError(
          "shm segment " + path_ + " writer mid-publish (sequence " +
          std::to_string(seq_before) + ")");
      continue;
    }

    ShmSegmentHeader header;
    CopyWordsFromShared(reinterpret_cast<std::uint64_t*>(&header),
                        shared_words, kHeaderWords);
    __atomic_thread_fence(__ATOMIC_ACQUIRE);
    if (__atomic_load_n(&shared_header->sequence, __ATOMIC_RELAXED) !=
        seq_before) {
      last_error = FailedPreconditionError(
          "shm segment " + path_ + " torn header read");
      continue;
    }

    // Header is a stable copy from sequence `seq_before`; geometry errors
    // are now permanent facts about the segment, not races.
    if (header.magic != kShmSegmentMagic) {
      return InvalidArgumentError("shm segment " + path_ + " bad magic");
    }
    if (header.version != kShmSegmentVersion) {
      return InvalidArgumentError(
          "shm segment " + path_ + " schema version " +
          std::to_string(header.version) + " != expected " +
          std::to_string(kShmSegmentVersion));
    }
    if (header.header_bytes != sizeof(ShmSegmentHeader) ||
        header.record_bytes != sizeof(ShmLockRecord) ||
        header.capacity != mapped_capacity ||
        header.lock_count > header.capacity) {
      return InvalidArgumentError("shm segment " + path_ +
                                  " corrupt geometry/lock_count");
    }
    if (header.sequence != seq_before) {
      return InvalidArgumentError("shm segment " + path_ +
                                  " inconsistent sequence field");
    }

    std::vector<ShmLockRecord> records(header.lock_count);
    if (!records.empty()) {
      CopyWordsFromShared(reinterpret_cast<std::uint64_t*>(records.data()),
                          RecordBase(base_),
                          records.size() * kRecordWords);
    }
    __atomic_thread_fence(__ATOMIC_ACQUIRE);
    if (__atomic_load_n(&shared_header->sequence, __ATOMIC_RELAXED) !=
        seq_before) {
      last_error = FailedPreconditionError(
          "shm segment " + path_ + " torn record read");
      continue;
    }

    const std::uint64_t expect = SegmentChecksum(
        header, reinterpret_cast<const std::uint64_t*>(records.data()),
        header.lock_count);
    if (expect != header.checksum) {
      // Sequence was stable across the whole copy, so this is real
      // corruption, not a torn read.
      return InvalidArgumentError("shm segment " + path_ +
                                  " checksum mismatch");
    }

    ShmSegmentSample sample;
    sample.pid = header.pid;
    sample.published_ns = header.published_ns;
    sample.publish_count = header.publish_count;
    sample.locks.resize(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      ShmDecodeRecord(records[i], header.published_ns, sample.locks[i]);
    }
    return sample;
  }
  return last_error;
}

}  // namespace concord
