// Worker-side glue for the multi-process autotune agent: periodically export
// this process's profiled-lock counters into a shared-memory segment
// (ShmSegmentWriter) and register the worker with the host agent over the
// control-plane socket.
//
// A worker that wants fleet-managed policies does three things:
//   1. serves its own control socket (RpcServer) so the agent can push
//      policy.attach / policy.detach,
//   2. runs a ShmExporter so the agent can observe its profiler, and
//   3. calls RegisterWithAgent(pid, shm path, socket path).
// Everything else — regime classification, canarying, promotion — happens in
// the agent (src/concord/agent/fleet.h).

#ifndef SRC_CONCORD_AGENT_WORKER_EXPORT_H_
#define SRC_CONCORD_AGENT_WORKER_EXPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "src/base/status.h"
#include "src/concord/agent/shm_segment.h"

namespace concord {

struct ShmExporterOptions {
  std::string shm_path;
  // Which locks to export: same selector grammar as the Concord facade
  // ("*", "class:<c>", exact name).
  std::string selector = "*";
  // Background publish cadence.
  std::uint64_t period_ms = 5;
  std::uint32_t capacity = kShmSegmentDefaultCapacity;
};

// Snapshots every profiled lock matching the selector and publishes the set
// into the segment. ExportOnce() is the synchronous unit (tests drive it
// directly); Start()/Stop() wrap it in a background thread.
class ShmExporter {
 public:
  static StatusOr<std::unique_ptr<ShmExporter>> Create(
      ShmExporterOptions options);
  ~ShmExporter();

  ShmExporter(const ShmExporter&) = delete;
  ShmExporter& operator=(const ShmExporter&) = delete;

  Status ExportOnce();
  Status Start();
  void Stop();

  const std::string& shm_path() const { return writer_->path(); }

 private:
  explicit ShmExporter(ShmExporterOptions options,
                       std::unique_ptr<ShmSegmentWriter> writer);

  ShmExporterOptions options_;
  std::unique_ptr<ShmSegmentWriter> writer_;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

// Registers this worker with the agent listening on `agent_socket`.
// Idempotent per pid: re-registering replaces the previous entry, so a
// worker restarted with the same pid namespace or retrying a timed-out
// registration is safe. Retries transport errors until `attempts` runs out
// (the worker typically races the agent's startup).
Status RegisterWithAgent(const std::string& agent_socket, std::uint64_t pid,
                         const std::string& shm_path,
                         const std::string& control_socket,
                         std::uint32_t attempts = 20,
                         std::uint64_t retry_delay_ms = 100);

// Deregisters; best-effort (a dead agent is not the worker's problem).
Status LeaveAgent(const std::string& agent_socket, std::uint64_t pid);

}  // namespace concord

#endif  // SRC_CONCORD_AGENT_WORKER_EXPORT_H_
