// Flight-recorder export: turns a collected TraceEvent stream into
//   - Chrome trace-event JSON (loads in Perfetto / chrome://tracing), with
//     matched acquire->acquired wait spans and acquired->release hold spans
//     drawn as complete ("X") events on per-thread tracks, and everything
//     else (park/wake/shuffle/dispatch/budget/quarantine) as instants;
//   - per-lock roll-up summaries for top-style "most contended" views.
//
// Matching is per (thread, lock) and LIFO, consistent with the profiler's
// in-flight slot matching: on recursive acquisition the innermost acquire
// pairs with the innermost acquired/release.

#ifndef SRC_CONCORD_TRACE_EXPORT_H_
#define SRC_CONCORD_TRACE_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/json.h"
#include "src/base/trace.h"
#include "src/bpf/maps.h"

namespace concord {

// Per-lock counters derived purely from an event stream. Wait/hold totals
// only include matched pairs; events whose partner fell out of the ring
// (overwritten) or is still in flight are counted in unmatched_events.
struct TraceLockSummary {
  std::uint64_t lock_id = 0;
  std::uint64_t acquisitions = 0;   // kAcquired events
  std::uint64_t contentions = 0;    // kContended events
  std::uint64_t releases = 0;       // kRelease events
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  std::uint64_t shuffle_rounds = 0;
  std::uint64_t policy_dispatches = 0;
  std::uint64_t budget_trips = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t matched_waits = 0;  // acquire->acquired pairs
  std::uint64_t matched_holds = 0;  // acquired->release pairs
  std::uint64_t total_wait_ns = 0;
  std::uint64_t total_hold_ns = 0;
  std::uint64_t max_wait_ns = 0;
  std::uint64_t max_hold_ns = 0;
  std::uint64_t unmatched_events = 0;
};

// Rolls the stream up per lock id, sorted by total_wait_ns descending
// (most contended first), ties broken by lock id. `events` must be
// ts-sorted, as returned by TraceRegistry::Collect().
std::vector<TraceLockSummary> SummarizeTrace(
    const std::vector<TraceEvent>& events);

// Chrome trace-event JSON: {"displayTimeUnit":"ns","traceEvents":[...]}.
// Timestamps are emitted in microseconds (the format's unit). `lock_names`
// maps lock ids to display names; unmapped ids render as "lock<id>".
std::string ChromeTraceJson(
    const std::vector<TraceEvent>& events,
    const std::map<std::uint64_t, std::string>& lock_names = {});

// Generic policy-map dump, shared by Concord::StatsJson's `policy_maps`
// roll-up, Concord::MapDumpJson and the `map.dump` RPC verb. Emits one
// object per key with a `values` array holding one element per CPU slot
// (one element for single-instance maps) — u64 values as numbers plus a
// cross-CPU `sum`, anything else as hex strings. Relies on ForEach's
// per-CPU contract (same key visited num_cpus times, in CPU order).
void AppendMapDumpJson(JsonWriter& writer, BpfMap& map);

}  // namespace concord

#endif  // SRC_CONCORD_TRACE_EXPORT_H_
