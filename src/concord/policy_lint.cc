#include "src/concord/policy_lint.h"

#include <cstdio>

#include "src/sync/shfllock.h"

namespace concord {
namespace {

std::string U64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

void Finding(LintReport& report, const char* rule, std::string message) {
  report.findings.push_back({rule, std::move(message)});
}

// R0 at exit must be provably inside [0, max_value].
void CheckReturnRange(LintReport& report, const Verifier::Analysis& analysis,
                      std::uint64_t max_value) {
  if (!analysis.has_exit) {
    return;  // unreachable for verified programs; nothing to check
  }
  const ScalarValue& r0 = analysis.r0_exit;
  if (r0.umax > max_value) {
    Finding(report, "return-range",
            "return value not proven in [0, " + U64(max_value) +
                "]: verifier bounds R0 at exit to " + r0.ToString());
  }
}

// Every admitted loop must be proven to finish within `max_trips` trips.
void CheckLoopBound(LintReport& report, const Verifier::Analysis& analysis,
                    std::uint64_t max_trips, const char* why) {
  for (const auto& loop : analysis.loops) {
    if (loop.max_trips > max_trips) {
      Finding(report, "loop-bound",
              "loop with back edge at insn " + U64(loop.back_edge_pc) +
                  " runs up to " + U64(loop.max_trips) + " trips, above the " +
                  U64(max_trips) + "-trip hook bound (" + why + ")");
    }
  }
}

}  // namespace

std::string LintReport::ToString() const {
  std::string out;
  for (const auto& finding : findings) {
    out += finding.rule + ": " + finding.message + "\n";
  }
  return out;
}

LintReport LintPolicyProgram(HookKind kind,
                             const Verifier::Analysis& analysis) {
  LintReport report;
  switch (kind) {
    case HookKind::kCmpNode:
      // The comparator runs once per scanned waiter inside the shuffler's
      // queue walk; it must be a pure decision.
      if (analysis.writes_map) {
        Finding(report, "cmp-node-pure",
                "cmp_node must be pure but calls a map-writing helper");
      }
      if (analysis.writes_ctx) {
        Finding(report, "cmp-node-pure",
                "cmp_node must be pure but writes its context");
      }
      CheckReturnRange(report, analysis, 1);
      CheckLoopBound(report, analysis, ShflLock::kMaxShuffleScan,
                     "cmp_node runs once per scanned waiter");
      break;
    case HookKind::kSkipShuffle:
      CheckReturnRange(report, analysis, 1);
      CheckLoopBound(report, analysis, ShflLock::kShuffleRoundCap,
                     "the lock clamps shuffling rounds at kShuffleRoundCap");
      break;
    case HookKind::kScheduleWaiter:
      CheckReturnRange(report, analysis, 1);
      for (std::size_t pc : analysis.ctx_ptr_across_call_pcs) {
        Finding(report, "waiter-ptr-across-call",
                "waiter context pointer held in a callee-saved register "
                "across the helper call at insn " +
                    U64(pc) + "; helpers may park or requeue the waiter, "
                             "making the pointer stale");
      }
      break;
    case HookKind::kRwMode:
      // RwMode: 0 = neutral, 1 = reader-biased, 2 = writer-biased.
      CheckReturnRange(report, analysis, 2);
      break;
    case HookKind::kLockAcquire:
    case HookKind::kLockContended:
    case HookKind::kLockAcquired:
    case HookKind::kLockRelease:
      // Profiling taps: return value is ignored and runtime budgets contain
      // their cost; nothing to lint statically.
      break;
  }
  return report;
}

Status CheckPolicyProgram(HookKind kind, Program& program, LintReport* report,
                          Verifier::Analysis* analysis) {
  Verifier::Options options;
  options.allowed_capabilities = CapabilitiesFor(kind);
  Verifier::Analysis local_analysis;
  CONCORD_RETURN_IF_ERROR(Verifier::Verify(program, options, &local_analysis));
  LintReport local_report = LintPolicyProgram(kind, local_analysis);
  if (analysis != nullptr) {
    *analysis = local_analysis;
  }
  if (report != nullptr) {
    *report = local_report;
  }
  if (!local_report.ok()) {
    std::string message = "policy violates ";
    message += HookKindName(kind);
    message += " contract:\n";
    message += local_report.ToString();
    // Trim the trailing newline for a tidy Status message.
    message.pop_back();
    return PermissionDeniedError(message);
  }
  return Status::Ok();
}

}  // namespace concord
