#include "src/concord/autotune/controller.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/base/fault.h"
#include "src/base/json.h"
#include "src/base/time.h"
#include "src/concord/concord.h"
#include "src/concord/containment.h"

namespace concord {

const char* AutotuneEventKindName(AutotuneEventKind kind) {
  switch (kind) {
    case AutotuneEventKind::kRegimeChange:
      return "regime-change";
    case AutotuneEventKind::kCanaryStart:
      return "canary-start";
    case AutotuneEventKind::kPromote:
      return "promote";
    case AutotuneEventKind::kRollback:
      return "rollback";
    case AutotuneEventKind::kCanaryAbort:
      return "canary-abort";
    case AutotuneEventKind::kQuarantineExit:
      return "quarantine-exit";
    case AutotuneEventKind::kError:
      return "error";
  }
  return "unknown";
}

bool CanaryPromotes(const CanaryScore& score, double margin) {
  const double base_p99 = static_cast<double>(score.baseline_p99_ns);
  const double base_p50 = static_cast<double>(score.baseline_p50_ns);
  const bool p99_improves =
      static_cast<double>(score.canary_p99_ns) < base_p99 * (1.0 - margin);
  const bool p99_holds =
      static_cast<double>(score.canary_p99_ns) <= base_p99;
  const bool p50_improves =
      static_cast<double>(score.canary_p50_ns) < base_p50 * (1.0 - margin);
  return p99_improves || (p99_holds && p50_improves);
}

std::string CanaryScoreDetail(const CanaryScore& score) {
  return "p50 " + std::to_string(score.baseline_p50_ns) + "->" +
         std::to_string(score.canary_p50_ns) + "ns, p99 " +
         std::to_string(score.baseline_p99_ns) + "->" +
         std::to_string(score.canary_p99_ns) + "ns";
}

AutotuneController& AutotuneController::Global() {
  static AutotuneController* instance = new AutotuneController();
  return *instance;
}

Status AutotuneController::Configure(const AutotuneConfig& config) {
  if (running()) {
    return FailedPreconditionError("autotune: stop the controller first");
  }
  std::lock_guard<std::mutex> guard(mu_);
  config_ = config;
  if (!seeded_) {
    if (config_.seed_builtins) {
      registry_.SeedBuiltins();
    }
    if (!config_.policy_dir.empty()) {
      registry_.SeedFromPolicyDir(config_.policy_dir);
    }
    seeded_ = true;
  }
  return Status::Ok();
}

void AutotuneController::SetClassifier(
    std::unique_ptr<RegimeClassifier> classifier) {
  std::lock_guard<std::mutex> guard(mu_);
  classifier_ = std::move(classifier);
}

ContentionRegime AutotuneController::ClassifyLocked(
    const RegimeSignals& signals) const {
  if (classifier_ != nullptr) {
    return classifier_->Classify(signals);
  }
  return DefaultRegimeClassifier(config_.classifier).Classify(signals);
}

Status AutotuneController::Enroll(std::uint64_t lock_id) {
  auto& concord = Concord::Global();
  const auto infos = concord.ListLocks("*");
  const Concord::LockInfo* info = nullptr;
  for (const auto& candidate : infos) {
    if (candidate.lock_id == lock_id) {
      info = &candidate;
      break;
    }
  }
  if (info == nullptr) {
    return NotFoundError("autotune: unknown lock id");
  }
  CONCORD_RETURN_IF_ERROR(concord.EnableProfiling(lock_id));

  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& state : locks_) {
    if (state->lock_id == lock_id) {
      return Status::Ok();  // already enrolled
    }
  }
  auto state = std::make_unique<LockState>();
  state->lock_id = lock_id;
  state->name = info->name;
  state->is_rw = info->is_rw;
  state->hysteresis = RegimeHysteresis(config_.hysteresis_windows);
  // A manually attached policy becomes the incumbent so a rollback restores
  // it rather than silently detaching the operator's choice.
  if (info->has_policy && !info->policy_name.empty() &&
      registry_.FindByName(info->policy_name).ok()) {
    state->incumbent = info->policy_name;
  }
  locks_.push_back(std::move(state));
  return Status::Ok();
}

Status AutotuneController::EnrollSelector(const std::string& selector) {
  const auto ids = Concord::Global().Select(selector);
  if (ids.empty()) {
    return NotFoundError("autotune: selector '" + selector +
                         "' matched no locks");
  }
  for (const std::uint64_t id : ids) {
    CONCORD_RETURN_IF_ERROR(Enroll(id));
  }
  return Status::Ok();
}

Status AutotuneController::Unenroll(std::uint64_t lock_id,
                                    bool detach_policy) {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto it = locks_.begin(); it != locks_.end(); ++it) {
    if ((*it)->lock_id != lock_id) {
      continue;
    }
    locks_.erase(it);
    lock.unlock();
    if (detach_policy) {
      (void)Concord::Global().Detach(lock_id);  // ok if nothing attached
    }
    return Status::Ok();
  }
  return NotFoundError("autotune: lock not enrolled");
}

std::vector<std::uint64_t> AutotuneController::Enrolled() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::uint64_t> ids;
  ids.reserve(locks_.size());
  for (const auto& state : locks_) {
    ids.push_back(state->lock_id);
  }
  return ids;
}

Status AutotuneController::SetSignalProbe(
    std::uint64_t lock_id, std::function<double()> reader_fraction) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& state : locks_) {
    if (state->lock_id == lock_id) {
      state->reader_fraction = std::move(reader_fraction);
      return Status::Ok();
    }
  }
  return NotFoundError("autotune: lock not enrolled");
}

void AutotuneController::EmitLocked(AutotuneEvent event,
                                    std::vector<AutotuneEvent>& events) {
  events_.push_back(event);
  while (events_.size() > kMaxEvents) {
    events_.pop_front();
  }
  events.push_back(std::move(event));
}

void AutotuneController::AddSkipLocked(LockState& state,
                                       const std::string& name) {
  if (name == kPlainCandidateName) {
    return;  // plain is always available
  }
  for (SkipEntry& entry : state.skip) {
    if (entry.name == name) {
      entry.windows_left = config_.failed_candidate_backoff_windows;
      return;
    }
  }
  state.skip.push_back({name, config_.failed_candidate_backoff_windows});
}

bool AutotuneController::IsSkippedLocked(const LockState& state,
                                         const std::string& name) const {
  for (const SkipEntry& entry : state.skip) {
    if (entry.name == name && entry.windows_left > 0) {
      return true;
    }
  }
  return false;
}

Status AutotuneController::ApplyCandidateLocked(LockState& state,
                                                const std::string& name) {
  auto& concord = Concord::Global();
  if (name == kPlainCandidateName) {
    const Status status = concord.Detach(state.lock_id);
    // "no policy attached" counts as success: the goal state is plain.
    if (!status.ok() && !concord.AttachedPolicyName(state.lock_id).empty()) {
      return status;
    }
    return Status::Ok();
  }
  auto candidate = registry_.FindByName(name);
  CONCORD_RETURN_IF_ERROR(candidate.status());
  auto spec = candidate->make();
  CONCORD_RETURN_IF_ERROR(spec.status());
  return concord.Attach(state.lock_id, std::move(*spec));
}

void AutotuneController::StartCanaryLocked(
    LockState& state, const PolicyCandidate& candidate, std::uint64_t now_ns,
    std::vector<AutotuneEvent>& events) {
  const Status status = ApplyCandidateLocked(state, candidate.name);
  if (!status.ok()) {
    AddSkipLocked(state, candidate.name);
    EmitLocked({now_ns, state.lock_id, state.name, AutotuneEventKind::kError,
                state.hysteresis.stable(), candidate.name,
                "canary attach failed: " + status.message()},
               events);
    return;
  }
  state.mode = Mode::kCanary;
  state.canary_candidate = candidate.name;
  state.canary_wait.Reset();
  state.canary_scored = 0;
  state.canary_total = 0;
  EmitLocked({now_ns, state.lock_id, state.name,
              AutotuneEventKind::kCanaryStart, state.hysteresis.stable(),
              candidate.name, ""},
             events);
}

void AutotuneController::FinishCanaryLocked(
    LockState& state, bool promote, AutotuneEventKind kind,
    const std::string& detail, std::uint64_t now_ns,
    std::vector<AutotuneEvent>& events) {
  const std::string candidate = state.canary_candidate;
  state.mode = Mode::kObserving;
  state.canary_candidate.clear();
  state.canary_wait.Reset();
  state.canary_scored = 0;
  state.canary_total = 0;
  state.cooldown = config_.cooldown_windows;

  if (promote) {
    state.incumbent = candidate;
    EmitLocked({now_ns, state.lock_id, state.name, kind,
                state.hysteresis.stable(), candidate, detail},
               events);
    return;
  }

  AddSkipLocked(state, candidate);
  const Status status = ApplyCandidateLocked(state, state.incumbent);
  if (!status.ok()) {
    // Restoring the incumbent failed; fall back to plain, which cannot fail
    // meaningfully (detach of nothing is a no-op).
    (void)ApplyCandidateLocked(state, kPlainCandidateName);
    state.incumbent = kPlainCandidateName;
  }
  EmitLocked({now_ns, state.lock_id, state.name, kind,
              state.hysteresis.stable(), candidate, detail},
             events);
}

void AutotuneController::TickLockLocked(LockState& state,
                                        std::uint64_t now_ns,
                                        std::vector<AutotuneEvent>& events) {
  auto& concord = Concord::Global();
  const ShardedLockProfileStats* stats = concord.Stats(state.lock_id);
  if (stats == nullptr) {
    return;  // lock unregistered or profiling disabled behind our back
  }

  // Sample: this window's delta.
  const LockProfileSnapshot snapshot = stats->Snapshot();
  if (!state.have_snapshot) {
    state.last_snapshot = snapshot;
    state.have_snapshot = true;
    return;
  }
  const LockProfileSnapshot window = snapshot.DeltaSince(state.last_snapshot);
  state.last_snapshot = snapshot;

  // Containment outranks everything: a quarantined lock gets no decisions,
  // and a canary is rolled back the moment the policy looks suspect.
  const PolicyHealth health = ContainmentRegistry::Global().HealthOf(state.lock_id);
  if (state.mode == Mode::kCanary &&
      (health == PolicyHealth::kSuspect ||
       health == PolicyHealth::kQuarantined ||
       health == PolicyHealth::kBlacklisted)) {
    FinishCanaryLocked(state, /*promote=*/false, AutotuneEventKind::kRollback,
                       "containment health degraded during canary", now_ns,
                       events);
    return;
  }
  if (state.mode == Mode::kObserving &&
      state.incumbent != kPlainCandidateName &&
      (health == PolicyHealth::kQuarantined ||
       health == PolicyHealth::kBlacklisted)) {
    const std::string quarantined = state.incumbent;
    AddSkipLocked(state, quarantined);
    state.incumbent = kPlainCandidateName;
    state.cooldown = config_.cooldown_windows;
    // Containment already detached the hooks; Detach clears the parked spec
    // so probation cannot resurrect a policy the tuner has given up on.
    (void)concord.Detach(state.lock_id);
    EmitLocked({now_ns, state.lock_id, state.name,
                AutotuneEventKind::kQuarantineExit, state.hysteresis.stable(),
                quarantined, "containment quarantined the promoted policy"},
               events);
    return;
  }

  // Chaos hook: an armed "autotune.decide" fault wedges this lock's decision
  // step for the tick. Sampling above already happened — a wedged controller
  // loses decisions, never attachment-state consistency.
  if (CONCORD_FAULT_POINT("autotune.decide")) {
    return;
  }

  const bool window_qualifies =
      window.acquisitions >= config_.min_window_acquisitions;

  // Classify (observation windows only — canary windows measure, not steer).
  if (state.mode == Mode::kObserving && window_qualifies) {
    RegimeSignals signals = RegimeSignals::FromWindow(window, state.is_rw);
    if (state.reader_fraction) {
      signals.reader_fraction = state.reader_fraction();
    }
    const ContentionRegime before = state.hysteresis.stable();
    const ContentionRegime stable =
        state.hysteresis.Observe(ClassifyLocked(signals));
    if (stable != before) {
      EmitLocked({now_ns, state.lock_id, state.name,
                  AutotuneEventKind::kRegimeChange, stable, "",
                  std::string("from ") + ContentionRegimeName(before)},
                 events);
    }
    state.baseline_p50_ns = window.wait_ns.Percentile(50);
    state.baseline_p99_ns = window.wait_ns.Percentile(99);
    state.have_baseline = true;
  }

  // Decay per-window counters.
  for (SkipEntry& entry : state.skip) {
    if (entry.windows_left > 0) {
      --entry.windows_left;
    }
  }
  if (state.cooldown > 0) {
    --state.cooldown;
    return;
  }

  if (state.mode == Mode::kCanary) {
    ++state.canary_total;
    if (window_qualifies) {
      state.canary_wait.MergeFrom(window.wait_ns);
      ++state.canary_scored;
    }
    if (state.canary_scored < config_.canary_windows) {
      if (state.canary_total >= config_.canary_windows * kCanaryPatience) {
        FinishCanaryLocked(state, /*promote=*/false,
                           AutotuneEventKind::kCanaryAbort,
                           "canary starved of samples", now_ns, events);
      }
      return;
    }
    // Verdict.
    const CanaryScore score = {state.baseline_p50_ns, state.baseline_p99_ns,
                               state.canary_wait.Percentile(50),
                               state.canary_wait.Percentile(99)};
    const bool promote = CanaryPromotes(score, config_.promote_margin);
    const std::string detail = CanaryScoreDetail(score);
    FinishCanaryLocked(state, promote,
                       promote ? AutotuneEventKind::kPromote
                               : AutotuneEventKind::kRollback,
                       detail, now_ns, events);
    return;
  }

  // Observing, no cooldown: act if the stable regime wants a different
  // policy than the incumbent.
  const ContentionRegime stable = state.hysteresis.stable();
  const std::vector<std::string> skip = [&] {
    std::vector<std::string> names;
    for (const SkipEntry& entry : state.skip) {
      if (entry.windows_left > 0) {
        names.push_back(entry.name);
      }
    }
    return names;
  }();
  const PolicyCandidate target =
      registry_.CandidateFor(stable, state.is_rw, skip);
  if (target.name == state.incumbent) {
    return;
  }
  if (target.IsPlain()) {
    // Reverting to plain needs no canary: detaching is always safe and an
    // uncontended lock produces no samples to score anyway.
    const Status status = ApplyCandidateLocked(state, kPlainCandidateName);
    if (status.ok()) {
      const std::string previous = state.incumbent;
      state.incumbent = kPlainCandidateName;
      state.cooldown = config_.cooldown_windows;
      EmitLocked({now_ns, state.lock_id, state.name,
                  AutotuneEventKind::kPromote, stable, kPlainCandidateName,
                  "reverted from " + previous},
                 events);
    }
    return;
  }
  if (!state.have_baseline || !window_qualifies) {
    return;  // no baseline to score a canary against yet
  }
  StartCanaryLocked(state, target, now_ns, events);
}

std::vector<AutotuneEvent> AutotuneController::Tick() {
  std::vector<AutotuneEvent> events;
  const std::uint64_t now_ns = ClockNowNs();
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& state : locks_) {
    TickLockLocked(*state, now_ns, events);
  }
  return events;
}

Status AutotuneController::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return FailedPreconditionError("autotune: already running");
  }
  {
    std::lock_guard<std::mutex> guard(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { ThreadMain(); });
  return Status::Ok();
}

void AutotuneController::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  {
    std::lock_guard<std::mutex> guard(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void AutotuneController::ThreadMain() {
  while (running_.load(std::memory_order_acquire)) {
    (void)Tick();
    std::unique_lock<std::mutex> lock(stop_mu_);
    const std::uint64_t window_ns = [this] {
      std::lock_guard<std::mutex> guard(mu_);
      return config_.window_ns;
    }();
    stop_cv_.wait_for(lock, std::chrono::nanoseconds(window_ns),
                      [this] { return stop_requested_; });
  }
}

std::string AutotuneController::StatusJson() const {
  std::lock_guard<std::mutex> guard(mu_);
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("running").Bool(running_.load(std::memory_order_acquire));
  writer.NumberField("window_ns", config_.window_ns);
  writer.Key("candidates").BeginArray();
  for (const std::string& name : registry_.Names()) {
    writer.String(name);
  }
  writer.EndArray();
  writer.Key("locks").BeginArray();
  for (const auto& state : locks_) {
    writer.BeginObject();
    writer.NumberField("lock_id", state->lock_id);
    writer.Field("name", state->name);
    writer.Field("regime", ContentionRegimeName(state->hysteresis.stable()));
    writer.Field("mode",
                 state->mode == Mode::kCanary ? "canary" : "observing");
    writer.Field("incumbent", state->incumbent);
    writer.NumberField("cooldown_windows", state->cooldown);
    if (state->mode == Mode::kCanary) {
      writer.Key("canary").BeginObject();
      writer.Field("candidate", state->canary_candidate);
      writer.NumberField("scored_windows", state->canary_scored);
      writer.NumberField("total_windows", state->canary_total);
      writer.NumberField("baseline_wait_p50_ns", state->baseline_p50_ns);
      writer.NumberField("baseline_wait_p99_ns", state->baseline_p99_ns);
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("events").BeginArray();
  for (const AutotuneEvent& event : events_) {
    writer.BeginObject();
    writer.NumberField("ts_ns", event.ts_ns);
    writer.NumberField("lock_id", event.lock_id);
    writer.Field("lock", event.lock_name);
    writer.Field("kind", AutotuneEventKindName(event.kind));
    writer.Field("regime", ContentionRegimeName(event.regime));
    writer.Field("candidate", event.candidate);
    writer.Field("detail", event.detail);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

std::vector<AutotuneEvent> AutotuneController::RecentEvents(
    std::size_t max) const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<AutotuneEvent> events;
  const std::size_t count = std::min(max, events_.size());
  events.insert(events.end(), events_.end() - count, events_.end());
  return events;
}

void AutotuneController::ResetForTest() {
  Stop();
  std::lock_guard<std::mutex> guard(mu_);
  locks_.clear();
  events_.clear();
  registry_.Clear();
  classifier_.reset();
  config_ = AutotuneConfig{};
  seeded_ = false;
}

}  // namespace concord
