// Candidate policy registry — the "act" vocabulary of the autotune control
// plane: which verified policy should a lock in a given contention regime
// try next?
//
// Candidates are *factories*, not specs: every canary attach assembles (and
// re-verifies, at Concord::Attach) a fresh PolicySpec, so a candidate can be
// attached, rolled back and re-attached without spec-copying hazards. The
// registry ships built-ins wired to the ready-made policies in
// src/concord/policies.h and can additionally load .casm files from
// examples/policies/ (regime inferred from the filename, hook kind from the
// "; hook:" header line every shipped policy carries).
//
// The implicit "plain" candidate — detach, reverting the lock to stock
// behaviour — is always available and is the fallback whenever no registered
// candidate fits a (regime, lock kind) pair.

#ifndef SRC_CONCORD_AUTOTUNE_CANDIDATES_H_
#define SRC_CONCORD_AUTOTUNE_CANDIDATES_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/concord/autotune/regime.h"
#include "src/concord/policy.h"

namespace concord {

struct PolicyCandidate {
  std::string name;
  ContentionRegime regime = ContentionRegime::kModerate;
  // rw_mode policies attach only to rw locks; queue policies (cmp_node,
  // skip_shuffle, schedule_waiter) only to ShflLocks.
  bool for_rw = false;
  // Null for the "plain" candidate (detach instead of attach).
  std::function<StatusOr<PolicySpec>()> make;

  bool IsPlain() const { return make == nullptr; }
};

// The canonical name of the detach candidate.
inline constexpr char kPlainCandidateName[] = "plain";

// Filename -> regime inference for .casm policy directories ("numa" ->
// numa-skewed, "backoff" -> pathological, "batch" -> moderate). Shared by
// SeedFromPolicyDir and the fleet agent's candidate seeding
// (src/concord/agent/fleet.h).
bool RegimeFromPolicyFilename(const std::string& stem, ContentionRegime* out);

class PolicyCandidateRegistry {
 public:
  PolicyCandidateRegistry() = default;

  // Registers `candidate`, replacing any existing candidate with the same
  // name. The name "plain" is reserved.
  Status Register(PolicyCandidate candidate);

  // Ready-made policies from src/concord/policies.h:
  //   numa-skewed  -> numa_grouping            (cmp_node socket grouping)
  //   pathological -> shuffle_fairness_guard   (bounds shuffler reordering)
  //   reader-heavy -> rw_reader_bias           (rw_mode = BRAVO reader bias)
  // Uncontended and moderate keep the implicit "plain" candidate.
  void SeedBuiltins();

  // Loads every .casm under `dir`: hook kind from the "; hook: <name>"
  // header, regime from the filename ("numa" -> numa-skewed, "backoff" ->
  // pathological, "batch" -> moderate). Files matching neither rule, or that
  // fail to assemble, are skipped. Returns how many candidates registered.
  int SeedFromPolicyDir(const std::string& dir);

  // Preferred candidate for a lock of the given kind in `regime`; falls back
  // to the plain candidate when nothing registered fits. `skip` names
  // candidates to pass over (recently rolled back). Never returns null.
  PolicyCandidate CandidateFor(ContentionRegime regime, bool is_rw,
                               const std::vector<std::string>& skip = {}) const;

  // Candidate by name ("plain" included); null-make plain candidate when
  // unknown? No: error for unknown names.
  StatusOr<PolicyCandidate> FindByName(const std::string& name) const;

  std::vector<std::string> Names() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<PolicyCandidate> candidates_;
};

}  // namespace concord

#endif  // SRC_CONCORD_AUTOTUNE_CANDIDATES_H_
