// Contention-regime classification — the "observe" half of the autotune
// control plane (docs/AUTOTUNE.md).
//
// The paper's thesis is that the right lock policy depends on the context a
// deployment actually sees; this module names the contexts. Each profiling
// window of a lock is reduced to a RegimeSignals block (rates, wait
// percentiles, NUMA spread) and classified into one of five regimes. The
// classifier is pluggable — the default is a threshold classifier whose
// knobs live in ClassifierConfig — and its raw per-window verdicts are
// debounced by RegimeHysteresis so one noisy window cannot flip a policy.

#ifndef SRC_CONCORD_AUTOTUNE_REGIME_H_
#define SRC_CONCORD_AUTOTUNE_REGIME_H_

#include <cstdint>

#include "src/concord/profiler.h"

namespace concord {

enum class ContentionRegime : std::uint8_t {
  kUncontended,   // fast-path acquisitions; any policy is pure overhead
  kModerate,      // real contention, no structural pattern
  kNumaSkewed,    // contended handoffs bounce between sockets
  kReaderHeavy,   // rw lock dominated by readers
  kPathological,  // starvation-grade tails or near-total contention
};
inline constexpr int kNumContentionRegimes = 5;

const char* ContentionRegimeName(ContentionRegime regime);

// What one profiling window of one lock looks like to the classifier.
// Computed from a LockProfileSnapshot delta by FromWindow; tests feed
// synthetic values directly.
struct RegimeSignals {
  double acquisitions_per_sec = 0.0;
  std::uint64_t window_acquisitions = 0;
  double contention_rate = 0.0;   // contended / acquisitions
  std::uint64_t wait_p50_ns = 0;  // contended acquisitions only
  std::uint64_t wait_p99_ns = 0;
  std::uint64_t hold_p50_ns = 0;
  std::uint32_t active_sockets = 0;  // sockets with >=10% of acquisitions
  double cross_socket_rate = 0.0;    // cross-socket handoffs / contentions
  double reader_fraction = 0.0;      // rw locks: read share (probe-supplied)
  bool is_rw = false;

  static RegimeSignals FromWindow(const LockProfileSnapshot& window,
                                  bool is_rw);
};

struct ClassifierConfig {
  // Below this contention rate the lock counts as uncontended.
  double uncontended_max_rate = 0.05;

  // Pathological when the contention rate reaches this...
  double pathological_min_rate = 0.95;
  // ...or the p99 wait reaches this (starvation-grade tail).
  std::uint64_t pathological_wait_p99_ns = 50'000'000;  // 50ms

  // NUMA-skewed needs real contention, at least this many active sockets,
  // and contended grants crossing sockets at this rate.
  double numa_min_contention = 0.10;
  std::uint32_t numa_min_sockets = 2;
  double numa_min_cross_rate = 0.25;

  // Reader-heavy (rw locks only): read share beyond this.
  double reader_heavy_min_fraction = 0.75;
};

class RegimeClassifier {
 public:
  virtual ~RegimeClassifier() = default;

  // Raw classification of one window; no memory between calls.
  virtual ContentionRegime Classify(const RegimeSignals& signals) const = 0;
};

// Threshold classifier. Precedence: pathological > reader-heavy >
// NUMA-skewed > uncontended > moderate — the more specific (and more
// actionable) regimes win.
class DefaultRegimeClassifier : public RegimeClassifier {
 public:
  explicit DefaultRegimeClassifier(ClassifierConfig config = {})
      : config_(config) {}

  ContentionRegime Classify(const RegimeSignals& signals) const override;

  const ClassifierConfig& config() const { return config_; }

 private:
  ClassifierConfig config_;
};

// Debounce: the stable regime changes only after `windows_required`
// consecutive raw verdicts agree on the same new regime. A verdict matching
// the stable regime resets any pending switch.
class RegimeHysteresis {
 public:
  explicit RegimeHysteresis(std::uint32_t windows_required = 2)
      : required_(windows_required == 0 ? 1 : windows_required) {}

  // Feeds one raw verdict; returns the (possibly updated) stable regime.
  ContentionRegime Observe(ContentionRegime raw);

  ContentionRegime stable() const { return stable_; }

 private:
  std::uint32_t required_;
  ContentionRegime stable_ = ContentionRegime::kUncontended;
  ContentionRegime pending_ = ContentionRegime::kUncontended;
  std::uint32_t pending_count_ = 0;
};

}  // namespace concord

#endif  // SRC_CONCORD_AUTOTUNE_REGIME_H_
