#include "src/concord/autotune/candidates.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/base/check.h"
#include "src/bpf/analysis/certify.h"
#include "src/bpf/assembler.h"
#include "src/concord/hooks.h"
#include "src/concord/policies.h"
#include "src/concord/policy_lint.h"
#include "src/concord/policy_source.h"

namespace concord {
namespace {

PolicyCandidate PlainCandidate(ContentionRegime regime) {
  PolicyCandidate plain;
  plain.name = kPlainCandidateName;
  plain.regime = regime;
  plain.make = nullptr;
  return plain;
}

}  // namespace

// Conservative: only patterns with an obvious regime mapping load;
// everything else is skipped rather than guessed wrong.
bool RegimeFromPolicyFilename(const std::string& stem, ContentionRegime* out) {
  if (stem.find("numa") != std::string::npos) {
    *out = ContentionRegime::kNumaSkewed;
    return true;
  }
  if (stem.find("backoff") != std::string::npos) {
    *out = ContentionRegime::kPathological;
    return true;
  }
  if (stem.find("batch") != std::string::npos) {
    *out = ContentionRegime::kModerate;
    return true;
  }
  return false;
}

Status PolicyCandidateRegistry::Register(PolicyCandidate candidate) {
  if (candidate.name.empty() || candidate.name == kPlainCandidateName) {
    return InvalidArgumentError("candidate name '" + candidate.name +
                                "' is reserved");
  }
  std::lock_guard<std::mutex> guard(mu_);
  for (PolicyCandidate& existing : candidates_) {
    if (existing.name == candidate.name) {
      existing = std::move(candidate);
      return Status::Ok();
    }
  }
  candidates_.push_back(std::move(candidate));
  return Status::Ok();
}

void PolicyCandidateRegistry::SeedBuiltins() {
  PolicyCandidate numa;
  numa.name = "numa_grouping";
  numa.regime = ContentionRegime::kNumaSkewed;
  numa.make = []() -> StatusOr<PolicySpec> {
    auto policy = MakeNumaGroupingPolicy();
    CONCORD_RETURN_IF_ERROR(policy.status());
    return std::move(policy->spec);
  };
  CONCORD_CHECK(Register(std::move(numa)).ok());

  PolicyCandidate guard;
  guard.name = "shuffle_fairness_guard";
  guard.regime = ContentionRegime::kPathological;
  guard.make = []() -> StatusOr<PolicySpec> {
    auto policy = MakeShuffleFairnessGuard();
    CONCORD_RETURN_IF_ERROR(policy.status());
    return std::move(policy->spec);
  };
  CONCORD_CHECK(Register(std::move(guard)).ok());

  PolicyCandidate reader_bias;
  reader_bias.name = "rw_reader_bias";
  reader_bias.regime = ContentionRegime::kReaderHeavy;
  reader_bias.for_rw = true;
  reader_bias.make = []() -> StatusOr<PolicySpec> {
    auto policy = MakeRwSwitchPolicy(RwMode::kReaderBias);
    CONCORD_RETURN_IF_ERROR(policy.status());
    policy->spec.name = "rw_reader_bias";
    return std::move(policy->spec);
  };
  CONCORD_CHECK(Register(std::move(reader_bias)).ok());
}

int PolicyCandidateRegistry::SeedFromPolicyDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return 0;
  }
  int registered = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file() || entry.path().extension() != ".casm") {
      continue;
    }
    std::ifstream file(entry.path());
    if (!file) {
      continue;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const std::string source = buffer.str();
    ContentionRegime regime;
    const std::string stem = entry.path().stem().string();
    auto hook_kind = ResolveHookDirective(source);
    if (!hook_kind.ok() || !RegimeFromPolicyFilename(stem, &regime)) {
      continue;
    }
    const HookKind hook = *hook_kind;
    // An optional `; budget_ns: <N>` directive becomes the candidate spec's
    // hook budget; a malformed one disqualifies the file.
    std::uint64_t budget_ns = 0;
    auto budget = ResolveBudgetDirective(source);
    if (budget.ok()) {
      budget_ns = *budget;
    } else if (budget.status().code() != StatusCode::kNotFound) {
      continue;
    }
    // Assemble and run the full admission pipeline (verify + lint + certify)
    // once now, so an uncertifiable file never becomes a candidate the
    // controller would repeatedly fail to attach. The candidate factory
    // re-assembles per attach (programs are cheap to build and the spec must
    // be fresh each time).
    std::vector<std::shared_ptr<BpfMap>> probe_maps;
    auto probe =
        AssembleProgram(stem, source, &DescriptorFor(hook), {}, &probe_maps);
    if (!probe.ok()) {
      continue;
    }
    Verifier::Analysis analysis;
    if (!CheckPolicyProgram(hook, *probe, nullptr, &analysis).ok() ||
        !CertifyProgram(*probe, analysis, budget_ns).ok()) {
      continue;
    }
    PolicyCandidate candidate;
    candidate.name = stem;
    candidate.regime = regime;
    candidate.for_rw = hook == HookKind::kRwMode;
    candidate.make = [stem, source, hook, budget_ns]() -> StatusOr<PolicySpec> {
      std::vector<std::shared_ptr<BpfMap>> declared_maps;
      auto program = AssembleProgram(stem, source, &DescriptorFor(hook), {},
                                     &declared_maps);
      CONCORD_RETURN_IF_ERROR(program.status());
      PolicySpec spec;
      spec.name = stem;
      spec.hook_budget_ns = budget_ns;
      CONCORD_RETURN_IF_ERROR(spec.AddProgram(hook, std::move(*program)));
      spec.maps = std::move(declared_maps);
      return spec;
    };
    if (Register(std::move(candidate)).ok()) {
      ++registered;
    }
  }
  return registered;
}

PolicyCandidate PolicyCandidateRegistry::CandidateFor(
    ContentionRegime regime, bool is_rw,
    const std::vector<std::string>& skip) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (const PolicyCandidate& candidate : candidates_) {
    if (candidate.regime != regime || candidate.for_rw != is_rw) {
      continue;
    }
    bool skipped = false;
    for (const std::string& name : skip) {
      if (name == candidate.name) {
        skipped = true;
        break;
      }
    }
    if (!skipped) {
      return candidate;
    }
  }
  return PlainCandidate(regime);
}

StatusOr<PolicyCandidate> PolicyCandidateRegistry::FindByName(
    const std::string& name) const {
  if (name == kPlainCandidateName) {
    return PlainCandidate(ContentionRegime::kModerate);
  }
  std::lock_guard<std::mutex> guard(mu_);
  for (const PolicyCandidate& candidate : candidates_) {
    if (candidate.name == name) {
      return candidate;
    }
  }
  return NotFoundError("no candidate named '" + name + "'");
}

std::vector<std::string> PolicyCandidateRegistry::Names() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> names;
  names.reserve(candidates_.size() + 1);
  names.push_back(kPlainCandidateName);
  for (const PolicyCandidate& candidate : candidates_) {
    names.push_back(candidate.name);
  }
  return names;
}

void PolicyCandidateRegistry::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  candidates_.clear();
}

}  // namespace concord
