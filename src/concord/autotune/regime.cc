#include "src/concord/autotune/regime.h"

namespace concord {

const char* ContentionRegimeName(ContentionRegime regime) {
  switch (regime) {
    case ContentionRegime::kUncontended:
      return "uncontended";
    case ContentionRegime::kModerate:
      return "moderate";
    case ContentionRegime::kNumaSkewed:
      return "numa-skewed";
    case ContentionRegime::kReaderHeavy:
      return "reader-heavy";
    case ContentionRegime::kPathological:
      return "pathological";
  }
  return "unknown";
}

RegimeSignals RegimeSignals::FromWindow(const LockProfileSnapshot& window,
                                        bool is_rw) {
  RegimeSignals signals;
  signals.window_acquisitions = window.acquisitions;
  signals.acquisitions_per_sec = window.AcquisitionsPerSec();
  signals.contention_rate = window.ContentionRate();
  signals.wait_p50_ns = window.wait_ns.Percentile(50);
  signals.wait_p99_ns = window.wait_ns.Percentile(99);
  signals.hold_p50_ns = window.hold_ns.Percentile(50);
  signals.active_sockets = window.ActiveSockets();
  signals.cross_socket_rate =
      window.contentions == 0
          ? 0.0
          : static_cast<double>(window.cross_socket_handoffs) /
                static_cast<double>(window.contentions);
  signals.is_rw = is_rw;
  return signals;
}

ContentionRegime DefaultRegimeClassifier::Classify(
    const RegimeSignals& signals) const {
  if (signals.contention_rate >= config_.pathological_min_rate ||
      signals.wait_p99_ns >= config_.pathological_wait_p99_ns) {
    return ContentionRegime::kPathological;
  }
  if (signals.is_rw &&
      signals.reader_fraction >= config_.reader_heavy_min_fraction) {
    return ContentionRegime::kReaderHeavy;
  }
  if (!signals.is_rw &&
      signals.contention_rate >= config_.numa_min_contention &&
      signals.active_sockets >= config_.numa_min_sockets &&
      signals.cross_socket_rate >= config_.numa_min_cross_rate) {
    return ContentionRegime::kNumaSkewed;
  }
  if (signals.contention_rate <= config_.uncontended_max_rate) {
    return ContentionRegime::kUncontended;
  }
  return ContentionRegime::kModerate;
}

ContentionRegime RegimeHysteresis::Observe(ContentionRegime raw) {
  if (raw == stable_) {
    pending_count_ = 0;
    return stable_;
  }
  if (raw == pending_) {
    ++pending_count_;
  } else {
    pending_ = raw;
    pending_count_ = 1;
  }
  if (pending_count_ >= required_) {
    stable_ = pending_;
    pending_count_ = 0;
  }
  return stable_;
}

}  // namespace concord
