// Autotune controller — the decision loop of the adaptive policy control
// plane (docs/AUTOTUNE.md).
//
// One background thread (or an explicit Tick() from tests) walks every
// enrolled lock once per window:
//
//   sample   take a profiler Snapshot(), diff it against the previous one
//            (src/concord/profiler.h) to get this window's delta
//   classify reduce the delta to RegimeSignals and run the pluggable
//            classifier; debounce the verdict with RegimeHysteresis
//   act      when the stable regime disagrees with the attached policy, pick
//            a candidate from the registry and start a *canary*: attach it,
//            score p50/p99 wait over the next canary_windows windows against
//            the pre-canary baseline, and either promote (keep it) or roll
//            back to the incumbent
//
// Rollback is also forced — mid-canary — by any containment transition of
// the lock to SUSPECT or QUARANTINED, and a promoted policy that later gets
// QUARANTINED is detached and its candidate back-offed. The controller never
// fights the containment layer: containment always wins.
//
// Lock ordering: controller mu_ -> Concord mu_ (same direction as
// containment -> Concord; nothing calls back into the controller from
// inside Concord).
//
// The decision step per lock is guarded by the fault point
// "autotune.decide" (src/base/fault.h): when armed and firing, that lock's
// decision is skipped for the tick — the chaos harness uses this to prove a
// wedged controller cannot corrupt attachment state.

#ifndef SRC_CONCORD_AUTOTUNE_CONTROLLER_H_
#define SRC_CONCORD_AUTOTUNE_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/concord/autotune/candidates.h"
#include "src/concord/autotune/regime.h"
#include "src/concord/profiler.h"

namespace concord {

struct AutotuneConfig {
  // Sampling window; also the background thread's tick period.
  std::uint64_t window_ns = 100'000'000;  // 100ms

  // Consecutive agreeing windows before the stable regime flips.
  std::uint32_t hysteresis_windows = 2;

  // Scoring windows a canary must accumulate before the promote/rollback
  // verdict. Windows with fewer than min_window_acquisitions samples don't
  // count; a canary that can't collect its windows within
  // canary_windows * kCanaryPatience total windows is aborted (rolled back).
  std::uint32_t canary_windows = 3;
  std::uint64_t min_window_acquisitions = 64;

  // Promote iff canary p99 improves by this fraction, or p99 holds and p50
  // improves by it.
  double promote_margin = 0.05;

  // Windows after a promote/rollback during which no new canary starts.
  std::uint32_t cooldown_windows = 5;

  // Windows a rolled-back candidate stays on the lock's skip list.
  std::uint32_t failed_candidate_backoff_windows = 20;

  ClassifierConfig classifier;

  // Seed the candidate registry with the built-in policies on first Enable.
  bool seed_builtins = true;
  // Additionally load .casm candidates from this directory ("" = skip).
  std::string policy_dir;
};

enum class AutotuneEventKind : std::uint8_t {
  kRegimeChange,   // stable regime flipped
  kCanaryStart,    // candidate attached for scoring
  kPromote,        // canary won; candidate is now the incumbent
  kRollback,       // canary lost (or containment fired); incumbent restored
  kCanaryAbort,    // canary never collected enough samples; rolled back
  kQuarantineExit, // promoted policy quarantined by containment; detached
  kError,          // attach/detach failed; details in `detail`
};

const char* AutotuneEventKindName(AutotuneEventKind kind);

// The promote/rollback verdict, shared by the in-process controller and the
// multi-process fleet agent (src/concord/agent/fleet.h) so both control
// planes promote on exactly the same evidence: promote iff the canary's p99
// wait improves on the baseline by `margin`, or p99 holds and p50 improves
// by `margin`.
struct CanaryScore {
  std::uint64_t baseline_p50_ns = 0;
  std::uint64_t baseline_p99_ns = 0;
  std::uint64_t canary_p50_ns = 0;
  std::uint64_t canary_p99_ns = 0;
};

bool CanaryPromotes(const CanaryScore& score, double margin);

// "p50 A->Bns, p99 C->Dns" — the detail string attached to promote/rollback
// events on both control planes.
std::string CanaryScoreDetail(const CanaryScore& score);

struct AutotuneEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t lock_id = 0;
  std::string lock_name;
  AutotuneEventKind kind = AutotuneEventKind::kRegimeChange;
  ContentionRegime regime = ContentionRegime::kUncontended;
  std::string candidate;  // policy involved ("" when n/a)
  std::string detail;
};

class AutotuneController {
 public:
  static AutotuneController& Global();

  // Applies `config` and (once) seeds the candidate registry. Fails if the
  // background thread is running.
  Status Configure(const AutotuneConfig& config);
  const AutotuneConfig& config() const { return config_; }

  PolicyCandidateRegistry& registry() { return registry_; }

  // Replaces the classifier (default: DefaultRegimeClassifier with
  // config().classifier). Takes effect from the next tick.
  void SetClassifier(std::unique_ptr<RegimeClassifier> classifier);

  // --- enrollment -----------------------------------------------------------

  // Starts managing `lock_id`: enables profiling and begins sampling. The
  // lock keeps any manually attached policy until the controller decides
  // otherwise.
  Status Enroll(std::uint64_t lock_id);
  Status EnrollSelector(const std::string& selector);
  // Stops managing the lock. Any controller-attached policy stays; pass
  // `detach_policy` to revert the lock to plain.
  Status Unenroll(std::uint64_t lock_id, bool detach_policy = false);
  std::vector<std::uint64_t> Enrolled() const;

  // rw locks only: supplies the reader share for this lock's RegimeSignals
  // (the mutex profiler cannot split read/write acquisitions). Fraction in
  // [0,1]; called once per window from the controller thread.
  Status SetSignalProbe(std::uint64_t lock_id,
                        std::function<double()> reader_fraction);

  // --- the loop -------------------------------------------------------------

  // One decision pass over every enrolled lock; returns the events it
  // emitted. Deterministic given a FakeClock and synthetic profiler feeds —
  // tests call this directly instead of Start().
  std::vector<AutotuneEvent> Tick();

  // Background thread running Tick() every config().window_ns.
  Status Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- introspection --------------------------------------------------------

  // {"running":...,"window_ns":...,"locks":[{lock_id,name,regime,mode,
  //  attached,canary{...},cooldown,...}],"events":[...]}
  std::string StatusJson() const;

  // Recent events (bounded ring, newest last).
  std::vector<AutotuneEvent> RecentEvents(std::size_t max = 64) const;

  // Stops the thread, drops enrollment/state/events, clears the registry.
  void ResetForTest();

 private:
  // A canary that cannot fill canary_windows scored windows within
  // canary_windows * kCanaryPatience total windows is aborted.
  static constexpr std::uint32_t kCanaryPatience = 8;
  static constexpr std::size_t kMaxEvents = 256;

  enum class Mode : std::uint8_t { kObserving, kCanary };

  struct SkipEntry {
    std::string name;
    std::uint32_t windows_left = 0;
  };

  struct LockState {
    std::uint64_t lock_id = 0;
    std::string name;
    bool is_rw = false;

    RegimeHysteresis hysteresis;
    bool have_snapshot = false;
    LockProfileSnapshot last_snapshot;

    // What the controller believes is attached ("plain" = no policy).
    std::string incumbent = kPlainCandidateName;

    Mode mode = Mode::kObserving;
    std::uint32_t cooldown = 0;

    // Baseline from the most recent qualifying observation window.
    bool have_baseline = false;
    std::uint64_t baseline_p50_ns = 0;
    std::uint64_t baseline_p99_ns = 0;

    // Canary bookkeeping (mode == kCanary).
    std::string canary_candidate;
    Log2Histogram canary_wait;
    std::uint32_t canary_scored = 0;
    std::uint32_t canary_total = 0;

    std::vector<SkipEntry> skip;
    std::function<double()> reader_fraction;
  };

  AutotuneController() = default;

  void TickLockLocked(LockState& state, std::uint64_t now_ns,
                      std::vector<AutotuneEvent>& events);
  void StartCanaryLocked(LockState& state, const PolicyCandidate& candidate,
                         std::uint64_t now_ns,
                         std::vector<AutotuneEvent>& events);
  void FinishCanaryLocked(LockState& state, bool promote,
                          AutotuneEventKind kind, const std::string& detail,
                          std::uint64_t now_ns,
                          std::vector<AutotuneEvent>& events);
  // Attaches candidate `name` ("plain" = detach). Returns ok on success.
  Status ApplyCandidateLocked(LockState& state, const std::string& name);
  void AddSkipLocked(LockState& state, const std::string& name);
  bool IsSkippedLocked(const LockState& state, const std::string& name) const;
  void EmitLocked(AutotuneEvent event, std::vector<AutotuneEvent>& events);
  ContentionRegime ClassifyLocked(const RegimeSignals& signals) const;
  void ThreadMain();

  mutable std::mutex mu_;
  AutotuneConfig config_;
  bool seeded_ = false;
  PolicyCandidateRegistry registry_;
  std::unique_ptr<RegimeClassifier> classifier_;
  std::vector<std::unique_ptr<LockState>> locks_;
  std::deque<AutotuneEvent> events_;

  std::atomic<bool> running_{false};
  std::thread thread_;
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;
  bool stop_requested_ = false;
};

}  // namespace concord

#endif  // SRC_CONCORD_AUTOTUNE_CONTROLLER_H_
