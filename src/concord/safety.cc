#include "src/concord/safety.h"

#include <time.h>

#include "src/concord/containment.h"

namespace concord {

FairnessWatchdog::FairnessWatchdog(WatchdogConfig config) : config_(config) {}

FairnessWatchdog::~FairnessWatchdog() { Stop(); }

Status FairnessWatchdog::Watch(std::uint64_t lock_id) {
  CONCORD_RETURN_IF_ERROR(Concord::Global().EnableProfiling(lock_id));
  std::lock_guard<std::mutex> guard(mu_);
  for (const WatchState& state : watched_) {
    if (state.lock_id == lock_id) {
      return Status::Ok();
    }
  }
  WatchState state;
  state.lock_id = lock_id;
  // Baseline: violations are only raised for waits observed from now on.
  const ShardedLockProfileStats* stats = Concord::Global().Stats(lock_id);
  state.last_flagged_max_ns = stats != nullptr ? stats->WaitNs().Max() : 0;
  watched_.push_back(state);
  return Status::Ok();
}

void FairnessWatchdog::Unwatch(std::uint64_t lock_id) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = watched_.begin(); it != watched_.end(); ++it) {
    if (it->lock_id == lock_id) {
      watched_.erase(it);
      return;
    }
  }
}

void FairnessWatchdog::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  poller_ = std::thread([this] { PollLoop(); });
}

void FairnessWatchdog::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (poller_.joinable()) {
    poller_.join();
  }
}

void FairnessWatchdog::PollLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    CheckOnce();
    timespec ts;
    ts.tv_sec = static_cast<time_t>(config_.poll_interval_ms / 1000);
    ts.tv_nsec = static_cast<long>((config_.poll_interval_ms % 1000) * 1'000'000);
    nanosleep(&ts, nullptr);
  }
}

std::vector<FairnessWatchdog::Violation> FairnessWatchdog::CheckOnce() {
  std::vector<Violation> fresh;
  std::vector<Violation> to_report;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (WatchState& state : watched_) {
      const ShardedLockProfileStats* stats = Concord::Global().Stats(state.lock_id);
      if (stats == nullptr) {
        continue;
      }
      const Log2Histogram wait_ns = stats->WaitNs();
      const std::uint64_t max_wait = wait_ns.Max();
      if (max_wait > config_.max_wait_ns &&
          max_wait > state.last_flagged_max_ns) {
        Violation violation;
        violation.lock_id = state.lock_id;
        violation.kind = ViolationKind::kMaxWaitExceeded;
        violation.observed_ns = max_wait;
        violation.detached = config_.auto_detach;
        fresh.push_back(violation);
        state.last_flagged_max_ns = max_wait;
        to_report.push_back(violation);
        continue;
      }
      if (config_.p99_over_p50_limit > 0 && wait_ns.TotalCount() >= 100) {
        const std::uint64_t p50 = wait_ns.Percentile(50);
        const std::uint64_t p99 = wait_ns.Percentile(99);
        if (p50 > 0 &&
            static_cast<double>(p99) >
                static_cast<double>(p50) * config_.p99_over_p50_limit &&
            p99 > state.last_flagged_max_ns) {
          Violation violation;
          violation.lock_id = state.lock_id;
          violation.kind = ViolationKind::kWaitSkew;
          violation.observed_ns = p99;
          violation.detached = config_.auto_detach;
          fresh.push_back(violation);
          state.last_flagged_max_ns = p99;
          to_report.push_back(violation);
        }
      }
    }
    for (const Violation& violation : fresh) {
      violations_.push_back(violation);
    }
  }
  // Act outside mu_ (Concord and containment have their own locks; avoid
  // ordering surprises). With containment, a violation becomes a recorded
  // fault event; auto_detach maps to an immediate quarantine — the policy is
  // parked for probation re-attach instead of silently dropped forever.
  for (const Violation& violation : to_report) {
    if (config_.use_containment) {
      ContainmentRegistry::Global().OnFairnessViolation(
          violation.lock_id, violation.observed_ns,
          /*quarantine_now=*/config_.auto_detach);
    } else if (config_.auto_detach) {
      Concord::Global().Detach(violation.lock_id);
    }
  }
  return fresh;
}

std::vector<FairnessWatchdog::Violation> FairnessWatchdog::violations() const {
  std::lock_guard<std::mutex> guard(mu_);
  return violations_;
}

}  // namespace concord
