#include "src/concord/policy.h"

#include "src/bpf/analysis/certify.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/verifier.h"

namespace concord {

Status PolicySpec::AddProgram(HookKind kind, Program program) {
  const ContextDescriptor& expected = DescriptorFor(kind);
  if (program.ctx_desc != &expected) {
    return InvalidArgumentError(
        "program '" + program.name + "' was built against context '" +
        (program.ctx_desc != nullptr ? program.ctx_desc->name() : "<none>") +
        "' but hook " + HookKindName(kind) + " requires '" + expected.name() +
        "'");
  }
  ChainFor(kind).programs.push_back(std::move(program));
  return Status::Ok();
}

Status PolicySpec::VerifyAll() {
  for (int k = 0; k < kNumHookKinds; ++k) {
    const auto kind = static_cast<HookKind>(k);
    Verifier::Options options;
    options.allowed_capabilities = CapabilitiesFor(kind);
    for (Program& program : chains[k].programs) {
      // Certification needs the verifier's analysis facts (loop bounds, map
      // access sites), so pre-verified programs are re-explored rather than
      // skipped — attach is a control-plane operation where the extra
      // milliseconds buy the WCET and race gates for every path in.
      Verifier::Analysis analysis;
      Status status = Verifier::Verify(program, options, &analysis);
      if (status.ok()) {
        status = CertifyProgram(program, analysis, hook_budget_ns);
      }
      if (!status.ok()) {
        return Status(status.code(), "policy '" + name + "', hook " +
                                         HookKindName(kind) + ", program '" +
                                         program.name + "': " + status.message());
      }
    }
  }
  return Status::Ok();
}

std::uint32_t PolicySpec::JitCompileAll() {
  if (!Jit::Enabled()) {
    return 0;
  }
  std::uint32_t failures = 0;
  for (int k = 0; k < kNumHookKinds; ++k) {
    for (Program& program : chains[k].programs) {
      if (!program.verified || program.jit != nullptr) {
        continue;
      }
      StatusOr<std::shared_ptr<const JitProgram>> compiled =
          Jit::Compile(program);
      if (compiled.ok()) {
        program.jit = std::move(compiled.value());
      } else {
        // The program keeps jit == nullptr and interprets.
        ++failures;
      }
    }
  }
  return failures;
}

}  // namespace concord
