// Comment-directive parsing for .casm policy sources.
//
// Shipped policies carry their attach metadata in comment directives:
//
//   ; hook: lock_acquire        which hook the program targets
//   ; budget_ns: 2000           per-dispatch runtime budget the author
//                               certifies against (consumed by the WCET gate,
//                               src/bpf/analysis/certify.h, and installed as
//                               PolicySpec::hook_budget_ns)
//
// Three consumers used to carry their own ad-hoc `; hook:` scanners
// (concord_check, the policy.attach RPC verb, the autotune candidate
// loader), each with slightly different tolerance for malformed input —
// and all of them silently skipped a typoed directive. This header is the
// single parser: it reports *where* a directive was found (1-based line) so
// callers can say "line 3: unknown hook 'lock_aquire'" instead of "no
// directive".
//
// Grammar, per line: the directive may appear anywhere after a `;` comment
// marker (conventionally the whole first line). The first line containing
// the directive key wins; the value runs to the next whitespace. A line
// where the key appears with no value is malformed, not absent.

#ifndef SRC_CONCORD_POLICY_SOURCE_H_
#define SRC_CONCORD_POLICY_SOURCE_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/concord/hooks.h"

namespace concord {

// A raw directive occurrence: the token after the key, and the 1-based
// source line it was found on. An empty value means the key was present but
// malformed (nothing parseable followed it).
struct SourceDirective {
  std::string value;
  int line = 0;
};

// Scans for `; hook: <name>`. Returns false when no line carries the key;
// true otherwise, with *out describing the first occurrence (possibly with
// an empty value when malformed).
bool FindHookDirective(const std::string& source, SourceDirective* out);

// FindHookDirective + name resolution. Errors:
//   kNotFound         no directive in the source (caller may have a
//                     fallback, e.g. a --hook flag or RPC param)
//   kInvalidArgument  directive present but malformed or naming an unknown
//                     hook — message carries "line N:" context
// When `line` is non-null it receives the directive's line whenever one was
// found, including on error.
StatusOr<HookKind> ResolveHookDirective(const std::string& source,
                                        int* line = nullptr);

// Scans for `; budget_ns: <N>` (decimal nanoseconds). Returns false when
// absent; true with *budget_ns set when present and well-formed. A present
// but malformed value also returns true, with *budget_ns = 0 and a negative
// *line to let strict callers distinguish — ResolveBudgetDirective below is
// the checked form.
bool FindBudgetDirective(const std::string& source, std::uint64_t* budget_ns,
                         int* line = nullptr);

// FindBudgetDirective with errors: kNotFound when absent, kInvalidArgument
// (with line context) when present but not a positive decimal number.
StatusOr<std::uint64_t> ResolveBudgetDirective(const std::string& source);

}  // namespace concord

#endif  // SRC_CONCORD_POLICY_SOURCE_H_
