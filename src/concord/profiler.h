// Per-lock profiling state — the "dynamic lock profiling" half of C3 (§3.2).
//
// Unlike lockstat, which profiles every lock in the kernel at once, Concord
// attaches profiling taps per lock instance / class / pattern. Stats live in
// per-CPU-style shards behind the registry lock id so the taps are wait-free
// AND do not ping-pong one cache line between every acquiring core: each
// thread records into its own shard, and readers sum across shards on
// demand (sums are monotonic, so pollers can watch counters live).

#ifndef SRC_CONCORD_PROFILER_H_
#define SRC_CONCORD_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/base/cacheline.h"
#include "src/base/histogram.h"

namespace concord {

class JsonWriter;

// Per-virtual-socket acquisition slots tracked by the profiler. Virtual
// sockets beyond this fold into the last slot (the default topology has 8).
inline constexpr std::size_t kProfilerSocketSlots = 8;

// Sentinel for "no previous owner socket observed yet".
inline constexpr std::uint32_t kNoOwnerSocket = ~0u;

// One shard of profiling state. Also usable standalone as a plain stats
// block (tests, merged snapshots).
struct LockProfileStats {
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> contentions{0};
  std::atomic<std::uint64_t> releases{0};
  // NUMA signal for the autotune control plane: which virtual sockets the
  // acquiring threads sit on, and how often a *contended* grant moved the
  // lock to a different socket than its previous owner's.
  std::atomic<std::uint64_t> socket_acquisitions[kProfilerSocketSlots] = {};
  std::atomic<std::uint64_t> cross_socket_handoffs{0};
  // Samples the profiler could NOT time: in-flight slot table exhausted by
  // >kMaxInFlight-deep lock nesting. Counted instead of silently dropped so
  // a suspicious wait/hold histogram can be cross-checked against how much
  // of the traffic it actually saw.
  std::atomic<std::uint64_t> dropped_samples{0};
  // Containment counters (src/concord/containment.h): hook invocations that
  // blew their runtime budget, and how often this lock's policy was
  // quarantined as a result of any fault class.
  std::atomic<std::uint64_t> budget_overruns{0};
  std::atomic<std::uint64_t> quarantines{0};
  Log2Histogram wait_ns;  // contended acquisitions: time from acquire to grant
  Log2Histogram hold_ns;  // critical-section lengths

  void Reset() {
    acquisitions.store(0, std::memory_order_relaxed);
    contentions.store(0, std::memory_order_relaxed);
    releases.store(0, std::memory_order_relaxed);
    for (auto& slot : socket_acquisitions) {
      slot.store(0, std::memory_order_relaxed);
    }
    cross_socket_handoffs.store(0, std::memory_order_relaxed);
    dropped_samples.store(0, std::memory_order_relaxed);
    budget_overruns.store(0, std::memory_order_relaxed);
    quarantines.store(0, std::memory_order_relaxed);
    wait_ns.Reset();
    hold_ns.Reset();
  }

  // Adds `other`'s counters and histograms into this block (shard
  // aggregation; relaxed reads, statistically consistent).
  void MergeFrom(const LockProfileStats& other);

  double ContentionRate() const {
    const std::uint64_t acq = acquisitions.load(std::memory_order_relaxed);
    if (acq == 0) {
      return 0.0;
    }
    return static_cast<double>(contentions.load(std::memory_order_relaxed)) /
           static_cast<double>(acq);
  }

  // One-lock summary line: counts, contention rate, wait/hold p50/p99.
  std::string Summary() const;

  // Machine-readable counters + histograms, appended as one JSON object.
  void AppendJson(JsonWriter& writer) const;
};

// A point-in-time copy of one lock's merged profiling state. The live
// counters are cumulative since profiling was enabled; control planes that
// need *windowed* behaviour (the autotune controller, trend tooling) take a
// snapshot per tick and diff consecutive snapshots with DeltaSince.
struct LockProfileSnapshot {
  // ClockNowNs() when the snapshot (or, for a delta, its newer endpoint) was
  // taken; window_start_ns is 0 for a cumulative snapshot and the older
  // endpoint's taken_at_ns for a delta.
  std::uint64_t taken_at_ns = 0;
  std::uint64_t window_start_ns = 0;

  std::uint64_t acquisitions = 0;
  std::uint64_t contentions = 0;
  std::uint64_t releases = 0;
  std::uint64_t socket_acquisitions[kProfilerSocketSlots] = {};
  std::uint64_t cross_socket_handoffs = 0;
  std::uint64_t dropped_samples = 0;
  std::uint64_t budget_overruns = 0;
  std::uint64_t quarantines = 0;
  Log2Histogram wait_ns;
  Log2Histogram hold_ns;

  double ContentionRate() const {
    return acquisitions == 0 ? 0.0
                             : static_cast<double>(contentions) /
                                   static_cast<double>(acquisitions);
  }

  // Acquisition rate over the window, in ops/sec (0 for cumulative
  // snapshots, which have no window).
  double AcquisitionsPerSec() const {
    if (window_start_ns == 0 || taken_at_ns <= window_start_ns) {
      return 0.0;
    }
    return static_cast<double>(acquisitions) * 1e9 /
           static_cast<double>(taken_at_ns - window_start_ns);
  }

  // Number of sockets contributing at least `min_share` of the window's
  // acquisitions (NUMA-spread signal; 0 when the window saw no traffic).
  std::uint32_t ActiveSockets(double min_share = 0.10) const;

  // The samples recorded between `earlier` and this snapshot. Both must come
  // from the same lock, `earlier` first; counter deltas clamp at 0.
  LockProfileSnapshot DeltaSince(const LockProfileSnapshot& earlier) const;
};

// The per-lock profiling unit the registry owns: kShards cache-aligned
// LockProfileStats written by the hot taps, plus read-side aggregation.
//
// Writers: Shard() hashes the calling thread onto a shard; one acquisition's
// whole lifecycle (acquire/contended/acquired) runs on one thread, so its
// samples land in one shard. Release may run on another thread only for
// hand-off-style usage; counters still total correctly because every read
// sums all shards.
//
// Readers: the counter accessors are live and monotonic (safe to poll from
// a watcher thread while workers record). Histogram accessors return merged
// snapshot copies.
class ShardedLockProfileStats {
 public:
  static constexpr std::size_t kShards = 8;

  // The calling thread's shard. Thread→shard assignment is round-robin at
  // first use, fixed thereafter.
  LockProfileStats& Shard() { return shards_[ThisThreadShard()].stats; }

  // Shard for control-plane writers (containment bumping quarantine counts,
  // tests injecting synthetic histogram samples). Just shard 0 — it merges
  // into every aggregate like any other shard; the name documents intent.
  LockProfileStats& ControlShard() { return shards_[0].stats; }

  // --- live monotonic cross-shard counters ----------------------------------
  std::uint64_t Acquisitions() const { return Sum(&LockProfileStats::acquisitions); }
  std::uint64_t Contentions() const { return Sum(&LockProfileStats::contentions); }
  std::uint64_t Releases() const { return Sum(&LockProfileStats::releases); }
  std::uint64_t DroppedSamples() const {
    return Sum(&LockProfileStats::dropped_samples);
  }
  std::uint64_t BudgetOverruns() const {
    return Sum(&LockProfileStats::budget_overruns);
  }
  std::uint64_t Quarantines() const { return Sum(&LockProfileStats::quarantines); }
  std::uint64_t CrossSocketHandoffs() const {
    return Sum(&LockProfileStats::cross_socket_handoffs);
  }
  std::uint64_t SocketAcquisitions(std::size_t socket_slot) const;

  // Cross-shard merged copy of everything, stamped with ClockNowNs().
  //
  // Consistency bound: the copy is taken in a single pass over the shards
  // while writers keep recording, so counters from one call may straddle the
  // handful of operations in flight during the merge — but each counter is
  // individually monotonic across calls, and the cross-field invariants
  // contentions <= acquisitions, releases <= acquisitions (and therefore
  // ContentionRate() <= 1) are enforced by clamping. DeltaSince of two such
  // snapshots can attribute an in-flight op to either window, never to both
  // and never to neither.
  LockProfileSnapshot Snapshot() const;

  // Last socket a contended grant landed on (cross-socket handoff tracking;
  // written by ProfilerTaps::OnAcquired). Returns the previous value.
  std::uint32_t ExchangeOwnerSocket(std::uint32_t socket) {
    return last_owner_socket_.exchange(socket, std::memory_order_relaxed);
  }

  double ContentionRate() const {
    const std::uint64_t acq = Acquisitions();
    return acq == 0 ? 0.0
                    : static_cast<double>(Contentions()) /
                          static_cast<double>(acq);
  }

  // --- merged histogram snapshots -------------------------------------------
  Log2Histogram WaitNs() const;
  Log2Histogram HoldNs() const;

  // Adds every shard into `out`.
  void MergeInto(LockProfileStats& out) const;

  std::string Summary() const;
  void AppendJson(JsonWriter& writer) const;
  void Reset();

 private:
  struct CONCORD_CACHE_ALIGNED AlignedStats {
    LockProfileStats stats;
  };

  static std::size_t ThisThreadShard();

  std::uint64_t Sum(std::atomic<std::uint64_t> LockProfileStats::* field) const {
    std::uint64_t total = 0;
    for (const AlignedStats& shard : shards_) {
      total += (shard.stats.*field).load(std::memory_order_relaxed);
    }
    return total;
  }

  AlignedStats shards_[kShards];
  std::atomic<std::uint32_t> last_owner_socket_{kNoOwnerSocket};
};

// Native profiling taps. These functions are installed into ShflHooks/
// RwHooks slots by the Concord attach machinery; they stamp per-thread
// timestamps to compute wait and hold durations. In-flight acquisitions are
// matched per thread by lock id, newest-first (LIFO), so recursive or
// repeated acquisition of the same lock nests correctly.
struct ProfilerTaps {
  static void OnAcquire(ShardedLockProfileStats& stats, std::uint64_t lock_id);
  static void OnContended(ShardedLockProfileStats& stats, std::uint64_t lock_id);
  static void OnAcquired(ShardedLockProfileStats& stats, std::uint64_t lock_id);
  static void OnRelease(ShardedLockProfileStats& stats, std::uint64_t lock_id);
};

}  // namespace concord

#endif  // SRC_CONCORD_PROFILER_H_
