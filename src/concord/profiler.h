// Per-lock profiling state — the "dynamic lock profiling" half of C3 (§3.2).
//
// Unlike lockstat, which profiles every lock in the kernel at once, Concord
// attaches profiling taps per lock instance / class / pattern. Stats live in
// a dense array indexed by registry lock id so the taps are wait-free.

#ifndef SRC_CONCORD_PROFILER_H_
#define SRC_CONCORD_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/histogram.h"

namespace concord {

struct LockProfileStats {
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> contentions{0};
  std::atomic<std::uint64_t> releases{0};
  // Containment counters (src/concord/containment.h): hook invocations that
  // blew their runtime budget, and how often this lock's policy was
  // quarantined as a result of any fault class.
  std::atomic<std::uint64_t> budget_overruns{0};
  std::atomic<std::uint64_t> quarantines{0};
  Log2Histogram wait_ns;  // contended acquisitions: time from acquire to grant
  Log2Histogram hold_ns;  // critical-section lengths

  void Reset() {
    acquisitions.store(0, std::memory_order_relaxed);
    contentions.store(0, std::memory_order_relaxed);
    releases.store(0, std::memory_order_relaxed);
    budget_overruns.store(0, std::memory_order_relaxed);
    quarantines.store(0, std::memory_order_relaxed);
    wait_ns.Reset();
    hold_ns.Reset();
  }

  double ContentionRate() const {
    const std::uint64_t acq = acquisitions.load(std::memory_order_relaxed);
    if (acq == 0) {
      return 0.0;
    }
    return static_cast<double>(contentions.load(std::memory_order_relaxed)) /
           static_cast<double>(acq);
  }

  // One-lock summary line: counts, contention rate, wait/hold p50/p99.
  std::string Summary() const;
};

// Native profiling taps. `user_data` must point at a ProfilerBinding (below);
// these functions are installed into ShflHooks/RwHooks slots by the Concord
// attach machinery and stamp per-thread timestamps to compute wait and hold
// durations.
struct ProfilerTaps {
  static void OnAcquire(LockProfileStats& stats, std::uint64_t lock_id);
  static void OnContended(LockProfileStats& stats, std::uint64_t lock_id);
  static void OnAcquired(LockProfileStats& stats, std::uint64_t lock_id);
  static void OnRelease(LockProfileStats& stats, std::uint64_t lock_id);
};

}  // namespace concord

#endif  // SRC_CONCORD_PROFILER_H_
