// Per-lock profiling state — the "dynamic lock profiling" half of C3 (§3.2).
//
// Unlike lockstat, which profiles every lock in the kernel at once, Concord
// attaches profiling taps per lock instance / class / pattern. Stats live in
// per-CPU-style shards behind the registry lock id so the taps are wait-free
// AND do not ping-pong one cache line between every acquiring core: each
// thread records into its own shard, and readers sum across shards on
// demand (sums are monotonic, so pollers can watch counters live).

#ifndef SRC_CONCORD_PROFILER_H_
#define SRC_CONCORD_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/base/cacheline.h"
#include "src/base/histogram.h"

namespace concord {

class JsonWriter;

// One shard of profiling state. Also usable standalone as a plain stats
// block (tests, merged snapshots).
struct LockProfileStats {
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> contentions{0};
  std::atomic<std::uint64_t> releases{0};
  // Samples the profiler could NOT time: in-flight slot table exhausted by
  // >kMaxInFlight-deep lock nesting. Counted instead of silently dropped so
  // a suspicious wait/hold histogram can be cross-checked against how much
  // of the traffic it actually saw.
  std::atomic<std::uint64_t> dropped_samples{0};
  // Containment counters (src/concord/containment.h): hook invocations that
  // blew their runtime budget, and how often this lock's policy was
  // quarantined as a result of any fault class.
  std::atomic<std::uint64_t> budget_overruns{0};
  std::atomic<std::uint64_t> quarantines{0};
  Log2Histogram wait_ns;  // contended acquisitions: time from acquire to grant
  Log2Histogram hold_ns;  // critical-section lengths

  void Reset() {
    acquisitions.store(0, std::memory_order_relaxed);
    contentions.store(0, std::memory_order_relaxed);
    releases.store(0, std::memory_order_relaxed);
    dropped_samples.store(0, std::memory_order_relaxed);
    budget_overruns.store(0, std::memory_order_relaxed);
    quarantines.store(0, std::memory_order_relaxed);
    wait_ns.Reset();
    hold_ns.Reset();
  }

  // Adds `other`'s counters and histograms into this block (shard
  // aggregation; relaxed reads, statistically consistent).
  void MergeFrom(const LockProfileStats& other);

  double ContentionRate() const {
    const std::uint64_t acq = acquisitions.load(std::memory_order_relaxed);
    if (acq == 0) {
      return 0.0;
    }
    return static_cast<double>(contentions.load(std::memory_order_relaxed)) /
           static_cast<double>(acq);
  }

  // One-lock summary line: counts, contention rate, wait/hold p50/p99.
  std::string Summary() const;

  // Machine-readable counters + histograms, appended as one JSON object.
  void AppendJson(JsonWriter& writer) const;
};

// The per-lock profiling unit the registry owns: kShards cache-aligned
// LockProfileStats written by the hot taps, plus read-side aggregation.
//
// Writers: Shard() hashes the calling thread onto a shard; one acquisition's
// whole lifecycle (acquire/contended/acquired) runs on one thread, so its
// samples land in one shard. Release may run on another thread only for
// hand-off-style usage; counters still total correctly because every read
// sums all shards.
//
// Readers: the counter accessors are live and monotonic (safe to poll from
// a watcher thread while workers record). Histogram accessors return merged
// snapshot copies.
class ShardedLockProfileStats {
 public:
  static constexpr std::size_t kShards = 8;

  // The calling thread's shard. Thread→shard assignment is round-robin at
  // first use, fixed thereafter.
  LockProfileStats& Shard() { return shards_[ThisThreadShard()].stats; }

  // Shard for control-plane writers (containment bumping quarantine counts,
  // tests injecting synthetic histogram samples). Just shard 0 — it merges
  // into every aggregate like any other shard; the name documents intent.
  LockProfileStats& ControlShard() { return shards_[0].stats; }

  // --- live monotonic cross-shard counters ----------------------------------
  std::uint64_t Acquisitions() const { return Sum(&LockProfileStats::acquisitions); }
  std::uint64_t Contentions() const { return Sum(&LockProfileStats::contentions); }
  std::uint64_t Releases() const { return Sum(&LockProfileStats::releases); }
  std::uint64_t DroppedSamples() const {
    return Sum(&LockProfileStats::dropped_samples);
  }
  std::uint64_t BudgetOverruns() const {
    return Sum(&LockProfileStats::budget_overruns);
  }
  std::uint64_t Quarantines() const { return Sum(&LockProfileStats::quarantines); }

  double ContentionRate() const {
    const std::uint64_t acq = Acquisitions();
    return acq == 0 ? 0.0
                    : static_cast<double>(Contentions()) /
                          static_cast<double>(acq);
  }

  // --- merged histogram snapshots -------------------------------------------
  Log2Histogram WaitNs() const;
  Log2Histogram HoldNs() const;

  // Adds every shard into `out`.
  void MergeInto(LockProfileStats& out) const;

  std::string Summary() const;
  void AppendJson(JsonWriter& writer) const;
  void Reset();

 private:
  struct CONCORD_CACHE_ALIGNED AlignedStats {
    LockProfileStats stats;
  };

  static std::size_t ThisThreadShard();

  std::uint64_t Sum(std::atomic<std::uint64_t> LockProfileStats::* field) const {
    std::uint64_t total = 0;
    for (const AlignedStats& shard : shards_) {
      total += (shard.stats.*field).load(std::memory_order_relaxed);
    }
    return total;
  }

  AlignedStats shards_[kShards];
};

// Native profiling taps. These functions are installed into ShflHooks/
// RwHooks slots by the Concord attach machinery; they stamp per-thread
// timestamps to compute wait and hold durations. In-flight acquisitions are
// matched per thread by lock id, newest-first (LIFO), so recursive or
// repeated acquisition of the same lock nests correctly.
struct ProfilerTaps {
  static void OnAcquire(ShardedLockProfileStats& stats, std::uint64_t lock_id);
  static void OnContended(ShardedLockProfileStats& stats, std::uint64_t lock_id);
  static void OnAcquired(ShardedLockProfileStats& stats, std::uint64_t lock_id);
  static void OnRelease(ShardedLockProfileStats& stats, std::uint64_t lock_id);
};

}  // namespace concord

#endif  // SRC_CONCORD_PROFILER_H_
