#include "src/concord/containment.h"

#include <time.h>

#include <algorithm>
#include <cstdio>

#include "src/base/time.h"
#include "src/base/trace.h"
#include "src/concord/concord.h"
#include "src/concord/profiler.h"

namespace concord {

const char* PolicyHealthName(PolicyHealth health) {
  switch (health) {
    case PolicyHealth::kActive:
      return "ACTIVE";
    case PolicyHealth::kSuspect:
      return "SUSPECT";
    case PolicyHealth::kQuarantined:
      return "QUARANTINED";
    case PolicyHealth::kProbation:
      return "PROBATION";
    case PolicyHealth::kBlacklisted:
      return "BLACKLISTED";
  }
  return "<?>";
}

const char* ContainmentFaultName(ContainmentFault fault) {
  switch (fault) {
    case ContainmentFault::kNone:
      return "none";
    case ContainmentFault::kFairnessViolation:
      return "fairness_violation";
    case ContainmentFault::kBudgetOverrun:
      return "budget_overrun";
    case ContainmentFault::kDispatchFault:
      return "dispatch_fault";
    case ContainmentFault::kJitCompileFallback:
      return "jit_compile_fallback";
  }
  return "<?>";
}

const char* ContainmentActionName(ContainmentAction action) {
  switch (action) {
    case ContainmentAction::kNone:
      return "none";
    case ContainmentAction::kMarkedSuspect:
      return "marked_suspect";
    case ContainmentAction::kQuarantined:
      return "quarantined";
    case ContainmentAction::kReattached:
      return "reattached";
    case ContainmentAction::kRecovered:
      return "recovered";
    case ContainmentAction::kBlacklisted:
      return "blacklisted";
  }
  return "<?>";
}

std::string ContainmentEvent::Summary() const {
  char line[256];
  std::snprintf(line, sizeof(line), "lock=%llu policy='%s' fault=%s action=%s",
                static_cast<unsigned long long>(lock_id), policy_name.c_str(),
                ContainmentFaultName(fault), ContainmentActionName(action));
  std::string out = line;
  if (!detail.empty()) {
    out += " (" + detail + ")";
  }
  return out;
}

ContainmentRegistry& ContainmentRegistry::Global() {
  static ContainmentRegistry* registry = new ContainmentRegistry();
  return *registry;
}

void ContainmentRegistry::SetConfig(const ContainmentConfig& config) {
  std::lock_guard<std::mutex> guard(mu_);
  config_ = config;
}

ContainmentConfig ContainmentRegistry::config() const {
  std::lock_guard<std::mutex> guard(mu_);
  return config_;
}

void ContainmentRegistry::RecordLocked(std::uint64_t lock_id,
                                       const std::string& policy_name,
                                       ContainmentFault fault,
                                       ContainmentAction action,
                                       const std::string& detail,
                                       std::vector<ContainmentEvent>* fresh) {
  ContainmentEvent event;
  event.time_ns = ClockNowNs();
  event.lock_id = lock_id;
  event.policy_name = policy_name;
  event.fault = fault;
  event.action = action;
  event.detail = detail;
  events_.push_back(event);
  if (fresh != nullptr) {
    fresh->push_back(std::move(event));
  }
}

void ContainmentRegistry::QuarantineLocked(std::uint64_t lock_id, State& state,
                                           ContainmentFault fault,
                                           const std::string& detail,
                                           std::vector<ContainmentEvent>* fresh) {
  state.quarantine_count += 1;
  state.fault_count = 0;
  if (state.quarantine_count > config_.max_quarantines) {
    state.health = PolicyHealth::kBlacklisted;
    state.backoff_ns = 0;
    state.probation_due_ns = 0;
    Concord::Global().DetachForQuarantine(lock_id);
    RecordLocked(lock_id, state.policy_name, fault,
                 ContainmentAction::kBlacklisted, detail, fresh);
    return;
  }
  // Exponential backoff: initial * multiplier^(quarantine_count - 1), capped.
  double backoff = static_cast<double>(config_.initial_backoff_ns);
  for (std::uint32_t i = 1; i < state.quarantine_count; ++i) {
    backoff *= config_.backoff_multiplier;
    if (backoff >= static_cast<double>(config_.max_backoff_ns)) {
      break;
    }
  }
  state.backoff_ns = std::min(
      config_.max_backoff_ns,
      static_cast<std::uint64_t>(backoff));
  state.probation_due_ns = ClockNowNs() + state.backoff_ns;
  state.health = PolicyHealth::kQuarantined;
  Concord::Global().DetachForQuarantine(lock_id);
  if (ShardedLockProfileStats* stats = Concord::Global().MutableStats(lock_id)) {
    stats->ControlShard().quarantines.fetch_add(1, std::memory_order_relaxed);
  }
  TraceRecord(lock_id, TraceEventKind::kQuarantine,
              static_cast<std::uint64_t>(fault));
  RecordLocked(lock_id, state.policy_name, fault, ContainmentAction::kQuarantined,
               detail + " backoff_ns=" + std::to_string(state.backoff_ns), fresh);
}

void ContainmentRegistry::HandleFaultLocked(std::uint64_t lock_id,
                                            ContainmentFault fault,
                                            const std::string& detail,
                                            bool quarantine_now,
                                            std::vector<ContainmentEvent>* fresh) {
  auto it = states_.find(lock_id);
  if (it == states_.end()) {
    // No tracked policy (stock lock, or profiling only): nothing to contain,
    // but the event is still worth the record.
    RecordLocked(lock_id, "", fault, ContainmentAction::kNone, detail, fresh);
    return;
  }
  State& state = it->second;
  state.last_fault_ns = ClockNowNs();
  switch (state.health) {
    case PolicyHealth::kActive:
      if (quarantine_now || config_.quarantine_threshold <= 1) {
        QuarantineLocked(lock_id, state, fault, detail, fresh);
        return;
      }
      state.health = PolicyHealth::kSuspect;
      state.fault_count = 1;
      RecordLocked(lock_id, state.policy_name, fault,
                   ContainmentAction::kMarkedSuspect, detail, fresh);
      return;
    case PolicyHealth::kSuspect:
      state.fault_count += 1;
      if (quarantine_now || state.fault_count >= config_.quarantine_threshold) {
        QuarantineLocked(lock_id, state, fault, detail, fresh);
        return;
      }
      RecordLocked(lock_id, state.policy_name, fault, ContainmentAction::kNone,
                   detail, fresh);
      return;
    case PolicyHealth::kProbation:
      // Any fault during probation re-quarantines immediately (backoff
      // doubles via the quarantine count).
      QuarantineLocked(lock_id, state, fault, detail, fresh);
      return;
    case PolicyHealth::kQuarantined:
    case PolicyHealth::kBlacklisted:
      // Already contained; stale fault reports (e.g. a watchdog pass racing
      // the detach) are recorded but change nothing.
      RecordLocked(lock_id, state.policy_name, fault, ContainmentAction::kNone,
                   detail, fresh);
      return;
  }
}

void ContainmentRegistry::ReportFault(std::uint64_t lock_id,
                                      ContainmentFault fault,
                                      const std::string& detail) {
  std::lock_guard<std::mutex> guard(mu_);
  HandleFaultLocked(lock_id, fault, detail, /*quarantine_now=*/false, nullptr);
}

void ContainmentRegistry::OnFairnessViolation(std::uint64_t lock_id,
                                              std::uint64_t observed_ns,
                                              bool quarantine_now) {
  std::lock_guard<std::mutex> guard(mu_);
  HandleFaultLocked(lock_id, ContainmentFault::kFairnessViolation,
                    "observed_ns=" + std::to_string(observed_ns), quarantine_now,
                    nullptr);
}

void ContainmentRegistry::NoteJitFallback(std::uint64_t lock_id,
                                          const std::string& policy_name,
                                          std::uint32_t failed_programs) {
  std::lock_guard<std::mutex> guard(mu_);
  RecordLocked(lock_id, policy_name, ContainmentFault::kJitCompileFallback,
               ContainmentAction::kNone,
               std::to_string(failed_programs) +
                   " program(s) fell back to the interpreter",
               nullptr);
}

void ContainmentRegistry::OnManualAttach(std::uint64_t lock_id,
                                         const std::string& policy_name) {
  std::lock_guard<std::mutex> guard(mu_);
  State state;
  state.policy_name = policy_name;
  states_[lock_id] = std::move(state);
}

void ContainmentRegistry::OnManualDetach(std::uint64_t lock_id) {
  std::lock_guard<std::mutex> guard(mu_);
  states_.erase(lock_id);
}

void ContainmentRegistry::Forget(std::uint64_t lock_id) {
  std::lock_guard<std::mutex> guard(mu_);
  states_.erase(lock_id);
}

std::vector<ContainmentEvent> ContainmentRegistry::Poll() {
  // Harvest budget trips first, *without* holding mu_ (Concord takes its own
  // mutex; the sanctioned ordering is containment -> concord, never nested
  // the other way).
  const std::vector<Concord::BudgetTrip> trips =
      Concord::Global().HarvestBudgetTrips();

  std::vector<ContainmentEvent> fresh;
  std::lock_guard<std::mutex> guard(mu_);
  for (const Concord::BudgetTrip& trip : trips) {
    const bool pure_fault = trip.dispatch_faults > 0 && trip.overruns == 0;
    const ContainmentFault fault = pure_fault
                                       ? ContainmentFault::kDispatchFault
                                       : ContainmentFault::kBudgetOverrun;
    std::string detail = "overruns=" + std::to_string(trip.overruns) +
                         " dispatch_faults=" +
                         std::to_string(trip.dispatch_faults) +
                         " max_ns=" + std::to_string(trip.max_observed_ns);
    HandleFaultLocked(trip.lock_id, fault, detail, /*quarantine_now=*/false,
                      &fresh);
  }

  const std::uint64_t now = ClockNowNs();
  for (auto& [lock_id, state] : states_) {
    switch (state.health) {
      case PolicyHealth::kSuspect:
        if (now - state.last_fault_ns >= config_.suspect_decay_ns) {
          state.health = PolicyHealth::kActive;
          state.fault_count = 0;
          RecordLocked(lock_id, state.policy_name, ContainmentFault::kNone,
                       ContainmentAction::kRecovered, "suspect decay", &fresh);
        }
        break;
      case PolicyHealth::kQuarantined:
        if (config_.auto_reattach && now >= state.probation_due_ns) {
          const Status status =
              Concord::Global().ReattachFromQuarantine(lock_id);
          if (status.ok()) {
            state.health = PolicyHealth::kProbation;
            state.probation_since_ns = now;
            RecordLocked(lock_id, state.policy_name, ContainmentFault::kNone,
                         ContainmentAction::kReattached,
                         "probation after backoff_ns=" +
                             std::to_string(state.backoff_ns),
                         &fresh);
          } else {
            RecordLocked(lock_id, state.policy_name, ContainmentFault::kNone,
                         ContainmentAction::kNone,
                         "re-attach failed: " + status.message(), &fresh);
          }
        }
        break;
      case PolicyHealth::kProbation:
        if (now - state.probation_since_ns >= config_.probation_success_ns) {
          state.health = PolicyHealth::kActive;
          state.fault_count = 0;
          state.quarantine_count = 0;
          state.backoff_ns = 0;
          state.probation_due_ns = 0;
          RecordLocked(lock_id, state.policy_name, ContainmentFault::kNone,
                       ContainmentAction::kRecovered, "probation clean", &fresh);
        }
        break;
      case PolicyHealth::kActive:
      case PolicyHealth::kBlacklisted:
        break;
    }
  }
  return fresh;
}

void ContainmentRegistry::StartWorker(std::uint64_t poll_interval_ms) {
  bool expected = false;
  if (!worker_running_.compare_exchange_strong(expected, true)) {
    return;
  }
  worker_ = std::thread([this, poll_interval_ms] { WorkerLoop(poll_interval_ms); });
}

void ContainmentRegistry::StopWorker() {
  if (!worker_running_.exchange(false)) {
    return;
  }
  if (worker_.joinable()) {
    worker_.join();
  }
}

void ContainmentRegistry::WorkerLoop(std::uint64_t poll_interval_ms) {
  while (worker_running_.load(std::memory_order_relaxed)) {
    Poll();
    timespec ts;
    ts.tv_sec = static_cast<time_t>(poll_interval_ms / 1000);
    ts.tv_nsec = static_cast<long>((poll_interval_ms % 1000) * 1'000'000);
    nanosleep(&ts, nullptr);
  }
}

std::optional<PolicyStatus> ContainmentRegistry::StatusOf(
    std::uint64_t lock_id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = states_.find(lock_id);
  if (it == states_.end()) {
    return std::nullopt;
  }
  PolicyStatus status;
  status.health = it->second.health;
  status.policy_name = it->second.policy_name;
  status.fault_count = it->second.fault_count;
  status.quarantine_count = it->second.quarantine_count;
  status.backoff_ns = it->second.backoff_ns;
  status.probation_due_ns = it->second.probation_due_ns;
  return status;
}

PolicyHealth ContainmentRegistry::HealthOf(std::uint64_t lock_id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = states_.find(lock_id);
  return it == states_.end() ? PolicyHealth::kActive : it->second.health;
}

std::vector<ContainmentEvent> ContainmentRegistry::events() const {
  std::lock_guard<std::mutex> guard(mu_);
  return events_;
}

std::string ContainmentRegistry::Report() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::string report;
  for (const auto& [lock_id, state] : states_) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "lock=%llu policy='%s' health=%s faults=%u quarantines=%u "
                  "backoff_ns=%llu\n",
                  static_cast<unsigned long long>(lock_id),
                  state.policy_name.c_str(), PolicyHealthName(state.health),
                  state.fault_count, state.quarantine_count,
                  static_cast<unsigned long long>(state.backoff_ns));
    report += line;
  }
  for (const ContainmentEvent& event : events_) {
    report += "  " + event.Summary() + "\n";
  }
  return report;
}

void ContainmentRegistry::ResetForTest() {
  StopWorker();
  std::lock_guard<std::mutex> guard(mu_);
  config_ = ContainmentConfig{};
  states_.clear();
  events_.clear();
}

}  // namespace concord
