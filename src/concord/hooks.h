// Concord hook kinds, their BPF context layouts, and per-hook verification
// rules.
//
// Each hook kind corresponds to one row of Table 1 in the paper (plus
// rw_mode, the readers-writer analogue used by the BRAVO integration). For
// every kind this header defines:
//   - the C struct handed to the policy program in R1,
//   - a ContextDescriptor limiting which fields a program may read/write,
//   - the capability mask limiting which helpers it may call.

#ifndef SRC_CONCORD_HOOKS_H_
#define SRC_CONCORD_HOOKS_H_

#include <cstdint>

#include "src/bpf/context.h"
#include "src/bpf/helpers.h"
#include "src/sync/policy_hooks.h"

namespace concord {

enum class HookKind : std::uint8_t {
  kCmpNode = 0,
  kSkipShuffle,
  kScheduleWaiter,
  kLockAcquire,
  kLockContended,
  kLockAcquired,
  kLockRelease,
  kRwMode,
};
inline constexpr int kNumHookKinds = 8;

const char* HookKindName(HookKind kind);

// --- context structs ---------------------------------------------------------
// Plain-old-data; the BPF program sees them through the descriptors below.

// cmp_node(lock, shuffler_node, curr_node): should `curr` join the
// shuffler's group? Return nonzero to move it forward.
struct CmpNodeCtx {
  ShflWaiterView shuffler;  // offsets 0..39
  ShflWaiterView curr;      // offsets 40..79
};
static_assert(sizeof(CmpNodeCtx) == 80);

// skip_shuffle(lock, shuffler_node): return nonzero to skip this round.
struct SkipShuffleCtx {
  ShflWaiterView shuffler;
};
static_assert(sizeof(SkipShuffleCtx) == 40);

// schedule_waiter(lock, curr_node): return nonzero to park the waiter now.
struct ScheduleWaiterCtx {
  ShflWaiterView waiter;          // offsets 0..39
  std::uint32_t spin_iterations;  // offset 40
  std::uint32_t reserved;         // offset 44
};
static_assert(sizeof(ScheduleWaiterCtx) == 48);

// The four profiling hooks share one context.
struct ProfileCtx {
  std::uint64_t lock_id;  // offset 0
  std::uint64_t now_ns;   // offset 8
  std::uint32_t hook;     // offset 16: HookKind of the firing tap
  std::uint32_t reserved; // offset 20
};
static_assert(sizeof(ProfileCtx) == 24);

// rw_mode(lock): return the RwMode the lock should operate in.
struct RwModeCtx {
  std::uint64_t lock_id;
};
static_assert(sizeof(RwModeCtx) == 8);

// --- per-hook verification rules ---------------------------------------------

// Descriptor a program must be written against to attach at `kind`.
const ContextDescriptor& DescriptorFor(HookKind kind);

// Helper-capability mask granted at `kind`. Decision hooks may read state
// and use maps but may not mutate lock/waiter state; cmp_node and
// skip_shuffle additionally lose trace (they run per queue scan — a printk
// there is a footgun the paper's Table 1 calls out as "increase critical
// section" for the profiling hooks and worse here).
std::uint32_t CapabilitiesFor(HookKind kind);

}  // namespace concord

#endif  // SRC_CONCORD_HOOKS_H_
