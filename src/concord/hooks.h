// Concord hook kinds, their BPF context layouts, and per-hook verification
// rules.
//
// Each hook kind corresponds to one row of Table 1 in the paper (plus
// rw_mode, the readers-writer analogue used by the BRAVO integration). For
// every kind this header defines:
//   - the C struct handed to the policy program in R1,
//   - a ContextDescriptor limiting which fields a program may read/write,
//   - the capability mask limiting which helpers it may call.

#ifndef SRC_CONCORD_HOOKS_H_
#define SRC_CONCORD_HOOKS_H_

#include <atomic>
#include <cstdint>

#include "src/base/time.h"
#include "src/bpf/context.h"
#include "src/bpf/helpers.h"
#include "src/concord/profiler.h"
#include "src/sync/policy_hooks.h"

#ifndef CONCORD_HOOK_BUDGETS
#define CONCORD_HOOK_BUDGETS 1
#endif

namespace concord {

enum class HookKind : std::uint8_t {
  kCmpNode = 0,
  kSkipShuffle,
  kScheduleWaiter,
  kLockAcquire,
  kLockContended,
  kLockAcquired,
  kLockRelease,
  kRwMode,
};
inline constexpr int kNumHookKinds = 8;

const char* HookKindName(HookKind kind);

// Reverse of HookKindName; false when `name` matches no hook.
bool ParseHookKindName(const std::string& name, HookKind* out);

// --- context structs ---------------------------------------------------------
// Plain-old-data; the BPF program sees them through the descriptors below.

// cmp_node(lock, shuffler_node, curr_node): should `curr` join the
// shuffler's group? Return nonzero to move it forward.
struct CmpNodeCtx {
  ShflWaiterView shuffler;  // offsets 0..39
  ShflWaiterView curr;      // offsets 40..79
};
static_assert(sizeof(CmpNodeCtx) == 80);

// skip_shuffle(lock, shuffler_node): return nonzero to skip this round.
struct SkipShuffleCtx {
  ShflWaiterView shuffler;
};
static_assert(sizeof(SkipShuffleCtx) == 40);

// schedule_waiter(lock, curr_node): return nonzero to park the waiter now.
struct ScheduleWaiterCtx {
  ShflWaiterView waiter;          // offsets 0..39
  std::uint32_t spin_iterations;  // offset 40
  std::uint32_t reserved;         // offset 44
};
static_assert(sizeof(ScheduleWaiterCtx) == 48);

// The four profiling hooks share one context.
struct ProfileCtx {
  std::uint64_t lock_id;  // offset 0
  std::uint64_t now_ns;   // offset 8
  std::uint32_t hook;     // offset 16: HookKind of the firing tap
  std::uint32_t reserved; // offset 20
};
static_assert(sizeof(ProfileCtx) == 24);

// rw_mode(lock): return the RwMode the lock should operate in.
struct RwModeCtx {
  std::uint64_t lock_id;
};
static_assert(sizeof(RwModeCtx) == 8);

// --- hook runtime budgets ----------------------------------------------------
//
// One HookBudgetState is owned by the Concord registry entry for an attached
// policy (src/concord/concord.cc) and shared with the live CompiledPolicy
// trampoline table. Trampolines account each policy invocation here; the
// containment registry's Poll() harvests trips asynchronously — the hot path
// never detaches (it runs inside an RCU read section where a synchronize
// would deadlock), it only raises the `tripped` flag.
//
// Compiled out when CONCORD_HOOK_BUDGETS is 0 (the struct remains so the
// registry layout is stable, but no trampoline touches it).

// Elapsed nanoseconds since `start_ns`, clamped at zero. The clock contract
// (src/base/time.h) is monotonic, but a test FakeClock can be stepped
// backwards and a future CLOCK_MONOTONIC_RAW swap could regress across
// cores; unclamped `now - start` would wrap to ~2^64 ns and instantly trip
// any budget. Every elapsed computation that feeds AccountDispatch must go
// through this.
inline std::uint64_t ElapsedSinceNs(std::uint64_t start_ns) {
  const std::uint64_t now = ClockNowNs();
  return now > start_ns ? now - start_ns : 0;
}

struct HookBudgetState {
  // Configuration, fixed at attach time.
  std::uint64_t budget_ns = 0;      // per-invocation budget; 0 = no timing
  std::uint32_t trip_overruns = 8;  // overruns before the trip flag raises

  // Accounting (per hook kind: invocation count and summed execution time).
  std::atomic<std::uint64_t> calls[8] = {};
  std::atomic<std::uint64_t> spent_ns[8] = {};
  std::atomic<std::uint64_t> overruns{0};
  std::atomic<std::uint64_t> max_ns{0};
  // Faults observed inside policy dispatch (injected or real helper/map
  // failures), attributed via FaultRegistry::ThreadFires() deltas.
  std::atomic<std::uint64_t> dispatch_faults{0};
  // Raised once the trip threshold is crossed; harvested (and cleared) by
  // Concord::HarvestBudgetTrips().
  std::atomic<std::uint32_t> tripped{0};

  void AccountDispatch(HookKind kind, std::uint64_t elapsed_ns,
                       ShardedLockProfileStats* stats) {
    const auto k = static_cast<std::size_t>(kind);
    calls[k].fetch_add(1, std::memory_order_relaxed);
    spent_ns[k].fetch_add(elapsed_ns, std::memory_order_relaxed);
    std::uint64_t prev_max = max_ns.load(std::memory_order_relaxed);
    while (elapsed_ns > prev_max &&
           !max_ns.compare_exchange_weak(prev_max, elapsed_ns,
                                         std::memory_order_relaxed)) {
    }
    if (budget_ns != 0 && elapsed_ns > budget_ns) {
      const std::uint64_t total =
          overruns.fetch_add(1, std::memory_order_relaxed) + 1;
      if (stats != nullptr) {
        stats->Shard().budget_overruns.fetch_add(1, std::memory_order_relaxed);
      }
      if (total >= trip_overruns) {
        tripped.store(1, std::memory_order_release);
      }
    }
  }

  void AccountFault() {
    dispatch_faults.fetch_add(1, std::memory_order_relaxed);
    tripped.store(1, std::memory_order_release);
  }

  std::uint64_t TotalCalls() const {
    std::uint64_t total = 0;
    for (const auto& c : calls) {
      total += c.load(std::memory_order_relaxed);
    }
    return total;
  }

  std::uint64_t TotalSpentNs() const {
    std::uint64_t total = 0;
    for (const auto& s : spent_ns) {
      total += s.load(std::memory_order_relaxed);
    }
    return total;
  }
};
static_assert(kNumHookKinds == 8, "HookBudgetState arrays track kNumHookKinds");

// --- per-hook verification rules ---------------------------------------------

// Descriptor a program must be written against to attach at `kind`.
const ContextDescriptor& DescriptorFor(HookKind kind);

// Helper-capability mask granted at `kind`. Decision hooks may read state
// and use maps but may not mutate lock/waiter state; cmp_node and
// skip_shuffle additionally lose trace (they run per queue scan — a printk
// there is a footgun the paper's Table 1 calls out as "increase critical
// section" for the profiling hooks and worse here).
std::uint32_t CapabilitiesFor(HookKind kind);

}  // namespace concord

#endif  // SRC_CONCORD_HOOKS_H_
