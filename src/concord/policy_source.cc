#include "src/concord/policy_source.h"

#include <cctype>
#include <sstream>

namespace concord {
namespace {

// Shared scanner: first line whose comment part contains `key` wins. The
// value is the whitespace-delimited token after the key (empty when the key
// ends the line — malformed, but located).
bool FindDirective(const std::string& source, const char* key,
                   SourceDirective* out) {
  std::istringstream lines(source);
  std::string line;
  int line_no = 0;
  const std::size_t key_len = std::string(key).size();
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t semi = line.find(';');
    if (semi == std::string::npos) {
      continue;
    }
    std::size_t pos = line.find(key, semi);
    if (pos == std::string::npos) {
      continue;
    }
    pos += key_len;
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
      ++pos;
    }
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' &&
           line[end] != '\r') {
      ++end;
    }
    out->value = line.substr(pos, end - pos);
    out->line = line_no;
    return true;
  }
  return false;
}

std::string ValidHookNames() {
  std::string names;
  for (int i = 0; i < kNumHookKinds; ++i) {
    if (!names.empty()) {
      names += ' ';
    }
    names += HookKindName(static_cast<HookKind>(i));
  }
  return names;
}

}  // namespace

bool FindHookDirective(const std::string& source, SourceDirective* out) {
  return FindDirective(source, "hook:", out);
}

StatusOr<HookKind> ResolveHookDirective(const std::string& source, int* line) {
  SourceDirective directive;
  if (!FindHookDirective(source, &directive)) {
    return NotFoundError("no `; hook: <name>` directive in source");
  }
  if (line != nullptr) {
    *line = directive.line;
  }
  const std::string where = "line " + std::to_string(directive.line) + ": ";
  if (directive.value.empty()) {
    return InvalidArgumentError(where +
                                "malformed `; hook:` directive (missing hook "
                                "name); valid hooks: " +
                                ValidHookNames());
  }
  HookKind kind;
  if (!ParseHookKindName(directive.value, &kind)) {
    return InvalidArgumentError(where + "unknown hook '" + directive.value +
                                "'; valid hooks: " + ValidHookNames());
  }
  return kind;
}

bool FindBudgetDirective(const std::string& source, std::uint64_t* budget_ns,
                         int* line) {
  SourceDirective directive;
  if (!FindDirective(source, "budget_ns:", &directive)) {
    return false;
  }
  std::uint64_t value = 0;
  bool valid = !directive.value.empty();
  for (char c : directive.value) {
    if (!std::isdigit(static_cast<unsigned char>(c)) ||
        value > (~0ull - 9) / 10) {
      valid = false;
      break;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *budget_ns = valid ? value : 0;
  if (line != nullptr) {
    *line = valid ? directive.line : -directive.line;
  }
  return true;
}

StatusOr<std::uint64_t> ResolveBudgetDirective(const std::string& source) {
  std::uint64_t budget_ns = 0;
  int line = 0;
  if (!FindBudgetDirective(source, &budget_ns, &line)) {
    return NotFoundError("no `; budget_ns: <N>` directive in source");
  }
  if (line < 0) {
    return InvalidArgumentError(
        "line " + std::to_string(-line) +
        ": malformed `; budget_ns:` directive (want a positive decimal "
        "nanosecond count)");
  }
  return budget_ns;
}

}  // namespace concord
