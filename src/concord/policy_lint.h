// Lock-invariant lint for policy programs.
//
// The verifier (src/bpf/verifier.h) proves memory safety and termination for
// any program; this layer checks the *lock-specific* contracts a program must
// additionally honour at its attach point — the informal rules Table 1 of the
// paper states per hook, turned into machine-checkable facts over the
// verifier's Analysis artifact:
//
//   cmp_node         pure (no map writes, no context writes); returns 0 or 1;
//                    any loop bounded by kMaxShuffleScan trips (it runs once
//                    per scanned waiter — a longer loop outlives the queue
//                    walk it is deciding for).
//   skip_shuffle     returns 0 or 1; any loop bounded by kShuffleRoundCap
//                    trips (the lock clamps shuffling rounds there, so a
//                    longer loop can never be load-bearing).
//   schedule_waiter  returns 0 or 1; must not retain the waiter context
//                    pointer across a helper call (helpers may park or
//                    requeue — the pointer may be stale when control
//                    returns).
//   rw_mode          returns a valid RwMode (0, 1 or 2).
//   profiling hooks  no extra rules (budgets contain them at runtime).
//
// Lint runs after successful verification and consumes only proven facts, so
// a finding is a real contract violation on some feasible abstract path —
// never a heuristic.

#ifndef SRC_CONCORD_POLICY_LINT_H_
#define SRC_CONCORD_POLICY_LINT_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/bpf/program.h"
#include "src/bpf/verifier.h"
#include "src/concord/hooks.h"

namespace concord {

struct LintFinding {
  std::string rule;     // stable identifier, e.g. "return-range"
  std::string message;  // human-readable explanation
};

struct LintReport {
  std::vector<LintFinding> findings;
  bool ok() const { return findings.empty(); }
  // One "hook/rule: message" line per finding.
  std::string ToString() const;
};

// Checks the per-hook contracts against facts the verifier proved. The
// program must have passed Verify() with `analysis` filled in.
LintReport LintPolicyProgram(HookKind kind, const Verifier::Analysis& analysis);

// Convenience pipeline used by concord_check and tests: verifies `program`
// under the hook's capability mask, then lints. Returns the verifier error
// verbatim on rejection; returns PermissionDeniedError listing the findings
// when lint fails. Fills `report` (if non-null) with the lint findings and
// `analysis` (if non-null) with the verifier facts.
Status CheckPolicyProgram(HookKind kind, Program& program,
                          LintReport* report = nullptr,
                          Verifier::Analysis* analysis = nullptr);

}  // namespace concord

#endif  // SRC_CONCORD_POLICY_LINT_H_
