// Ready-made policies — the paper's §3 use cases, written as BPF programs
// against the Concord hook descriptors.
//
// Each factory returns a PolicySpec whose programs are assembled but not yet
// verified (Concord::Attach verifies). Policies that take runtime knobs
// (thresholds, modes) read them from an array map owned by the spec; the
// returned handle exposes the map so userspace can retune the live policy
// without re-attaching — tuning a running kernel lock from userspace is the
// paper's headline capability.

#ifndef SRC_CONCORD_POLICIES_H_
#define SRC_CONCORD_POLICIES_H_

#include <memory>

#include "src/base/status.h"
#include "src/bpf/maps.h"
#include "src/concord/policy.h"

namespace concord {

// A spec plus its tuning map (slot 0 = the knob), if the policy has one.
struct TunablePolicy {
  PolicySpec spec;
  std::shared_ptr<ArrayMap> knobs;  // null for knob-free policies

  Status SetKnob(std::uint32_t slot, std::uint64_t value) {
    if (knobs == nullptr) {
      return FailedPreconditionError("policy has no tuning map");
    }
    return knobs->UpdateTyped(slot, value);
  }
};

// §3.1.1 "Lock switching"/NUMA-awareness: group same-socket waiters behind
// the shuffler (the ShflLock NUMA policy evaluated in Figure 2(b)).
StatusOr<TunablePolicy> MakeNumaGroupingPolicy();

// §3.1.1 "Lock priority boosting": waiters whose priority annotation is
// >= knob[0] (default 1) are pulled into the shuffler's group.
StatusOr<TunablePolicy> MakePriorityBoostPolicy();

// §3.1.1 "Lock inheritance": waiters already holding other locks (nested
// acquirers, e.g. rename paths) are boosted past lock-free waiters.
StatusOr<TunablePolicy> MakeLockInheritancePolicy();

// §3.1.2 "Task-fair co-operative scheduling" (scheduler-cooperative lock):
// waiters whose critical-section EWMA is below knob[0] ns (default 1ms) are
// boosted, penalizing lock hogs.
StatusOr<TunablePolicy> MakeSclPolicy();

// §3.1.2 "Task-fair locks on AMP machines": waiters on fast cores
// (vcpu < knob[0], default 4) are boosted so slow cores do not gate handoff.
StatusOr<TunablePolicy> MakeAmpFastCorePolicy();

// §3.1.1 "Exposing scheduler semantics": in an oversubscribed VM, prefer
// waiters whose vCPU the hypervisor marked non-preemptible (it will finish
// its critical section without a double-scheduling stall). Hypervisor-side
// code annotates ThreadContext::preemptible; the policy reads it via the
// task-indexed helper.
StatusOr<TunablePolicy> MakeVcpuPreemptionPolicy();

// §3.1.1 "Adaptable parking/wake-up strategy": park after knob[0] spin
// iterations (default 256). knob[0] = ~0 means never park.
StatusOr<TunablePolicy> MakeAdaptiveParkingPolicy();

// Fairness guard composing with any shuffling policy: skip shuffling when
// the shuffler itself has already waited longer than knob[0] ns
// (default 10ms) — bounds how much reordering a long-suffering head does
// for others.
StatusOr<TunablePolicy> MakeShuffleFairnessGuard();

// §3.1.1 lock switching for readers-writer locks: rw_mode returns knob[0]
// (an RwMode value), so userspace flips a live lock between neutral,
// reader-biased (BRAVO) and writer-only regimes by poking the map. This is
// "Concord-BRAVO" in Figure 2(a).
StatusOr<TunablePolicy> MakeRwSwitchPolicy(RwMode initial_mode);

// §3.2 dynamic lock profiling entirely in BPF: the four taps count
// invocations into a per-CPU map (slots 0..3 = acquire/contended/acquired/
// release). Demonstrates BPF-side profiling as opposed to the built-in
// native profiler; read results via SumTapCounts.
struct BpfProfilerPolicy {
  PolicySpec spec;
  std::shared_ptr<PerCpuArrayMap> counters;

  std::uint64_t Count(HookKind tap) const;
};
StatusOr<BpfProfilerPolicy> MakeBpfProfilerPolicy();

// Per-task-class acquisition census on a per-CPU hash map: the kLockAcquire
// tap counts acquisitions keyed by the caller's task_class annotation, each
// CPU into its own value slot — keyed telemetry with zero cross-CPU cache
// traffic on the count itself. Read with CountForClass (cross-CPU sum) or by
// walking `census` directly.
struct LockCensusPolicy {
  PolicySpec spec;
  std::shared_ptr<PerCpuHashMap> census;

  std::uint64_t CountForClass(std::uint64_t task_class) const;
};
StatusOr<LockCensusPolicy> MakeLockCensusPolicy(std::uint32_t max_classes = 64);

}  // namespace concord

#endif  // SRC_CONCORD_POLICIES_H_
