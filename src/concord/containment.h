// Policy containment — crash-only semantics for attached policies.
//
// The verifier (layer 1) proves a policy terminates and cannot corrupt
// memory; the lock's static bounds (layer 2: shuffle-round cap, waiter-bypass
// cap, queue recount) limit how unfair any single decision can be. This
// module is layer 3: runtime containment. Every attached policy carries a
// health state:
//
//   ACTIVE --fault--> SUSPECT --fault--> QUARANTINED --backoff elapsed-->
//   PROBATION --clean interval--> ACTIVE
//                     PROBATION --fault--> QUARANTINED (backoff doubles)
//   QUARANTINED x (max_quarantines+1) --> BLACKLISTED (never re-attached)
//
// Quarantining detaches the policy's hook table (the lock reverts to stock
// behaviour; profiling stays) but *parks the spec* so probation can re-attach
// it without the controller's involvement. Three fault sources feed the
// machine, replacing their previous ad-hoc responses:
//   - FairnessWatchdog violations (src/concord/safety.h), previously a
//     silent one-shot detach;
//   - hook runtime-budget overruns and dispatch faults, harvested from
//     HookBudgetState trip flags (src/concord/hooks.h) — the hot path never
//     detaches (it runs inside an RCU read section where a synchronize would
//     deadlock), it only raises a flag that Poll() collects;
//   - JIT compile failures at attach, recorded as informational events (the
//     program interprets; no state change).
//
// Lock ordering: the registry's mutex may be held while calling into
// Concord (which takes its own mutex); Concord never calls back into this
// registry while holding its mutex. All timestamps come from ClockNowNs()
// so tests drive backoff schedules with a FakeClock instead of sleeping.

#ifndef SRC_CONCORD_CONTAINMENT_H_
#define SRC_CONCORD_CONTAINMENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"

namespace concord {

enum class PolicyHealth : std::uint8_t {
  kActive,       // attached, no recent faults
  kSuspect,      // faulted recently; next fault within the window quarantines
  kQuarantined,  // detached; spec parked; waiting out the backoff
  kProbation,    // re-attached; must stay clean to return to kActive
  kBlacklisted,  // exhausted max_quarantines; detached permanently
};

enum class ContainmentFault : std::uint8_t {
  kNone,
  kFairnessViolation,   // from FairnessWatchdog
  kBudgetOverrun,       // hook ran past its runtime budget too often
  kDispatchFault,       // helper/map/JIT fault observed inside dispatch
  kJitCompileFallback,  // informational: program fell back to interpreter
};

enum class ContainmentAction : std::uint8_t {
  kNone,           // recorded, no state change
  kMarkedSuspect,  // ACTIVE -> SUSPECT
  kQuarantined,    // * -> QUARANTINED (policy detached, spec parked)
  kReattached,     // QUARANTINED -> PROBATION (backoff elapsed)
  kRecovered,      // PROBATION -> ACTIVE (clean interval) or SUSPECT decay
  kBlacklisted,    // QUARANTINED -> BLACKLISTED
};

const char* PolicyHealthName(PolicyHealth health);
const char* ContainmentFaultName(ContainmentFault fault);
const char* ContainmentActionName(ContainmentAction action);

struct ContainmentEvent {
  std::uint64_t time_ns = 0;
  std::uint64_t lock_id = 0;
  std::string policy_name;
  ContainmentFault fault = ContainmentFault::kNone;
  ContainmentAction action = ContainmentAction::kNone;
  std::string detail;

  std::string Summary() const;
};

struct ContainmentConfig {
  // Faults within kSuspect needed to quarantine (counting the one that made
  // the policy suspect). <= 1 quarantines on the first fault.
  std::uint32_t quarantine_threshold = 2;

  // A suspect policy with no further faults for this long returns to kActive.
  std::uint64_t suspect_decay_ns = 1'000'000'000;  // 1s

  // Probation re-attach backoff: initial, multiplier per successive
  // quarantine, and cap.
  std::uint64_t initial_backoff_ns = 100'000'000;  // 100ms
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_ns = 60'000'000'000;  // 60s

  // Quarantines beyond this count blacklist the policy permanently.
  std::uint32_t max_quarantines = 4;

  // A probation policy clean for this long returns to kActive (fault and
  // quarantine counters reset).
  std::uint64_t probation_success_ns = 1'000'000'000;  // 1s

  // When false, quarantined policies stay detached until the controller
  // re-attaches manually; the backoff schedule is still tracked.
  bool auto_reattach = true;
};

// Snapshot of one policy's containment state, for tests and tooling.
struct PolicyStatus {
  PolicyHealth health = PolicyHealth::kActive;
  std::string policy_name;
  std::uint32_t fault_count = 0;
  std::uint32_t quarantine_count = 0;
  std::uint64_t backoff_ns = 0;
  std::uint64_t probation_due_ns = 0;
};

class ContainmentRegistry {
 public:
  static ContainmentRegistry& Global();

  void SetConfig(const ContainmentConfig& config);
  ContainmentConfig config() const;

  // --- fault sources ---------------------------------------------------------

  // Generic fault entry point: advances the state machine for the policy on
  // `lock_id` (no-op event if the lock has no tracked policy).
  void ReportFault(std::uint64_t lock_id, ContainmentFault fault,
                   const std::string& detail);

  // FairnessWatchdog feed. `quarantine_now` skips kSuspect — a
  // starvation-grade wait is already past the point of a warning.
  void OnFairnessViolation(std::uint64_t lock_id, std::uint64_t observed_ns,
                           bool quarantine_now);

  // Attach-time JIT fallback: informational event only; the policy runs on
  // the interpreter and is otherwise healthy.
  void NoteJitFallback(std::uint64_t lock_id, const std::string& policy_name,
                       std::uint32_t failed_programs);

  // --- lifecycle plumbing (called by Concord, never under Concord's mutex) ---

  void OnManualAttach(std::uint64_t lock_id, const std::string& policy_name);
  void OnManualDetach(std::uint64_t lock_id);
  void Forget(std::uint64_t lock_id);

  // --- the poll step ---------------------------------------------------------

  // One containment pass: harvests HookBudgetState trips from Concord,
  // decays suspects, re-attaches quarantined policies whose backoff elapsed
  // (probation), and promotes clean probation policies back to kActive.
  // Returns the events generated by this pass. Deterministic under a
  // FakeClock; the chaos soak calls it directly.
  std::vector<ContainmentEvent> Poll();

  // Background poller running Poll() every `poll_interval_ms`.
  void StartWorker(std::uint64_t poll_interval_ms = 10);
  void StopWorker();

  // --- introspection ---------------------------------------------------------

  std::optional<PolicyStatus> StatusOf(std::uint64_t lock_id) const;
  // kActive when the lock has no tracked policy.
  PolicyHealth HealthOf(std::uint64_t lock_id) const;
  std::vector<ContainmentEvent> events() const;
  std::string Report() const;

  void ResetForTest();

 private:
  struct State {
    std::string policy_name;
    PolicyHealth health = PolicyHealth::kActive;
    std::uint32_t fault_count = 0;
    std::uint32_t quarantine_count = 0;
    std::uint64_t last_fault_ns = 0;
    std::uint64_t backoff_ns = 0;
    std::uint64_t probation_due_ns = 0;
    std::uint64_t probation_since_ns = 0;
  };

  ContainmentRegistry() = default;

  // Pre: mu_ held. Appends generated events to events_ and `fresh`.
  void HandleFaultLocked(std::uint64_t lock_id, ContainmentFault fault,
                         const std::string& detail, bool quarantine_now,
                         std::vector<ContainmentEvent>* fresh);
  void QuarantineLocked(std::uint64_t lock_id, State& state,
                        ContainmentFault fault, const std::string& detail,
                        std::vector<ContainmentEvent>* fresh);
  void RecordLocked(std::uint64_t lock_id, const std::string& policy_name,
                    ContainmentFault fault, ContainmentAction action,
                    const std::string& detail,
                    std::vector<ContainmentEvent>* fresh);

  void WorkerLoop(std::uint64_t poll_interval_ms);

  mutable std::mutex mu_;
  ContainmentConfig config_;
  std::map<std::uint64_t, State> states_;
  std::vector<ContainmentEvent> events_;
  std::thread worker_;
  std::atomic<bool> worker_running_{false};
};

}  // namespace concord

#endif  // SRC_CONCORD_CONTAINMENT_H_
