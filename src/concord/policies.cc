#include "src/concord/policies.h"

#include <cstdio>

#include "src/bpf/assembler.h"
#include "src/topology/topology.h"

namespace concord {
namespace {

// Context offsets (see src/concord/hooks.h). Kept as named constants so the
// assembly below reads like the struct definitions.
//   CmpNodeCtx:        shuffler @0, curr @40
//   field offsets within a ShflWaiterView:
//     wait_ns 0, cs_ewma_ns 8, socket 16, vcpu 20, priority 24,
//     task_class 28, locks_held 32, task_id 36

// Builds a TunablePolicy with one program attached at `kind`.
StatusOr<TunablePolicy> MakeSingleProgramPolicy(
    const std::string& name, HookKind kind, const std::string& asm_source,
    std::shared_ptr<ArrayMap> knobs) {
  std::vector<BpfMap*> maps;
  if (knobs != nullptr) {
    maps.push_back(knobs.get());
  }
  auto program = AssembleProgram(name, asm_source, &DescriptorFor(kind), maps);
  if (!program.ok()) {
    return program.status();
  }
  TunablePolicy policy;
  policy.spec.name = name;
  CONCORD_RETURN_IF_ERROR(policy.spec.AddProgram(kind, std::move(*program)));
  if (knobs != nullptr) {
    policy.spec.maps.push_back(knobs);
    policy.knobs = std::move(knobs);
  }
  return policy;
}

std::shared_ptr<ArrayMap> MakeKnobMap(const std::string& name,
                                      std::uint64_t initial) {
  auto map = std::make_shared<ArrayMap>(name, sizeof(std::uint64_t), 1);
  CONCORD_CHECK(map->UpdateTyped(std::uint32_t{0}, initial).ok());
  return map;
}

// Shared prologue: save ctx in r6, load knob[0] into r3 (falls through to
// label `nope` returning 0 when the map is somehow empty).
constexpr char kLoadKnobPrologue[] = R"(
  mov r6, r1            ; save ctx across the call
  stw [r10-4], 0        ; key = 0
  mov r1, 0             ; map index 0
  mov r2, r10
  add r2, -4
  call map_lookup_elem
  jeq r0, 0, nope
  ldxdw r3, [r0+0]      ; r3 = knob value
)";

}  // namespace

StatusOr<TunablePolicy> MakeNumaGroupingPolicy() {
  const char* source = R"(
    ldxw r2, [r1+16]    ; shuffler.socket
    ldxw r3, [r1+56]    ; curr.socket
    jeq r2, r3, yes
    mov r0, 0
    exit
  yes:
    mov r0, 1
    exit
  )";
  return MakeSingleProgramPolicy("numa_grouping", HookKind::kCmpNode, source,
                                 nullptr);
}

StatusOr<TunablePolicy> MakePriorityBoostPolicy() {
  const std::string source = std::string(kLoadKnobPrologue) + R"(
    ldxw r4, [r6+64]    ; curr.priority
    jge r4, r3, yes     ; priority >= threshold => boost
  nope:
    mov r0, 0
    exit
  yes:
    mov r0, 1
    exit
  )";
  return MakeSingleProgramPolicy("priority_boost", HookKind::kCmpNode, source,
                                 MakeKnobMap("priority_threshold", 1));
}

StatusOr<TunablePolicy> MakeLockInheritancePolicy() {
  const std::string source = std::string(kLoadKnobPrologue) + R"(
    ldxw r4, [r6+72]    ; curr.locks_held
    jge r4, r3, yes     ; nested acquirer => boost
  nope:
    mov r0, 0
    exit
  yes:
    mov r0, 1
    exit
  )";
  return MakeSingleProgramPolicy("lock_inheritance", HookKind::kCmpNode, source,
                                 MakeKnobMap("min_locks_held", 1));
}

StatusOr<TunablePolicy> MakeSclPolicy() {
  const std::string source = std::string(kLoadKnobPrologue) + R"(
    ldxdw r4, [r6+48]   ; curr.cs_ewma_ns
    jlt r4, r3, yes     ; short critical sections => boost
  nope:
    mov r0, 0
    exit
  yes:
    mov r0, 1
    exit
  )";
  auto policy = MakeSingleProgramPolicy("scheduler_cooperative",
                                        HookKind::kCmpNode, source,
                                        MakeKnobMap("cs_ewma_limit_ns", 1'000'000));
  if (policy.ok()) {
    policy->spec.needs_hold_accounting = true;  // reads cs_ewma_ns
  }
  return policy;
}

StatusOr<TunablePolicy> MakeAmpFastCorePolicy() {
  const std::string source = std::string(kLoadKnobPrologue) + R"(
    ldxw r4, [r6+60]    ; curr.vcpu
    jlt r4, r3, yes     ; fast core => boost
  nope:
    mov r0, 0
    exit
  yes:
    mov r0, 1
    exit
  )";
  return MakeSingleProgramPolicy("amp_fast_core", HookKind::kCmpNode, source,
                                 MakeKnobMap("fast_core_count", 4));
}

StatusOr<TunablePolicy> MakeVcpuPreemptionPolicy() {
  const char* source = R"(
    ldxw r1, [r1+76]          ; curr.task_id
    call get_task_preemptible
    jeq  r0, 0, yes           ; pinned/running vCPU => boost
    mov  r0, 0
    exit
  yes:
    mov  r0, 1
    exit
  )";
  return MakeSingleProgramPolicy("vcpu_preemption", HookKind::kCmpNode, source,
                                 nullptr);
}

StatusOr<TunablePolicy> MakeAdaptiveParkingPolicy() {
  const std::string source = std::string(kLoadKnobPrologue) + R"(
    ldxw r4, [r6+40]    ; spin_iterations
    jge r4, r3, park
  nope:
    mov r0, 0
    exit
  park:
    mov r0, 1
    exit
  )";
  return MakeSingleProgramPolicy("adaptive_parking", HookKind::kScheduleWaiter,
                                 source, MakeKnobMap("park_after_spins", 256));
}

StatusOr<TunablePolicy> MakeShuffleFairnessGuard() {
  const std::string source = std::string(kLoadKnobPrologue) + R"(
    ldxdw r4, [r6+0]    ; shuffler.wait_ns
    jgt r4, r3, skip    ; head waited too long already => stop shuffling
  nope:
    mov r0, 0
    exit
  skip:
    mov r0, 1
    exit
  )";
  return MakeSingleProgramPolicy("shuffle_fairness_guard", HookKind::kSkipShuffle,
                                 source, MakeKnobMap("max_head_wait_ns", 10'000'000));
}

StatusOr<TunablePolicy> MakeRwSwitchPolicy(RwMode initial_mode) {
  const char* source = R"(
    stw [r10-4], 0
    mov r1, 0
    mov r2, r10
    add r2, -4
    call map_lookup_elem
    jeq r0, 0, dflt
    ldxdw r0, [r0+0]    ; mode from the knob map
    exit
  dflt:
    mov r0, 0           ; neutral
    exit
  )";
  return MakeSingleProgramPolicy(
      "rw_switch", HookKind::kRwMode, source,
      MakeKnobMap("rw_mode", static_cast<std::uint64_t>(initial_mode)));
}

StatusOr<BpfProfilerPolicy> MakeBpfProfilerPolicy() {
  auto counters = std::make_shared<PerCpuArrayMap>(
      "tap_counters", sizeof(std::uint64_t), 4,
      MachineTopology::Global().total_cpus());

  auto make_tap = [&](const char* name, int slot) -> StatusOr<Program> {
    char source[512];
    std::snprintf(source, sizeof(source), R"(
      stw [r10-4], %d
      mov r1, 0
      mov r2, r10
      add r2, -4
      call map_lookup_elem
      jeq r0, 0, out
      mov r2, 1
      xadddw [r0+0], r2     ; atomic: taps race across CPUs on shared slots
    out:
      mov r0, 0
      exit
    )",
                  slot);
    return AssembleProgram(name, source,
                           &DescriptorFor(HookKind::kLockAcquire),
                           {counters.get()});
  };

  BpfProfilerPolicy policy;
  policy.spec.name = "bpf_profiler";
  policy.counters = counters;
  policy.spec.maps.push_back(counters);

  struct TapSlot {
    HookKind kind;
    const char* name;
    int slot;
  };
  const TapSlot taps[] = {{HookKind::kLockAcquire, "tap_acquire", 0},
                          {HookKind::kLockContended, "tap_contended", 1},
                          {HookKind::kLockAcquired, "tap_acquired", 2},
                          {HookKind::kLockRelease, "tap_release", 3}};
  for (const TapSlot& tap : taps) {
    auto program = make_tap(tap.name, tap.slot);
    if (!program.ok()) {
      return program.status();
    }
    CONCORD_RETURN_IF_ERROR(policy.spec.AddProgram(tap.kind, std::move(*program)));
  }
  return policy;
}

std::uint64_t BpfProfilerPolicy::Count(HookKind tap) const {
  int slot;
  switch (tap) {
    case HookKind::kLockAcquire:
      slot = 0;
      break;
    case HookKind::kLockContended:
      slot = 1;
      break;
    case HookKind::kLockAcquired:
      slot = 2;
      break;
    case HookKind::kLockRelease:
      slot = 3;
      break;
    default:
      return 0;
  }
  return counters->AggregateU64(static_cast<std::uint32_t>(slot));
}

StatusOr<LockCensusPolicy> MakeLockCensusPolicy(std::uint32_t max_classes) {
  auto census = std::make_shared<PerCpuHashMap>(
      "class_census", sizeof(std::uint64_t), sizeof(std::uint64_t), max_classes,
      MachineTopology::Global().total_cpus());

  // Count into the calling CPU's slot; first sight of a class inserts it via
  // map_update_elem (program-side, so only this CPU's slot takes the 1 —
  // other CPUs' slots start zeroed).
  const char* source = R"(
    call get_task_class
    stxdw [r10-8], r0     ; key = task_class
    mov r1, 0
    mov r2, r10
    add r2, -8
    call map_lookup_elem
    jeq r0, 0, miss
    mov r2, 1
    xadddw [r0+0], r2     ; per-CPU slot: no cross-CPU contention
    mov r0, 0
    exit
  miss:
    stdw [r10-16], 1
    mov r1, 0
    mov r2, r10
    add r2, -8
    mov r3, r10
    add r3, -16
    call map_update_elem
    mov r0, 0
    exit
  )";
  auto program = AssembleProgram("census_acquire", source,
                                 &DescriptorFor(HookKind::kLockAcquire),
                                 {census.get()});
  if (!program.ok()) {
    return program.status();
  }

  LockCensusPolicy policy;
  policy.spec.name = "lock_census";
  policy.census = census;
  policy.spec.maps.push_back(census);
  CONCORD_RETURN_IF_ERROR(
      policy.spec.AddProgram(HookKind::kLockAcquire, std::move(*program)));
  return policy;
}

std::uint64_t LockCensusPolicy::CountForClass(std::uint64_t task_class) const {
  return census->AggregateU64(&task_class);
}

}  // namespace concord
