// Runtime safety monitors (§4.2, §6).
//
// The verifier proves a policy cannot corrupt memory or loop forever; it
// cannot prove the policy is *fair*. Table 1 marks cmp_node/skip_shuffle
// with exactly this hazard. The lock already enforces the static shuffle-
// round bound and the queue-integrity recount; this module adds the last
// line of defence the paper's discussion calls for: a watchdog that observes
// a profiled lock at runtime and — if a policy starves waiters past a
// configured bound — detaches it, reverting the lock to stock FIFO.

#ifndef SRC_CONCORD_SAFETY_H_
#define SRC_CONCORD_SAFETY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/concord/concord.h"

namespace concord {

struct WatchdogConfig {
  // A completed acquisition that waited longer than this indicates
  // starvation-grade unfairness.
  std::uint64_t max_wait_ns = 1'000'000'000;  // 1s

  // Also flag when the p99 wait exceeds this multiple of the p50 wait
  // (skew-based detection; 0 disables).
  double p99_over_p50_limit = 0.0;

  // Detach the offending lock's policy automatically on violation.
  bool auto_detach = true;

  // Route violations through the containment registry
  // (src/concord/containment.h): the violation becomes a recorded containment
  // event and, with auto_detach, a quarantine with probation re-attach —
  // instead of the legacy silent one-shot detach (use_containment = false).
  bool use_containment = true;

  std::uint64_t poll_interval_ms = 10;
};

class FairnessWatchdog {
 public:
  enum class ViolationKind {
    kMaxWaitExceeded,
    kWaitSkew,
  };

  struct Violation {
    std::uint64_t lock_id = 0;
    ViolationKind kind = ViolationKind::kMaxWaitExceeded;
    std::uint64_t observed_ns = 0;
    bool detached = false;
  };

  explicit FairnessWatchdog(WatchdogConfig config = WatchdogConfig{});
  ~FairnessWatchdog();
  FairnessWatchdog(const FairnessWatchdog&) = delete;
  FairnessWatchdog& operator=(const FairnessWatchdog&) = delete;

  // Starts watching `lock_id`. Enables Concord profiling on it (the stats
  // feed the detector). Idempotent.
  Status Watch(std::uint64_t lock_id);
  void Unwatch(std::uint64_t lock_id);

  // Runs the background poller until Stop()/destruction.
  void Start();
  void Stop();

  // One synchronous detection pass (what the poller runs); exposed for
  // deterministic tests and for callers that poll on their own schedule.
  std::vector<Violation> CheckOnce();

  std::vector<Violation> violations() const;

 private:
  struct WatchState {
    std::uint64_t lock_id = 0;
    std::uint64_t last_flagged_max_ns = 0;
  };

  void PollLoop();

  const WatchdogConfig config_;
  mutable std::mutex mu_;
  std::vector<WatchState> watched_;
  std::vector<Violation> violations_;
  std::thread poller_;
  std::atomic<bool> running_{false};
};

}  // namespace concord

#endif  // SRC_CONCORD_SAFETY_H_
