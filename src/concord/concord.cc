#include "src/concord/concord.h"

#include "src/base/fault.h"
#include "src/base/json.h"
#include "src/base/time.h"
#include "src/base/trace.h"
#include "src/bpf/jit/jit.h"
#include "src/concord/autotune/controller.h"
#include "src/concord/containment.h"
#include "src/concord/trace_export.h"
#include "src/rcu/rcu.h"

namespace concord {

// The unit actually installed into a lock: a hook table whose slots are
// trampolines into (a) the user's native hooks, (b) the verified BPF chains,
// and (c) the profiler taps. Owned via shared_ptr by the registry entry;
// the previous table is released only after an RCU grace period.
struct CompiledPolicy {
  std::uint64_t lock_id = 0;
  std::shared_ptr<const PolicySpec> spec;  // nullable
  std::optional<ShflHooks> native;         // nullable user native hooks
  std::optional<RwHooks> native_rw;
  ShardedLockProfileStats* stats = nullptr;  // nullable; owned by the entry
  // Budget accounting, owned by the entry; outlives this table (the entry
  // only swaps its budget after the RCU grace period retiring this table).
  HookBudgetState* budget = nullptr;

  ShflHooks shfl_table;
  RwHooks rw_table;

  const HookChain* ChainFor(HookKind kind) const {
    if (spec == nullptr) {
      return nullptr;
    }
    const HookChain& chain = spec->ChainFor(kind);
    return chain.empty() ? nullptr : &chain;
  }
};

namespace {

// Chains dispatch through RunPolicyProgram: a program compiled at attach
// time runs native, anything else falls back to the interpreter.
std::uint64_t RunDecisionChain(const HookChain& chain, void* ctx) {
  switch (chain.combinator) {
    case Combinator::kFirstNonZero: {
      for (const Program& program : chain.programs) {
        const std::uint64_t result = RunPolicyProgram(program, ctx);
        if (result != 0) {
          return result;
        }
      }
      return 0;
    }
    case Combinator::kAll: {
      for (const Program& program : chain.programs) {
        if (RunPolicyProgram(program, ctx) == 0) {
          return 0;
        }
      }
      return 1;
    }
    case Combinator::kAny: {
      for (const Program& program : chain.programs) {
        if (RunPolicyProgram(program, ctx) != 0) {
          return 1;
        }
      }
      return 0;
    }
  }
  return 0;
}

void RunTapChain(const HookChain* chain, std::uint64_t lock_id, HookKind kind) {
  if (chain == nullptr) {
    return;
  }
  ProfileCtx ctx;
  ctx.lock_id = lock_id;
  ctx.now_ns = MonotonicNowNs();
  ctx.hook = static_cast<std::uint32_t>(kind);
  ctx.reserved = 0;
  for (const Program& program : chain->programs) {
    RunPolicyProgram(program, &ctx);
  }
}

// --- dispatch accounting -----------------------------------------------------
//
// Times one policy invocation against its runtime budget and attributes any
// fault-injection fires on this thread to the policy. The destructor only
// flags (HookBudgetState::tripped); it never detaches — trampolines run
// inside an RCU read section where waiting out a grace period would
// deadlock. ContainmentRegistry::Poll() harvests the flag asynchronously.

#if CONCORD_HOOK_BUDGETS
class DispatchScope {
 public:
  DispatchScope(CompiledPolicy* cp, HookKind kind)
      : budget_(cp->budget), stats_(cp->stats), kind_(kind) {
    if (budget_ == nullptr) {
      return;
    }
    if (budget_->budget_ns != 0) {
      start_ns_ = ClockNowNs();
    }
#if CONCORD_FAULT_INJECTION
    fires_before_ = FaultRegistry::ThreadFires();
#endif
  }

  ~DispatchScope() {
    if (budget_ == nullptr) {
      return;
    }
#if CONCORD_FAULT_INJECTION
    if (FaultRegistry::ThreadFires() != fires_before_) {
      budget_->AccountFault();
    }
#endif
    const std::uint64_t elapsed_ns =
        budget_->budget_ns != 0 ? ElapsedSinceNs(start_ns_) : 0;
    budget_->AccountDispatch(kind_, elapsed_ns, stats_);
  }

  DispatchScope(const DispatchScope&) = delete;
  DispatchScope& operator=(const DispatchScope&) = delete;

 private:
  HookBudgetState* budget_;
  ShardedLockProfileStats* stats_;
  HookKind kind_;
  std::uint64_t start_ns_ = 0;
#if CONCORD_FAULT_INJECTION
  std::uint64_t fires_before_ = 0;
#endif
};
#else   // !CONCORD_HOOK_BUDGETS
class DispatchScope {
 public:
  DispatchScope(CompiledPolicy*, HookKind) {}
};
#endif  // CONCORD_HOOK_BUDGETS

// Flight-recorder tap: one kPolicyDispatch event per policy hook invocation
// (arg = the HookKind), so a trace shows exactly where attached-policy time
// goes. Gated inside TraceRecord; free when the lock is not being traced.
inline void TraceDispatch(const CompiledPolicy* cp, HookKind kind) {
  TraceRecord(cp->lock_id, TraceEventKind::kPolicyDispatch,
              static_cast<std::uint64_t>(kind));
}

// --- ShflLock trampolines ----------------------------------------------------

bool CmpNodeTrampoline(void* user_data, const ShflWaiterView& shuffler,
                       const ShflWaiterView& curr) {
  auto* cp = static_cast<CompiledPolicy*>(user_data);
  TraceDispatch(cp, HookKind::kCmpNode);
  DispatchScope scope(cp, HookKind::kCmpNode);
  if (cp->native.has_value() && cp->native->cmp_node != nullptr) {
    return cp->native->cmp_node(cp->native->user_data, shuffler, curr);
  }
  if (const HookChain* chain = cp->ChainFor(HookKind::kCmpNode)) {
    CmpNodeCtx ctx{shuffler, curr};
    return RunDecisionChain(*chain, &ctx) != 0;
  }
  return false;
}

bool SkipShuffleTrampoline(void* user_data, const ShflWaiterView& shuffler) {
  auto* cp = static_cast<CompiledPolicy*>(user_data);
  TraceDispatch(cp, HookKind::kSkipShuffle);
  DispatchScope scope(cp, HookKind::kSkipShuffle);
  if (cp->native.has_value() && cp->native->skip_shuffle != nullptr) {
    return cp->native->skip_shuffle(cp->native->user_data, shuffler);
  }
  if (const HookChain* chain = cp->ChainFor(HookKind::kSkipShuffle)) {
    SkipShuffleCtx ctx{shuffler};
    return RunDecisionChain(*chain, &ctx) != 0;
  }
  return false;
}

bool ScheduleWaiterTrampoline(void* user_data, const ShflWaiterView& waiter,
                              std::uint32_t spin_iterations) {
  auto* cp = static_cast<CompiledPolicy*>(user_data);
  TraceDispatch(cp, HookKind::kScheduleWaiter);
  DispatchScope scope(cp, HookKind::kScheduleWaiter);
  if (cp->native.has_value() && cp->native->schedule_waiter != nullptr) {
    return cp->native->schedule_waiter(cp->native->user_data, waiter,
                                       spin_iterations);
  }
  if (const HookChain* chain = cp->ChainFor(HookKind::kScheduleWaiter)) {
    ScheduleWaiterCtx ctx{waiter, spin_iterations, 0};
    return RunDecisionChain(*chain, &ctx) != 0;
  }
  return spin_iterations > 128;  // lock default
}

template <HookKind kKind>
void ProfileTapTrampoline(void* user_data, std::uint64_t lock_id) {
  auto* cp = static_cast<CompiledPolicy*>(user_data);
  {
    // Scope covers only the policy's own work (native tap + BPF chain), not
    // the framework profiler below — the budget bounds the *policy*.
    DispatchScope scope(cp, kKind);
    if (cp->native.has_value()) {
      void (*tap)(void*, std::uint64_t) = nullptr;
      if constexpr (kKind == HookKind::kLockAcquire) {
        tap = cp->native->lock_acquire;
      } else if constexpr (kKind == HookKind::kLockContended) {
        tap = cp->native->lock_contended;
      } else if constexpr (kKind == HookKind::kLockAcquired) {
        tap = cp->native->lock_acquired;
      } else {
        tap = cp->native->lock_release;
      }
      if (tap != nullptr) {
        TraceDispatch(cp, kKind);
        tap(cp->native->user_data, lock_id);
      }
    }
    if (const HookChain* chain = cp->ChainFor(kKind)) {
      TraceDispatch(cp, kKind);
      RunTapChain(chain, lock_id, kKind);
    }
  }
  if (cp->stats != nullptr) {
    if constexpr (kKind == HookKind::kLockAcquire) {
      ProfilerTaps::OnAcquire(*cp->stats, lock_id);
    } else if constexpr (kKind == HookKind::kLockContended) {
      ProfilerTaps::OnContended(*cp->stats, lock_id);
    } else if constexpr (kKind == HookKind::kLockAcquired) {
      ProfilerTaps::OnAcquired(*cp->stats, lock_id);
    } else {
      ProfilerTaps::OnRelease(*cp->stats, lock_id);
    }
  }
}

// --- RW trampolines ------------------------------------------------------------

std::uint32_t RwModeTrampoline(void* user_data) {
  auto* cp = static_cast<CompiledPolicy*>(user_data);
  TraceDispatch(cp, HookKind::kRwMode);
  DispatchScope scope(cp, HookKind::kRwMode);
  if (cp->native_rw.has_value() && cp->native_rw->rw_mode != nullptr) {
    return cp->native_rw->rw_mode(cp->native_rw->user_data);
  }
  if (const HookChain* chain = cp->ChainFor(HookKind::kRwMode)) {
    RwModeCtx ctx{cp->lock_id};
    return static_cast<std::uint32_t>(RunDecisionChain(*chain, &ctx));
  }
  return static_cast<std::uint32_t>(RwMode::kNeutral);
}

template <HookKind kKind>
void RwProfileTapTrampoline(void* user_data, std::uint64_t lock_id) {
  auto* cp = static_cast<CompiledPolicy*>(user_data);
  {
    DispatchScope scope(cp, kKind);
    if (cp->native_rw.has_value()) {
      void (*tap)(void*, std::uint64_t) = nullptr;
      if constexpr (kKind == HookKind::kLockAcquire) {
        tap = cp->native_rw->lock_acquire;
      } else if constexpr (kKind == HookKind::kLockContended) {
        tap = cp->native_rw->lock_contended;
      } else if constexpr (kKind == HookKind::kLockAcquired) {
        tap = cp->native_rw->lock_acquired;
      } else {
        tap = cp->native_rw->lock_release;
      }
      if (tap != nullptr) {
        TraceDispatch(cp, kKind);
        tap(cp->native_rw->user_data, lock_id);
      }
    }
    if (const HookChain* chain = cp->ChainFor(kKind)) {
      TraceDispatch(cp, kKind);
      RunTapChain(chain, lock_id, kKind);
    }
  }
  if (cp->stats != nullptr) {
    if constexpr (kKind == HookKind::kLockAcquire) {
      ProfilerTaps::OnAcquire(*cp->stats, lock_id);
    } else if constexpr (kKind == HookKind::kLockContended) {
      ProfilerTaps::OnContended(*cp->stats, lock_id);
    } else if constexpr (kKind == HookKind::kLockAcquired) {
      ProfilerTaps::OnAcquired(*cp->stats, lock_id);
    } else {
      ProfilerTaps::OnRelease(*cp->stats, lock_id);
    }
  }
}

// True if the compiled policy needs the given profiling tap slot filled.
bool NeedsTap(const CompiledPolicy& cp, HookKind kind, bool is_rw) {
  if (cp.stats != nullptr) {
    return true;
  }
  if (cp.ChainFor(kind) != nullptr) {
    return true;
  }
  if (!is_rw && cp.native.has_value()) {
    switch (kind) {
      case HookKind::kLockAcquire:
        return cp.native->lock_acquire != nullptr;
      case HookKind::kLockContended:
        return cp.native->lock_contended != nullptr;
      case HookKind::kLockAcquired:
        return cp.native->lock_acquired != nullptr;
      default:
        return cp.native->lock_release != nullptr;
    }
  }
  if (is_rw && cp.native_rw.has_value()) {
    switch (kind) {
      case HookKind::kLockAcquire:
        return cp.native_rw->lock_acquire != nullptr;
      case HookKind::kLockContended:
        return cp.native_rw->lock_contended != nullptr;
      case HookKind::kLockAcquired:
        return cp.native_rw->lock_acquired != nullptr;
      default:
        return cp.native_rw->lock_release != nullptr;
    }
  }
  return false;
}

}  // namespace

Concord& Concord::Global() {
  static Concord* instance = new Concord();
  return *instance;
}

std::uint64_t Concord::RegisterShflLock(ShflLock& lock, std::string name,
                                        std::string lock_class) {
  std::lock_guard<std::mutex> guard(mu_);
  CONCORD_CHECK(entries_.size() < kMaxLocks);
  auto entry = std::make_unique<Entry>();
  entry->kind = LockKind::kShfl;
  entry->name = std::move(name);
  entry->lock_class = std::move(lock_class);
  entry->shfl = &lock;
  entries_.push_back(std::move(entry));
  const std::uint64_t id = entries_.size();
  lock.SetLockId(id);
  return id;
}

std::uint64_t Concord::RegisterRwImpl(
    std::string name, std::string lock_class,
    std::function<const RwHooks*(const RwHooks*)> install,
    std::function<void(std::uint64_t)> set_id) {
  std::lock_guard<std::mutex> guard(mu_);
  CONCORD_CHECK(entries_.size() < kMaxLocks);
  auto entry = std::make_unique<Entry>();
  entry->kind = LockKind::kRw;
  entry->name = std::move(name);
  entry->lock_class = std::move(lock_class);
  entry->rw_install = std::move(install);
  entries_.push_back(std::move(entry));
  const std::uint64_t id = entries_.size();
  set_id(id);
  return id;
}

Concord::Entry* Concord::EntryFor(std::uint64_t lock_id) {
  if (lock_id == 0 || lock_id > entries_.size()) {
    return nullptr;
  }
  Entry* entry = entries_[lock_id - 1].get();
  return entry->kind == LockKind::kNone ? nullptr : entry;
}

const Concord::Entry* Concord::EntryFor(std::uint64_t lock_id) const {
  return const_cast<Concord*>(this)->EntryFor(lock_id);
}

Status Concord::Unregister(std::uint64_t lock_id) {
  CONCORD_RETURN_IF_ERROR(Detach(lock_id));
  {
    std::lock_guard<std::mutex> guard(mu_);
    Entry* entry = EntryFor(lock_id);
    if (entry == nullptr) {
      return NotFoundError("lock id " + std::to_string(lock_id));
    }
    // Drop profiling hooks too if they were installed.
    if (entry->current != nullptr) {
      if (entry->kind == LockKind::kShfl) {
        entry->shfl->InstallHooks(nullptr);
      } else {
        entry->rw_install(nullptr);
      }
      Rcu::Global().Synchronize();
      entry->current.reset();
    }
    TraceRegistry::Global().DisableLock(lock_id);
    entry->kind = LockKind::kNone;
    entry->shfl = nullptr;
    entry->rw_install = nullptr;
    entry->quarantined_spec.reset();
    entry->quarantined_native.reset();
    entry->quarantined_native_rw.reset();
    entry->budget.reset();
  }
  // Outside mu_: containment may hold its own mutex while calling into this
  // registry, never the other way around.
  ContainmentRegistry::Global().Forget(lock_id);
  return Status::Ok();
}

std::vector<std::uint64_t> Concord::Select(const std::string& selector) const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::uint64_t> result;
  const bool all = selector == "*";
  const bool by_class = selector.rfind("class:", 0) == 0;
  const std::string cls = by_class ? selector.substr(6) : "";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = *entries_[i];
    if (entry.kind == LockKind::kNone) {
      continue;
    }
    if (all || (by_class && entry.lock_class == cls) ||
        (!by_class && entry.name == selector)) {
      result.push_back(i + 1);
    }
  }
  return result;
}

StatusOr<std::uint64_t> Concord::Find(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i]->kind != LockKind::kNone && entries_[i]->name == name) {
      return static_cast<std::uint64_t>(i + 1);
    }
  }
  return NotFoundError("no lock named '" + name + "'");
}

std::string Concord::NameOf(std::uint64_t lock_id) const {
  std::lock_guard<std::mutex> guard(mu_);
  const Entry* entry = EntryFor(lock_id);
  return entry == nullptr ? "<unregistered>" : entry->name;
}

std::vector<Concord::LockInfo> Concord::ListLocks(
    const std::string& selector) const {
  const std::vector<std::uint64_t> ids = Select(selector);
  std::vector<LockInfo> result;
  std::lock_guard<std::mutex> guard(mu_);
  for (std::uint64_t id : ids) {
    const Entry* entry = EntryFor(id);
    if (entry == nullptr) {
      continue;
    }
    LockInfo info;
    info.lock_id = id;
    info.name = entry->name;
    info.lock_class = entry->lock_class;
    info.is_rw = entry->kind == LockKind::kRw;
    info.profiling = entry->profiling;
    info.tracing = TraceEnabled(id);
    if (entry->spec != nullptr) {
      info.has_policy = true;
      info.policy_name = entry->spec->name;
    } else if (entry->native.has_value() || entry->native_rw.has_value()) {
      info.has_policy = true;
      info.policy_name =
          entry->native_name.empty() ? "<native>" : entry->native_name;
    }
    result.push_back(std::move(info));
  }
  return result;
}

Status Concord::ReinstallLocked(std::uint64_t lock_id) {
  Entry* entry = EntryFor(lock_id);
  if (entry == nullptr) {
    return NotFoundError("lock id " + std::to_string(lock_id));
  }

  std::shared_ptr<CompiledPolicy> fresh;
  std::unique_ptr<HookBudgetState> fresh_budget;
  const bool has_payload = entry->spec != nullptr || entry->native.has_value() ||
                           entry->native_rw.has_value() || entry->profiling;
  if (has_payload) {
    fresh = std::make_shared<CompiledPolicy>();
    fresh->lock_id = lock_id;
    fresh->spec = entry->spec;
    fresh->native = entry->native;
    fresh->native_rw = entry->native_rw;
    fresh->stats = entry->profiling ? entry->stats.get() : nullptr;

#if CONCORD_HOOK_BUDGETS
    // Budget accounting rides along whenever a policy is attached and either
    // a budget is configured or fault injection is compiled in (the latter
    // needs the state purely for fault attribution). Profiling-only tables
    // carry no budget — there is no policy to contain.
    if (entry->spec != nullptr || entry->native.has_value() ||
        entry->native_rw.has_value()) {
      std::uint64_t budget_ns = 0;
      std::uint32_t trip = 8;
      if (entry->spec != nullptr) {
        budget_ns = entry->spec->hook_budget_ns;
        trip = entry->spec->hook_budget_trip;
      } else if (entry->native.has_value()) {
        budget_ns = entry->native->hook_budget_ns;
        trip = entry->native->hook_budget_trip;
      } else {
        budget_ns = entry->native_rw->hook_budget_ns;
        trip = entry->native_rw->hook_budget_trip;
      }
      if (budget_ns != 0 || CONCORD_FAULT_INJECTION) {
        fresh_budget = std::make_unique<HookBudgetState>();
        fresh_budget->budget_ns = budget_ns;
        fresh_budget->trip_overruns = trip == 0 ? 1 : trip;
        fresh->budget = fresh_budget.get();
      }
    }
#endif

    const bool is_rw = entry->kind == LockKind::kRw;
    if (!is_rw) {
      ShflHooks& t = fresh->shfl_table;
      t.user_data = fresh.get();
      const bool has_cmp =
          (fresh->native.has_value() && fresh->native->cmp_node != nullptr) ||
          fresh->ChainFor(HookKind::kCmpNode) != nullptr;
      if (has_cmp) {
        t.cmp_node = CmpNodeTrampoline;
      }
      const bool has_skip =
          (fresh->native.has_value() && fresh->native->skip_shuffle != nullptr) ||
          fresh->ChainFor(HookKind::kSkipShuffle) != nullptr;
      if (has_skip) {
        t.skip_shuffle = SkipShuffleTrampoline;
      }
      const bool has_sched =
          (fresh->native.has_value() &&
           fresh->native->schedule_waiter != nullptr) ||
          fresh->ChainFor(HookKind::kScheduleWaiter) != nullptr;
      if (has_sched) {
        t.schedule_waiter = ScheduleWaiterTrampoline;
      }
      if (NeedsTap(*fresh, HookKind::kLockAcquire, false)) {
        t.lock_acquire = ProfileTapTrampoline<HookKind::kLockAcquire>;
      }
      if (NeedsTap(*fresh, HookKind::kLockContended, false)) {
        t.lock_contended = ProfileTapTrampoline<HookKind::kLockContended>;
      }
      if (NeedsTap(*fresh, HookKind::kLockAcquired, false)) {
        t.lock_acquired = ProfileTapTrampoline<HookKind::kLockAcquired>;
      }
      if (NeedsTap(*fresh, HookKind::kLockRelease, false)) {
        t.lock_release = ProfileTapTrampoline<HookKind::kLockRelease>;
      }
      if (entry->spec != nullptr) {
        t.max_shuffle_rounds = entry->spec->max_shuffle_rounds;
        t.max_waiter_bypasses = entry->spec->max_waiter_bypasses;
        t.track_hold_time = entry->spec->needs_hold_accounting;
      } else if (fresh->native.has_value()) {
        t.max_shuffle_rounds = fresh->native->max_shuffle_rounds;
        t.max_waiter_bypasses = fresh->native->max_waiter_bypasses;
        t.track_hold_time = fresh->native->track_hold_time;
      }
      if (entry->profiling) {
        t.track_hold_time = true;
      }
    } else {
      RwHooks& t = fresh->rw_table;
      t.user_data = fresh.get();
      const bool has_mode =
          (fresh->native_rw.has_value() && fresh->native_rw->rw_mode != nullptr) ||
          fresh->ChainFor(HookKind::kRwMode) != nullptr;
      if (has_mode) {
        t.rw_mode = RwModeTrampoline;
      }
      if (NeedsTap(*fresh, HookKind::kLockAcquire, true)) {
        t.lock_acquire = RwProfileTapTrampoline<HookKind::kLockAcquire>;
      }
      if (NeedsTap(*fresh, HookKind::kLockContended, true)) {
        t.lock_contended = RwProfileTapTrampoline<HookKind::kLockContended>;
      }
      if (NeedsTap(*fresh, HookKind::kLockAcquired, true)) {
        t.lock_acquired = RwProfileTapTrampoline<HookKind::kLockAcquired>;
      }
      if (NeedsTap(*fresh, HookKind::kLockRelease, true)) {
        t.lock_release = RwProfileTapTrampoline<HookKind::kLockRelease>;
      }
    }
  }

  // Publish, wait a grace period, then let the old table die.
  std::shared_ptr<CompiledPolicy> old = entry->current;
  if (entry->kind == LockKind::kShfl) {
    entry->shfl->InstallHooks(fresh != nullptr ? &fresh->shfl_table : nullptr);
    if (entry->spec != nullptr && entry->spec->set_blocking.has_value()) {
      entry->shfl->SetBlocking(*entry->spec->set_blocking);
    }
  } else {
    entry->rw_install(fresh != nullptr ? &fresh->rw_table : nullptr);
  }
  entry->current = fresh;
  if (old != nullptr || fresh != nullptr) {
    Rcu::Global().Synchronize();
  }
  // Only after the grace period may the previous budget die: the retiring
  // table's trampolines could still have been accounting into it.
  entry->budget = std::move(fresh_budget);
  // `old` destructs here (after the grace period).
  return Status::Ok();
}

Status Concord::Attach(std::uint64_t lock_id, PolicySpec spec) {
  const std::string policy_name = spec.name;
  std::uint32_t jit_failures = 0;
  Status status;
  {
    std::lock_guard<std::mutex> guard(mu_);
    Entry* entry = EntryFor(lock_id);
    if (entry == nullptr) {
      return NotFoundError("lock id " + std::to_string(lock_id));
    }
    // Kind compatibility: rw locks take rw_mode/profile chains only; shfl
    // locks take everything except rw_mode.
    if (entry->kind == LockKind::kRw) {
      for (HookKind kind : {HookKind::kCmpNode, HookKind::kSkipShuffle,
                            HookKind::kScheduleWaiter}) {
        if (!spec.ChainFor(kind).empty()) {
          return FailedPreconditionError(
              std::string("hook ") + HookKindName(kind) +
              " cannot attach to readers-writer lock '" + entry->name + "'");
        }
      }
    } else if (!spec.ChainFor(HookKind::kRwMode).empty()) {
      return FailedPreconditionError("hook rw_mode cannot attach to mutex '" +
                                     entry->name + "'");
    }
    CONCORD_RETURN_IF_ERROR(spec.VerifyAll());
    // Compile the now-verified chains to native code (no-op when the JIT is
    // disabled; per-program failures keep the interpreter and are surfaced
    // to containment as an informational event).
    jit_failures = spec.JitCompileAll();
    entry->spec = std::make_shared<const PolicySpec>(std::move(spec));
    entry->native.reset();
    entry->native_rw.reset();
    // A manual attach supersedes anything parked by a quarantine.
    entry->quarantined_spec.reset();
    entry->quarantined_native.reset();
    entry->quarantined_native_rw.reset();
    status = ReinstallLocked(lock_id);
  }
  // Containment notifications happen outside mu_: the sanctioned lock order
  // is containment -> concord, never the reverse.
  if (status.ok()) {
    ContainmentRegistry::Global().OnManualAttach(lock_id, policy_name);
    if (jit_failures > 0) {
      ContainmentRegistry::Global().NoteJitFallback(lock_id, policy_name,
                                                    jit_failures);
    }
  }
  return status;
}

Status Concord::AttachBySelector(const std::string& selector,
                                 const PolicySpec& spec) {
  const std::vector<std::uint64_t> ids = Select(selector);
  if (ids.empty()) {
    return NotFoundError("selector '" + selector + "' matches no locks");
  }
  for (std::uint64_t id : ids) {
    PolicySpec copy = spec;
    CONCORD_RETURN_IF_ERROR(Attach(id, std::move(copy)));
  }
  return Status::Ok();
}

Status Concord::AttachNative(std::uint64_t lock_id, const ShflHooks& hooks,
                             std::string name) {
  Status status;
  {
    std::lock_guard<std::mutex> guard(mu_);
    Entry* entry = EntryFor(lock_id);
    if (entry == nullptr) {
      return NotFoundError("lock id " + std::to_string(lock_id));
    }
    if (entry->kind != LockKind::kShfl) {
      return FailedPreconditionError("'" + entry->name + "' is not a ShflLock");
    }
    entry->native = hooks;
    entry->native_name = name;
    entry->spec.reset();
    entry->native_rw.reset();
    entry->quarantined_spec.reset();
    entry->quarantined_native.reset();
    entry->quarantined_native_rw.reset();
    status = ReinstallLocked(lock_id);
  }
  if (status.ok()) {
    ContainmentRegistry::Global().OnManualAttach(lock_id, name);
  }
  return status;
}

Status Concord::AttachNativeRw(std::uint64_t lock_id, const RwHooks& hooks,
                               std::string name) {
  Status status;
  {
    std::lock_guard<std::mutex> guard(mu_);
    Entry* entry = EntryFor(lock_id);
    if (entry == nullptr) {
      return NotFoundError("lock id " + std::to_string(lock_id));
    }
    if (entry->kind != LockKind::kRw) {
      return FailedPreconditionError("'" + entry->name +
                                     "' is not a readers-writer lock");
    }
    entry->native_rw = hooks;
    entry->native_name = name;
    entry->spec.reset();
    entry->native.reset();
    entry->quarantined_spec.reset();
    entry->quarantined_native.reset();
    entry->quarantined_native_rw.reset();
    status = ReinstallLocked(lock_id);
  }
  if (status.ok()) {
    ContainmentRegistry::Global().OnManualAttach(lock_id, name);
  }
  return status;
}

Status Concord::Detach(std::uint64_t lock_id) {
  Status status;
  {
    std::lock_guard<std::mutex> guard(mu_);
    Entry* entry = EntryFor(lock_id);
    if (entry == nullptr) {
      return NotFoundError("lock id " + std::to_string(lock_id));
    }
    entry->spec.reset();
    entry->native.reset();
    entry->native_rw.reset();
    entry->quarantined_spec.reset();
    entry->quarantined_native.reset();
    entry->quarantined_native_rw.reset();
    status = ReinstallLocked(lock_id);
  }
  if (status.ok()) {
    ContainmentRegistry::Global().OnManualDetach(lock_id);
  }
  return status;
}

Status Concord::DetachForQuarantine(std::uint64_t lock_id) {
  std::lock_guard<std::mutex> guard(mu_);
  Entry* entry = EntryFor(lock_id);
  if (entry == nullptr) {
    return NotFoundError("lock id " + std::to_string(lock_id));
  }
  if (entry->spec == nullptr && !entry->native.has_value() &&
      !entry->native_rw.has_value()) {
    return FailedPreconditionError("'" + entry->name +
                                   "' has no attached policy to quarantine");
  }
  entry->quarantined_spec = std::move(entry->spec);
  entry->quarantined_native = std::move(entry->native);
  entry->quarantined_native_rw = std::move(entry->native_rw);
  entry->spec.reset();
  entry->native.reset();
  entry->native_rw.reset();
  return ReinstallLocked(lock_id);
}

Status Concord::ReattachFromQuarantine(std::uint64_t lock_id) {
  std::lock_guard<std::mutex> guard(mu_);
  Entry* entry = EntryFor(lock_id);
  if (entry == nullptr) {
    return NotFoundError("lock id " + std::to_string(lock_id));
  }
  if (entry->quarantined_spec == nullptr &&
      !entry->quarantined_native.has_value() &&
      !entry->quarantined_native_rw.has_value()) {
    return FailedPreconditionError("'" + entry->name +
                                   "' has no quarantined policy to re-attach");
  }
  entry->spec = std::move(entry->quarantined_spec);
  entry->native = std::move(entry->quarantined_native);
  entry->native_rw = std::move(entry->quarantined_native_rw);
  entry->quarantined_spec.reset();
  entry->quarantined_native.reset();
  entry->quarantined_native_rw.reset();
  return ReinstallLocked(lock_id);
}

std::string Concord::AttachedPolicyName(std::uint64_t lock_id) const {
  std::lock_guard<std::mutex> guard(mu_);
  const Entry* entry = EntryFor(lock_id);
  if (entry == nullptr) {
    return "";
  }
  if (entry->spec != nullptr) {
    return entry->spec->name;
  }
  if (entry->quarantined_spec != nullptr) {
    return entry->quarantined_spec->name;
  }
  if (entry->native.has_value() || entry->native_rw.has_value() ||
      entry->quarantined_native.has_value() ||
      entry->quarantined_native_rw.has_value()) {
    return entry->native_name.empty() ? "<native>" : entry->native_name;
  }
  return "";
}

std::vector<Concord::BudgetTrip> Concord::HarvestBudgetTrips() {
  std::vector<BudgetTrip> trips;
  std::lock_guard<std::mutex> guard(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry* entry = entries_[i].get();
    if (entry->kind == LockKind::kNone || entry->budget == nullptr) {
      continue;
    }
    if (entry->budget->tripped.exchange(0, std::memory_order_acq_rel) == 0) {
      continue;
    }
    BudgetTrip trip;
    trip.lock_id = i + 1;
    if (entry->spec != nullptr) {
      trip.policy_name = entry->spec->name;
    } else {
      trip.policy_name = entry->native_name.empty() ? "<native>"
                                                    : entry->native_name;
    }
    trip.overruns = entry->budget->overruns.load(std::memory_order_relaxed);
    trip.dispatch_faults =
        entry->budget->dispatch_faults.load(std::memory_order_relaxed);
    trip.max_observed_ns = entry->budget->max_ns.load(std::memory_order_relaxed);
    TraceRecord(trip.lock_id, TraceEventKind::kBudgetTrip, trip.overruns);
    trips.push_back(std::move(trip));
  }
  return trips;
}

const HookBudgetState* Concord::BudgetState(std::uint64_t lock_id) const {
  std::lock_guard<std::mutex> guard(mu_);
  const Entry* entry = EntryFor(lock_id);
  return entry == nullptr ? nullptr : entry->budget.get();
}

Status Concord::EnableProfiling(std::uint64_t lock_id) {
  std::lock_guard<std::mutex> guard(mu_);
  Entry* entry = EntryFor(lock_id);
  if (entry == nullptr) {
    return NotFoundError("lock id " + std::to_string(lock_id));
  }
  if (entry->stats == nullptr) {
    entry->stats = std::make_unique<ShardedLockProfileStats>();
  }
  entry->profiling = true;
  entry->profile_window_start_ns = ClockNowNs();
  return ReinstallLocked(lock_id);
}

Status Concord::EnableProfilingBySelector(const std::string& selector) {
  const std::vector<std::uint64_t> ids = Select(selector);
  if (ids.empty()) {
    return NotFoundError("selector '" + selector + "' matches no locks");
  }
  for (std::uint64_t id : ids) {
    CONCORD_RETURN_IF_ERROR(EnableProfiling(id));
  }
  return Status::Ok();
}

Status Concord::DisableProfiling(std::uint64_t lock_id) {
  std::lock_guard<std::mutex> guard(mu_);
  Entry* entry = EntryFor(lock_id);
  if (entry == nullptr) {
    return NotFoundError("lock id " + std::to_string(lock_id));
  }
  entry->profiling = false;
  return ReinstallLocked(lock_id);
}

const ShardedLockProfileStats* Concord::Stats(std::uint64_t lock_id) const {
  std::lock_guard<std::mutex> guard(mu_);
  const Entry* entry = EntryFor(lock_id);
  return entry == nullptr ? nullptr : entry->stats.get();
}

ShardedLockProfileStats* Concord::MutableStats(std::uint64_t lock_id) {
  std::lock_guard<std::mutex> guard(mu_);
  Entry* entry = EntryFor(lock_id);
  return entry == nullptr ? nullptr : entry->stats.get();
}

std::string Concord::ProfileReport(const std::string& selector) const {
  const std::vector<std::uint64_t> ids = Select(selector);
  std::string report;
  std::lock_guard<std::mutex> guard(mu_);
  for (std::uint64_t id : ids) {
    const Entry* entry = EntryFor(id);
    if (entry == nullptr || entry->stats == nullptr) {
      continue;
    }
    report += entry->name + " [" + entry->lock_class + "]: " +
              entry->stats->Summary() + "\n";
  }
  return report;
}

std::string Concord::StatsJson(const std::string& selector) const {
  const std::vector<std::uint64_t> ids = Select(selector);
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("locks").BeginArray();
  {
    std::lock_guard<std::mutex> guard(mu_);
    const std::uint64_t now_ns = ClockNowNs();
    for (std::uint64_t id : ids) {
      const Entry* entry = EntryFor(id);
      if (entry == nullptr || entry->stats == nullptr) {
        continue;
      }
      writer.BeginObject();
      writer.NumberField("lock_id", id);
      writer.Field("name", entry->name);
      writer.Field("class", entry->lock_class);
      writer.Key("window").BeginObject();
      writer.NumberField("start_ns", entry->profile_window_start_ns);
      writer.NumberField("end_ns", now_ns);
      writer.EndObject();
      writer.Key("stats");
      entry->stats->AppendJson(writer);
      if (entry->spec != nullptr && !entry->spec->maps.empty()) {
        writer.Key("policy_maps").BeginArray();
        for (const auto& map : entry->spec->maps) {
          AppendMapDumpJson(writer, *map);
        }
        writer.EndArray();
      }
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

StatusOr<std::string> Concord::MapDumpJson(const std::string& selector,
                                           const std::string& map_name) const {
  const std::vector<std::uint64_t> ids = Select(selector);
  if (ids.empty()) {
    return NotFoundError("selector '" + selector + "' matches no locks");
  }
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("locks").BeginArray();
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (std::uint64_t id : ids) {
      const Entry* entry = EntryFor(id);
      if (entry == nullptr || entry->spec == nullptr) {
        continue;
      }
      writer.BeginObject();
      writer.NumberField("lock_id", id);
      writer.Field("name", entry->name);
      writer.Field("policy", entry->spec->name);
      writer.Key("maps").BeginArray();
      for (const auto& map : entry->spec->maps) {
        if (!map_name.empty() && map->name() != map_name) {
          continue;
        }
        AppendMapDumpJson(writer, *map);
      }
      writer.EndArray();
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

Status Concord::EnableTracing(std::uint64_t lock_id) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (EntryFor(lock_id) == nullptr) {
      return NotFoundError("lock id " + std::to_string(lock_id));
    }
  }
#if !CONCORD_TRACE
  return FailedPreconditionError(
      "flight recorder compiled out (CONCORD_ENABLE_TRACE=OFF)");
#else
  TraceRegistry::Global().EnableLock(lock_id);
  return Status::Ok();
#endif
}

Status Concord::EnableTracingBySelector(const std::string& selector) {
  const std::vector<std::uint64_t> ids = Select(selector);
  if (ids.empty()) {
    return NotFoundError("selector '" + selector + "' matches no locks");
  }
  for (std::uint64_t id : ids) {
    CONCORD_RETURN_IF_ERROR(EnableTracing(id));
  }
  return Status::Ok();
}

Status Concord::DisableTracing(std::uint64_t lock_id) {
  TraceRegistry::Global().DisableLock(lock_id);
  return Status::Ok();
}

std::vector<TraceEvent> Concord::TraceEvents() const {
  return TraceRegistry::Global().Collect();
}

std::string Concord::TraceChromeJson() const {
  const std::vector<TraceEvent> events = TraceEvents();
  std::map<std::uint64_t, std::string> names;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i]->kind != LockKind::kNone) {
        names[i + 1] = entries_[i]->name;
      }
    }
  }
  return ChromeTraceJson(events, names);
}

namespace {

// CONCORD_AUTOTUNE is a kill switch, not an enable: unset means allowed.
bool AutotuneDisabledByEnv() {
  const char* env = std::getenv("CONCORD_AUTOTUNE");
  if (env == nullptr) {
    return false;
  }
  const std::string value(env);
  return value == "0" || value == "off" || value == "false";
}

}  // namespace

Status Concord::EnableAutotune(const std::string& selector) {
  return EnableAutotune(selector, AutotuneConfig{});
}

Status Concord::EnableAutotune(const std::string& selector,
                               const AutotuneConfig& config) {
  if (AutotuneDisabledByEnv()) {
    return FailedPreconditionError(
        "autotune disabled by CONCORD_AUTOTUNE environment variable");
  }
  auto& controller = AutotuneController::Global();
  CONCORD_RETURN_IF_ERROR(controller.Configure(config));
  CONCORD_RETURN_IF_ERROR(controller.EnrollSelector(selector));
  return controller.Start();
}

Status Concord::DisableAutotune() {
  AutotuneController::Global().Stop();
  return Status::Ok();
}

std::string Concord::AutotuneStatusJson() const {
  return AutotuneController::Global().StatusJson();
}

void Concord::ResetForTest() {
  // The controller thread walks registered locks; stop (and forget) it
  // before tearing the registry down under it.
  AutotuneController::Global().ResetForTest();
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i]->kind != LockKind::kNone) {
        ids.push_back(i + 1);
      }
    }
  }
  for (std::uint64_t id : ids) {
    Unregister(id);
  }
  {
    std::lock_guard<std::mutex> guard(mu_);
    entries_.clear();
  }
  TraceRegistry::Global().ResetForTest();
  ContainmentRegistry::Global().ResetForTest();
}

}  // namespace concord
