// Policy specifications — what a userspace controller hands to Concord.
//
// A PolicySpec bundles, per hook kind, an ordered chain of BPF programs plus
// a combinator saying how multiple programs compose (§6 "composing policies"
// — we provide the mechanical combinators; resolving semantic conflicts
// remains the policy author's job, as in the paper). Programs are verified
// at attach time against the hook's context descriptor and capability mask;
// a spec whose programs fail verification never reaches any lock.

#ifndef SRC_CONCORD_POLICY_H_
#define SRC_CONCORD_POLICY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/bpf/program.h"
#include "src/concord/hooks.h"

namespace concord {

// How the results of a multi-program chain combine into one decision.
enum class Combinator : std::uint8_t {
  kFirstNonZero,  // first program returning nonzero decides (default)
  kAll,           // decision is 1 iff every program returns nonzero
  kAny,           // decision is 1 iff any program returns nonzero
};

struct HookChain {
  std::vector<Program> programs;
  Combinator combinator = Combinator::kFirstNonZero;

  bool empty() const { return programs.empty(); }
};

struct PolicySpec {
  std::string name;

  // One chain per hook kind (indexed by HookKind).
  HookChain chains[kNumHookKinds];

  // Keep-alive for maps referenced by the programs. Programs hold raw
  // BpfMap*; anything those pointers refer to must be (co-)owned here unless
  // the caller guarantees a longer lifetime out of band.
  std::vector<std::shared_ptr<BpfMap>> maps;

  // ShflLock knobs applied at attach.
  std::uint32_t max_shuffle_rounds = 64;
  std::uint32_t max_waiter_bypasses = 128;  // per-waiter starvation bound
  std::optional<bool> set_blocking;

  // Request hold-time accounting (two clock reads per acquisition). Set
  // this for policies that read cs_ewma_ns / hold totals; profiling enables
  // it regardless.
  bool needs_hold_accounting = false;

  // Runtime budget per hook invocation (0 = no timing) and how many overruns
  // trip containment. See src/concord/containment.h.
  std::uint64_t hook_budget_ns = 0;
  std::uint32_t hook_budget_trip = 8;

  // Adds `program` to the chain for `kind`. Fails if the program was built
  // against the wrong context descriptor.
  Status AddProgram(HookKind kind, Program program);

  HookChain& ChainFor(HookKind kind) {
    return chains[static_cast<int>(kind)];
  }
  const HookChain& ChainFor(HookKind kind) const {
    return chains[static_cast<int>(kind)];
  }

  // Verifies every program in every chain against its hook's rules, then
  // certifies it (src/bpf/analysis/certify.h): the statically bounded worst
  // case must fit hook_budget_ns (when nonzero) and no program may do a
  // non-atomic store into a shared map. Idempotent; called by Concord at
  // attach, so no spec reaches a lock uncertified.
  Status VerifyAll();

  // Compiles every verified program to native code when the JIT is enabled
  // (Jit::Enabled()). A program that fails to compile simply keeps running
  // on the interpreter — compilation is a pure acceleration, never a
  // functional requirement. Idempotent; called by Concord at attach, after
  // VerifyAll. Returns the number of programs that fell back to the
  // interpreter (recorded by containment as an informational event).
  std::uint32_t JitCompileAll();
};

}  // namespace concord

#endif  // SRC_CONCORD_POLICY_H_
