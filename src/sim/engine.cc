#include "src/sim/engine.h"

namespace concord {

SimEngine::~SimEngine() {
  // Drop pending events first: they reference coroutine frames owned below.
  while (!queue_.empty()) {
    queue_.pop();
  }
  for (std::coroutine_handle<> root : roots_) {
    root.destroy();
  }
}

void SimEngine::Spawn(std::uint32_t cpu, SimTask<> task) {
  CONCORD_CHECK(cpu < config_.TotalCpus());
  std::coroutine_handle<> handle = task.Release();
  roots_.push_back(handle);
  ScheduleAt(now_, cpu, handle);
}

void SimEngine::ScheduleAt(std::uint64_t when, std::uint32_t cpu,
                           std::coroutine_handle<> handle) {
  CONCORD_CHECK(when >= now_);
  queue_.push(Event{when, seq_++, cpu, handle});
}

void SimEngine::Run(std::uint64_t until_ns) {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    if (event.when > until_ns) {
      break;
    }
    queue_.pop();
    now_ = event.when;
    current_cpu_ = event.cpu;
    ++events_processed_;
    event.handle.resume();
  }
  if (now_ < until_ns) {
    now_ = until_ns;
  }
}

}  // namespace concord
