// Simulated lock algorithms.
//
// Each lock is the same algorithm as its real-thread counterpart in
// src/sync, rewritten against simulated memory (src/sim/memory.h). Policy
// decisions reuse the *actual* verified BPF programs from src/concord —
// the decision logic executes on the host for semantics while its cost
// (instructions × bpf_insn_ns, plus hook dispatch) is charged in virtual
// time, so "Stock vs X vs Concord-X" comparisons carry the same meaning as
// in the paper.
//
// Modeling note (documented in DESIGN.md): ShflLock's shuffling is applied
// logically when the queue changes and charged to the *idle* queue head
// (off the critical path), exactly the paper's argument for why shuffling
// is ~free; what is charged on the critical path is hook dispatch and any
// profiling-tap programs.

#ifndef SRC_SIM_LOCKS_H_
#define SRC_SIM_LOCKS_H_

#include <deque>
#include <map>
#include <vector>
#include <functional>
#include <memory>

#include "src/bpf/program.h"
#include "src/bpf/vm.h"
#include "src/concord/hooks.h"
#include "src/sim/memory.h"
#include "src/sim/task.h"

namespace concord {

// How a policy is attached to a simulated lock, and what it costs.
struct SimPolicy {
  enum class Backend { kNone, kNative, kBpf };
  Backend backend = Backend::kNone;

  // Baseline flavour: the policy is compiled *into* the lock (the paper's
  // plain "ShflLock"/"BRAVO" bars): shuffling/bias logic runs with zero hook
  // dispatch cost.
  bool builtin = false;

  // NUMA-grouping decision used by ShflLock shuffling; when backend==kBpf
  // and cmp_program != nullptr, the real program is executed instead.
  const Program* cmp_program = nullptr;

  // Profiling taps attached (fig 2(c) worst case): charges dispatch per
  // acquire/acquired/release on the critical path, plus program cost when
  // tap_program != nullptr.
  bool taps = false;
  const Program* tap_program = nullptr;

  static SimPolicy Builtin() {
    SimPolicy policy;
    policy.builtin = true;
    return policy;
  }
  static SimPolicy Native(bool with_taps = false) {
    SimPolicy policy;
    policy.backend = Backend::kNative;
    policy.taps = with_taps;
    return policy;
  }
  static SimPolicy Bpf(const Program* cmp, bool with_taps = false,
                       const Program* tap = nullptr) {
    SimPolicy policy;
    policy.backend = Backend::kBpf;
    policy.cmp_program = cmp;
    policy.taps = with_taps;
    policy.tap_program = tap;
    return policy;
  }

  bool attached() const { return backend != Backend::kNone; }
  bool shuffles() const { return builtin || attached(); }

  // Cost of one hook invocation (dispatch + optional program interpretation).
  std::uint64_t HookCost(const SimConfig& config, const Program* program) const {
    if (!attached()) {
      return 0;
    }
    std::uint64_t cost = config.hook_dispatch_ns;
    if (backend == Backend::kBpf && program != nullptr) {
      cost += program->insns.size() * config.bpf_insn_ns;
    }
    return cost;
  }

  // Cost of one profiling-tap invocation; zero when no taps are attached.
  std::uint64_t TapCost(const SimConfig& config) const {
    if (!taps) {
      return 0;
    }
    return HookCost(config, tap_program);
  }

  // Native decision rule when no BPF program is attached.
  enum class Decision { kSameSocket, kFastCore };
  Decision decision = Decision::kSameSocket;
  std::uint32_t fast_core_count = 0;  // for kFastCore

  // Runs the cmp_node decision on the host (no sim cost — off critical path).
  // Views carry (socket, vcpu) as the real lock would populate them.
  bool CmpGroup(std::uint32_t shuffler_socket, std::uint32_t shuffler_cpu,
                std::uint32_t curr_socket, std::uint32_t curr_cpu) const {
    if (backend == Backend::kBpf && cmp_program != nullptr) {
      CmpNodeCtx ctx{};
      ctx.shuffler.socket = shuffler_socket;
      ctx.shuffler.vcpu = shuffler_cpu;
      ctx.curr.socket = curr_socket;
      ctx.curr.vcpu = curr_cpu;
      return BpfVm::Run(*cmp_program, &ctx) != 0;
    }
    if (decision == Decision::kFastCore) {
      return curr_cpu < fast_core_count;
    }
    return shuffler_socket == curr_socket;
  }
};

// --- Ticket lock ("Stock" spinlock) -----------------------------------------

class SimTicketLock {
 public:
  explicit SimTicketLock(SimEngine& engine)
      : engine_(engine), next_(engine), serving_(engine) {}

  SimTask<> Lock() {
    const std::uint64_t my = co_await next_.FetchAdd(1);
    while (true) {
      const std::uint64_t seen =
          co_await serving_.SpinUntil([my](std::uint64_t v) { return v == my; });
      if (seen == my) {
        break;
      }
    }
  }

  SimTask<> Unlock() { co_await serving_.FetchAdd(1); }

 private:
  SimEngine& engine_;
  SimWord next_;
  SimWord serving_;
};

// --- MCS queue lock -----------------------------------------------------------

class SimMcsLock {
 public:
  explicit SimMcsLock(SimEngine& engine) : engine_(engine), tail_(engine) {}

  // Each Lock() call allocates its own queue node and returns its id; pass
  // the id to Unlock (per-acquisition state cannot live in the lock: many
  // vthreads hold/wait concurrently).
  SimTask<std::uint64_t> Lock() {
    auto node = std::make_shared<Node>(engine_);
    const std::uint64_t id = reinterpret_cast<std::uint64_t>(node.get());
    nodes_[id] = node;
    const std::uint64_t pred_id = co_await tail_.Exchange(id);
    if (pred_id != 0) {
      Node* pred = nodes_.at(pred_id).get();
      pred->next_id = id;
      while (true) {
        const std::uint64_t v = co_await node->granted.SpinUntil(
            [](std::uint64_t g) { return g == 1; });
        if (v == 1) {
          break;
        }
      }
    }
    co_return id;
  }

  SimTask<> Unlock(std::uint64_t id) {
    Node* node = nodes_.at(id).get();
    if (node->next_id == 0) {
      const std::uint64_t swapped = co_await tail_.CompareExchange(id, 0);
      if (swapped == 1) {
        nodes_.erase(id);
        co_return;
      }
      // Successor is mid-enqueue; in the single-threaded simulation the link
      // is published before any later event runs, so it is visible now.
    }
    const std::uint64_t next_id = node->next_id;
    Node* next = nodes_.at(next_id).get();
    co_await next->granted.Store(1);
    nodes_.erase(id);
  }

 private:
  struct Node {
    explicit Node(SimEngine& engine) : granted(engine) {}
    SimWord granted;
    std::uint64_t next_id = 0;
  };

  SimEngine& engine_;
  SimWord tail_;
  std::map<std::uint64_t, std::shared_ptr<Node>> nodes_;
};

// --- CNA (compact NUMA-aware) lock ---------------------------------------------
// MCS variant: at unlock the holder searches the main queue for a same-socket
// successor, parking skipped remote waiters on a secondary queue that is
// spliced back after a local-handoff budget. Completes the A1 design space
// (centralized / FIFO queue / reordering queue / CNA).

class SimCnaLock {
 public:
  static constexpr std::uint32_t kLocalHandoffLimit = 64;

  explicit SimCnaLock(SimEngine& engine) : engine_(engine), tail_(engine) {}

  SimTask<std::uint64_t> Lock() {
    auto node = std::make_shared<Node>(engine_, engine_.current_cpu(),
                                       engine_.current_socket());
    const std::uint64_t id = reinterpret_cast<std::uint64_t>(node.get());
    nodes_[id] = node;
    const std::uint64_t pred_id = co_await tail_.Exchange(id);
    if (pred_id != 0) {
      nodes_.at(pred_id)->next_id = id;
      while (true) {
        const std::uint64_t g = co_await node->granted.SpinUntil(
            [](std::uint64_t v) { return v == 1; });
        if (g == 1) {
          break;
        }
      }
    }
    co_return id;
  }

  SimTask<> Unlock(std::uint64_t id) {
    Node* node = nodes_.at(id).get();
    std::uint64_t succ_id = node->next_id;
    if (succ_id == 0) {
      if (!node->secondary.empty()) {
        // Try to leave the secondary chain as the new queue.
        const std::uint64_t new_tail = node->secondary.back();
        const std::uint64_t swapped = co_await tail_.CompareExchange(id, new_tail);
        if (swapped == 1) {
          co_await GrantChain(node->secondary, /*tail_next=*/0);
          nodes_.erase(id);
          co_return;
        }
        succ_id = node->next_id;  // a waiter linked in meanwhile
      } else {
        const std::uint64_t swapped = co_await tail_.CompareExchange(id, 0);
        if (swapped == 1) {
          nodes_.erase(id);
          co_return;
        }
        succ_id = node->next_id;
      }
    }

    // Fairness: drain the secondary queue after the handoff budget, splicing
    // it in front of the main-queue successor.
    if (node->local_handoffs >= kLocalHandoffLimit && !node->secondary.empty()) {
      co_await GrantChain(node->secondary, /*tail_next=*/succ_id);
      nodes_.erase(id);
      co_return;
    }

    // Search the main queue for a same-socket successor; nodes we hop over
    // are detached onto the secondary queue (they are unreachable from the
    // winner's chain otherwise).
    std::vector<std::uint64_t> newly_skipped;
    std::uint64_t scan = succ_id;
    bool found_local = false;
    while (scan != 0) {
      Node* candidate = nodes_.at(scan).get();
      if (candidate->socket == node->socket) {
        found_local = true;
        break;
      }
      if (candidate->next_id == 0) {
        break;  // cannot safely detach the tail
      }
      newly_skipped.push_back(scan);
      scan = candidate->next_id;
    }
    if (found_local) {
      Node* winner = nodes_.at(scan).get();
      winner->secondary = std::move(node->secondary);
      for (std::uint64_t skipped_id : newly_skipped) {
        winner->secondary.push_back(skipped_id);
      }
      winner->local_handoffs = node->local_handoffs + 1;
      co_await winner->granted.Store(1);
      nodes_.erase(id);
      co_return;
    }
    // No reachable local successor: plain FIFO handoff. Nothing was
    // detached (the skipped candidates stay linked behind succ_id), so only
    // the inherited secondary travels.
    Node* successor = nodes_.at(succ_id).get();
    successor->secondary = std::move(node->secondary);
    successor->local_handoffs = node->local_handoffs;
    co_await successor->granted.Store(1);
    nodes_.erase(id);
  }

 private:
  struct Node {
    Node(SimEngine& engine, std::uint32_t c, std::uint32_t s)
        : granted(engine), cpu(c), socket(s) {}
    SimWord granted;
    std::uint32_t cpu;
    std::uint32_t socket;
    std::uint64_t next_id = 0;
    std::uint32_t local_handoffs = 0;
    std::vector<std::uint64_t> secondary;  // skipped remote waiters, in order
  };

  // Grants the first node of `chain`, re-linking the rest behind it and
  // terminating the chain with `tail_next` (0 = end of queue). Links are
  // rewritten unconditionally: detached nodes carry stale next_id values.
  SimTask<> GrantChain(const std::vector<std::uint64_t>& chain,
                       std::uint64_t tail_next) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      nodes_.at(chain[i])->next_id = chain[i + 1];
    }
    nodes_.at(chain.back())->next_id = tail_next;
    Node* head = nodes_.at(chain.front()).get();
    head->local_handoffs = 0;
    head->secondary.clear();
    co_await head->granted.Store(1);
  }

  SimEngine& engine_;
  SimWord tail_;
  std::map<std::uint64_t, std::shared_ptr<Node>> nodes_;
};

// --- ShflLock with policy hooks -----------------------------------------------

class SimShflLock {
 public:
  SimShflLock(SimEngine& engine, SimPolicy policy = SimPolicy{})
      : engine_(engine), locked_(engine), tail_line_(engine),
        policy_(std::move(policy)) {}

  SimTask<> Lock() {
    co_await ChargeTap();  // lock_acquire tap
    const std::uint32_t cpu = engine_.current_cpu();
    // Fast path: steal only when no queue exists.
    if (queue_.empty()) {
      const std::uint64_t won = co_await locked_.CompareExchange(0, 1);
      if (won == 1) {
        co_await ChargeTap();  // lock_acquired tap
        co_return;
      }
    }

    auto node = std::make_unique<WaitNode>(engine_, cpu,
                                           engine_.config().SocketOf(cpu));
    WaitNode* self = node.get();
    co_await tail_line_.Exchange(reinterpret_cast<std::uint64_t>(self));
    queue_.push_back(std::move(node));
    Shuffle();

    if (queue_.front().get() != self) {
      while (true) {
        const std::uint64_t g = co_await self->granted.SpinUntil(
            [](std::uint64_t v) { return v == 1; });
        if (g == 1) {
          break;
        }
      }
    }
    // Queue head: contend on the lock word.
    while (true) {
      const std::uint64_t v =
          co_await locked_.SpinUntil([](std::uint64_t w) { return w == 0; });
      (void)v;
      const std::uint64_t won = co_await locked_.CompareExchange(0, 1);
      if (won == 1) {
        break;
      }
    }
    // Dequeue self, promote successor.
    CONCORD_CHECK(queue_.front().get() == self);
    queue_.pop_front();
    if (!queue_.empty()) {
      co_await queue_.front()->granted.Store(1);
    }
    co_await ChargeTap();  // lock_acquired tap
  }

  SimTask<> Unlock() {
    co_await locked_.Store(0);
    co_await ChargeTap();  // lock_release tap
  }

  std::uint64_t shuffle_moves() const { return shuffle_moves_; }

 private:
  struct WaitNode {
    WaitNode(SimEngine& engine, std::uint32_t c, std::uint32_t s)
        : granted(engine), cpu(c), socket(s) {}
    SimWord granted;
    std::uint32_t cpu;
    std::uint32_t socket;
  };

  SimTask<> ChargeTap() {
    const std::uint64_t cost = policy_.TapCost(engine_.config());
    if (cost > 0) {
      co_await engine_.Delay(cost);
    }
  }

  // Logical shuffle, charged to the idle head (zero critical-path time):
  // stable-partition positions [1..n) so head-group waiters come first.
  void Shuffle() {
    if (!policy_.shuffles() || queue_.size() < 3) {
      return;
    }
    const std::uint32_t head_socket = queue_.front()->socket;
    const std::uint32_t head_cpu = queue_.front()->cpu;
    std::deque<std::unique_ptr<WaitNode>> grouped;
    std::deque<std::unique_ptr<WaitNode>> rest;
    grouped.push_back(std::move(queue_.front()));
    queue_.pop_front();
    // The last node may be mid-enqueue in the real lock; leave it in place.
    std::unique_ptr<WaitNode> last = std::move(queue_.back());
    queue_.pop_back();
    for (auto& node : queue_) {
      if (policy_.CmpGroup(head_socket, head_cpu, node->socket, node->cpu)) {
        if (grouped.size() > 1 && !rest.empty()) {
          ++shuffle_moves_;
        }
        grouped.push_back(std::move(node));
      } else {
        rest.push_back(std::move(node));
      }
    }
    queue_.clear();
    for (auto& node : grouped) {
      queue_.push_back(std::move(node));
    }
    for (auto& node : rest) {
      queue_.push_back(std::move(node));
    }
    queue_.push_back(std::move(last));
  }

  SimEngine& engine_;
  SimWord locked_;
  SimWord tail_line_;  // models the tail-exchange cache line
  SimPolicy policy_;
  std::deque<std::unique_ptr<WaitNode>> queue_;
  std::uint64_t shuffle_moves_ = 0;
};

// --- readers-writer locks -----------------------------------------------------

// Centralized ("Stock") readers-writer lock: one state word, reader CASes.
class SimNeutralRwLock {
 public:
  explicit SimNeutralRwLock(SimEngine& engine) : engine_(engine), state_(engine) {}

  static constexpr std::uint64_t kWriter = 1ull << 62;

  SimTask<> ReadLock() {
    while (true) {
      const std::uint64_t v = co_await state_.Load();
      if ((v & kWriter) == 0) {
        const std::uint64_t won = co_await state_.CompareExchange(v, v + 1);
        if (won == 1) {
          co_return;
        }
        continue;  // lost the race; retry immediately (line already hot)
      }
      co_await state_.SpinUntil(
          [](std::uint64_t w) { return (w & kWriter) == 0; });
    }
  }

  SimTask<> ReadUnlock() {
    co_await state_.FetchAdd(static_cast<std::uint64_t>(-1));
  }

  SimTask<> WriteLock() {
    while (true) {
      const std::uint64_t v = co_await state_.Load();
      if (v == 0) {
        const std::uint64_t won = co_await state_.CompareExchange(0, kWriter);
        if (won == 1) {
          co_return;
        }
        continue;
      }
      co_await state_.SpinUntil([](std::uint64_t w) { return w == 0; });
    }
  }

  SimTask<> WriteUnlock() { co_await state_.Store(0); }

 private:
  SimEngine& engine_;
  SimWord state_;
};

// BRAVO over the neutral lock, with an optional Concord rw_mode policy.
class SimBravoLock {
 public:
  // rw_mode decision: nullptr => always reader-bias (precompiled BRAVO).
  // A Concord policy charges HookCost per ReadLock and runs `mode_program`.
  SimBravoLock(SimEngine& engine, SimPolicy policy = SimPolicy{},
               const Program* mode_program = nullptr, bool adaptive = true)
      : engine_(engine), underlying_(engine), bias_(engine, 1),
        policy_(std::move(policy)), mode_program_(mode_program),
        adaptive_(adaptive) {
    slots_.reserve(engine.config().TotalCpus());
    for (std::uint32_t i = 0; i < engine.config().TotalCpus(); ++i) {
      slots_.push_back(std::make_unique<SimWord>(engine));
    }
  }

  // Tokens returned by ReadLock and consumed by ReadUnlock (per-acquisition
  // state cannot live in the lock).
  static constexpr std::uint64_t kTokenUnderlying = ~0ull;
  static constexpr std::uint64_t kTokenWriterOnly = ~0ull - 1;

  SimTask<std::uint64_t> ReadLock() {
    std::uint32_t mode = static_cast<std::uint32_t>(RwMode::kReaderBias);
    if (policy_.attached()) {
      const std::uint64_t cost =
          policy_.HookCost(engine_.config(), mode_program_);
      if (cost > 0) {
        co_await engine_.Delay(cost);
      }
      if (policy_.backend == SimPolicy::Backend::kBpf &&
          mode_program_ != nullptr) {
        RwModeCtx ctx{0};
        mode = static_cast<std::uint32_t>(BpfVm::Run(*mode_program_, &ctx));
      }
    }
    const std::uint32_t cpu = engine_.current_cpu();
    if (mode == static_cast<std::uint32_t>(RwMode::kReaderBias)) {
      std::uint64_t biased = co_await bias_.Load();
      if (biased == 0 && adaptive_ && engine_.now() >= inhibit_until_) {
        // Readers re-arm the bias once the inhibit window expires (BRAVO's
        // rule; re-arming at WriteUnlock alone leaves the lock neutral for
        // whole write-free stretches).
        co_await bias_.Store(1);
        biased = 1;
      }
      if (biased == 1) {
        const std::uint64_t won = co_await slots_[cpu]->CompareExchange(0, 1);
        if (won == 1) {
          const std::uint64_t recheck = co_await bias_.Load();
          if (recheck == 1) {
            co_return cpu;  // fast-path token = slot index
          }
          co_await slots_[cpu]->Store(0);
        }
      }
    }
    if (mode == static_cast<std::uint32_t>(RwMode::kWriterOnly)) {
      co_await underlying_.WriteLock();
      co_return kTokenWriterOnly;
    }
    co_await underlying_.ReadLock();
    co_return kTokenUnderlying;
  }

  SimTask<> ReadUnlock(std::uint64_t token) {
    if (token == kTokenWriterOnly) {
      co_await underlying_.WriteUnlock();
      co_return;
    }
    if (token == kTokenUnderlying) {
      co_await underlying_.ReadUnlock();
      co_return;
    }
    co_await slots_[token]->Store(0);
  }

  SimTask<> WriteLock() {
    co_await underlying_.WriteLock();
    const std::uint64_t biased = co_await bias_.Load();
    if (biased == 1) {
      const std::uint64_t revoke_start = engine_.now();
      co_await bias_.Store(0);
      for (auto& slot : slots_) {
        while (true) {
          const std::uint64_t v = co_await slot->SpinUntil(
              [](std::uint64_t s) { return s == 0; });
          if (v == 0) {
            break;
          }
        }
      }
      ++revocations_;
      // BRAVO's adaptive rule: inhibit re-arming for N x revocation cost.
      const std::uint64_t cost = engine_.now() - revoke_start;
      inhibit_until_ = engine_.now() + cost * 9;
    }
  }

  SimTask<> WriteUnlock() {
    if (!adaptive_) {
      co_await bias_.Store(1);  // fixed-bias ablation: always re-arm
    }
    co_await underlying_.WriteUnlock();
  }

  std::uint64_t revocations() const { return revocations_; }

 private:
  SimEngine& engine_;
  SimNeutralRwLock underlying_;
  SimWord bias_;
  std::vector<std::unique_ptr<SimWord>> slots_;
  SimPolicy policy_;
  const Program* mode_program_;
  const bool adaptive_;
  std::uint64_t revocations_ = 0;
  std::uint64_t inhibit_until_ = 0;
};

}  // namespace concord

#endif  // SRC_SIM_LOCKS_H_
