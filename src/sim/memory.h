// Simulated shared memory: one cache line per SimWord.
//
// Every operation is an awaitable that charges coherence-realistic latency:
//   - hit (requester owns / shares the line):        local_hit_ns
//   - miss served by a sibling core's cache:         same_socket_ns
//   - miss served across the interconnect:           remote_ns
// Misses and all mutations serialize on the line (`busy_until_`), which is
// what makes centralized locks collapse at high core counts in the
// simulation, exactly as on hardware.
//
// Spinning is modeled the way hardware behaves, not the way software is
// written: a spin loop on real silicon parks on its local cache copy until
// an invalidation arrives. SpinUntil therefore suspends the vthread on a
// waiter list and wakes it (charging the reload miss) when a mutation makes
// its predicate true — no per-iteration events.

#ifndef SRC_SIM_MEMORY_H_
#define SRC_SIM_MEMORY_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/engine.h"

namespace concord {

class SimWord {
 public:
  SimWord(SimEngine& engine, std::uint64_t initial = 0)
      : engine_(engine), value_(initial) {}
  SimWord(const SimWord&) = delete;
  SimWord& operator=(const SimWord&) = delete;

  // Unsimulated peek for harness/statistics code (no cost, no wakeups).
  std::uint64_t PeekValue() const { return value_; }
  void PokeValue(std::uint64_t v) { value_ = v; }

  // --- awaitable operations ------------------------------------------------
  // All awaitables resolve after the modeled latency; mutations apply at
  // completion time, in line-serialization order.

  auto Load() { return OpAwaiter(this, OpKind::kLoad, 0, 0); }
  auto Store(std::uint64_t v) { return OpAwaiter(this, OpKind::kStore, v, 0); }
  auto FetchAdd(std::uint64_t delta) {
    return OpAwaiter(this, OpKind::kFetchAdd, delta, 0);
  }
  auto Exchange(std::uint64_t v) {
    return OpAwaiter(this, OpKind::kExchange, v, 0);
  }
  // Resolves to 1 on success (old value == expected), else 0.
  auto CompareExchange(std::uint64_t expected, std::uint64_t desired) {
    return OpAwaiter(this, OpKind::kCas, desired, expected);
  }

  // Suspends until pred(value) holds; resolves to the satisfying value.
  // If it already holds, costs one load.
  auto SpinUntil(std::function<bool(std::uint64_t)> pred) {
    return SpinAwaiter(this, std::move(pred));
  }

 private:
  enum class OpKind { kLoad, kStore, kFetchAdd, kExchange, kCas };

  struct Waiter {
    std::coroutine_handle<> handle;
    std::uint32_t cpu;
    std::function<bool(std::uint64_t)> pred;
    std::uint64_t observed = 0;  // value that satisfied pred
  };

  // Latency for an access by `cpu`, and ownership-state update.
  std::uint64_t AccessCost(std::uint32_t cpu, bool is_write) {
    const SimConfig& config = engine_.config();
    const std::uint32_t socket = config.SocketOf(cpu);
    const std::uint32_t socket_bit = 1u << (socket % 32);
    std::uint64_t cost;
    if (!is_write) {
      if (owner_cpu_ == static_cast<std::int64_t>(cpu) ||
          (sharers_ & socket_bit) != 0) {
        cost = config.local_hit_ns;
      } else if (owner_socket_ == static_cast<std::int64_t>(socket)) {
        cost = config.same_socket_ns;
      } else {
        cost = config.remote_ns;
      }
      sharers_ |= socket_bit;
    } else {
      if (owner_cpu_ == static_cast<std::int64_t>(cpu) && sharers_ == socket_bit) {
        cost = config.local_hit_ns;
      } else if (owner_socket_ == static_cast<std::int64_t>(socket) &&
                 (sharers_ & ~socket_bit) == 0) {
        cost = config.same_socket_ns;
      } else {
        cost = config.remote_ns;  // invalidate other sockets + fetch
      }
      owner_cpu_ = cpu;
      owner_socket_ = socket;
      sharers_ = socket_bit;
    }
    return cost;
  }

  // Applies a mutation now (completion time) and wakes satisfied spinners.
  // Every registered spinner refetches the invalidated line (that is what
  // spinning hardware does), so each one — woken or not — adds a line
  // transfer to the serial distribution chain. This is the mechanism that
  // makes centralized spin locks collapse with waiter count in the
  // simulation: the handoff reload queues behind O(waiters) refetches.
  void ApplyAndWake(std::uint64_t new_value) {
    value_ = new_value;
    if (waiters_.empty()) {
      return;
    }
    std::vector<Waiter> keep;
    keep.reserve(waiters_.size());
    const SimConfig& config = engine_.config();
    const std::uint32_t writer_socket = engine_.current_socket();
    std::uint64_t stagger = 0;
    for (Waiter& waiter : waiters_) {
      // Refetch by this spinner: cheap if it sits on the writer's socket —
      // this distance term is where NUMA-aware handoff policies win.
      stagger += config.SocketOf(waiter.cpu) == writer_socket
                     ? config.same_socket_ns
                     : config.remote_ns;
      if (waiter.pred(value_)) {
        engine_.ScheduleAt(engine_.now() + stagger, waiter.cpu, waiter.handle);
      } else {
        keep.push_back(std::move(waiter));
      }
    }
    waiters_ = std::move(keep);
    const std::uint64_t line_free = engine_.now() + stagger;
    if (line_free > busy_until_) {
      busy_until_ = line_free;
    }
  }

  struct OpAwaiter {
    SimWord* word;
    OpKind kind;
    std::uint64_t arg;       // store value / add delta / CAS desired
    std::uint64_t expected;  // CAS expected
    std::uint64_t result = 0;

    OpAwaiter(SimWord* w, OpKind k, std::uint64_t a, std::uint64_t e)
        : word(w), kind(k), arg(a), expected(e) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      SimEngine& engine = word->engine_;
      const std::uint32_t cpu = engine.current_cpu();
      const bool is_write = kind != OpKind::kLoad;
      const std::uint64_t cost = word->AccessCost(cpu, is_write);
      std::uint64_t start = engine.now();
      // Misses and mutations serialize on the line.
      const bool serializes = is_write || cost > engine.config().local_hit_ns;
      if (serializes && word->busy_until_ > start) {
        start = word->busy_until_;
      }
      const std::uint64_t done = start + cost;
      if (serializes) {
        word->busy_until_ = done;
      }
      // Defer the mutation to completion via a completion record: we model
      // it by scheduling a small trampoline — but since completions are
      // serialized in `busy_until_` order and the engine pops events in
      // time order, applying at resume is equivalent; OpAwaiter::await_resume
      // runs exactly at `done`.
      completion_time = done;
      engine.ScheduleAt(done, cpu, handle);
    }
    std::uint64_t await_resume() {
      switch (kind) {
        case OpKind::kLoad:
          result = word->value_;
          break;
        case OpKind::kStore:
          result = 0;
          word->ApplyAndWake(arg);
          break;
        case OpKind::kFetchAdd:
          result = word->value_;
          word->ApplyAndWake(word->value_ + arg);
          break;
        case OpKind::kExchange:
          result = word->value_;
          word->ApplyAndWake(arg);
          break;
        case OpKind::kCas:
          if (word->value_ == expected) {
            word->ApplyAndWake(arg);
            result = 1;
          } else {
            result = 0;
          }
          break;
      }
      return result;
    }

    std::uint64_t completion_time = 0;
  };

  struct SpinAwaiter {
    SimWord* word;
    std::function<bool(std::uint64_t)> pred;
    bool immediate = false;

    SpinAwaiter(SimWord* w, std::function<bool(std::uint64_t)> p)
        : word(w), pred(std::move(p)) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      SimEngine& engine = word->engine_;
      const std::uint32_t cpu = engine.current_cpu();
      if (pred(word->value_)) {
        // Satisfied already: charge one load.
        const std::uint64_t cost = word->AccessCost(cpu, /*is_write=*/false);
        engine.ScheduleAt(engine.now() + cost, cpu, handle);
        immediate = true;
        return;
      }
      word->waiters_.push_back(Waiter{handle, cpu, pred, 0});
    }
    std::uint64_t await_resume() { return word->value_; }
  };

  SimEngine& engine_;
  std::uint64_t value_;
  std::uint64_t busy_until_ = 0;
  std::int64_t owner_cpu_ = -1;
  std::int64_t owner_socket_ = -1;
  std::uint32_t sharers_ = 0;
  std::vector<Waiter> waiters_;
};

}  // namespace concord

#endif  // SRC_SIM_MEMORY_H_
