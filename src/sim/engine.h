// Discrete-event simulation engine.
//
// Why a simulator at all: the paper's evaluation machine has 8 sockets and
// 80 cores; this repository must reproduce the *shape* of 1-80-thread
// scalability curves on whatever host it builds on (including a 1-core CI
// box). The engine runs one coroutine per virtual thread in virtual time;
// all concurrency effects come from the cache-line cost model in
// src/sim/memory.h, not from host parallelism, so results are deterministic
// and host-independent.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/base/check.h"
#include "src/sim/task.h"

namespace concord {

struct SimConfig {
  std::uint32_t num_sockets = 8;
  std::uint32_t cores_per_socket = 10;

  // Cache-line cost model (nanoseconds).
  std::uint64_t local_hit_ns = 4;     // requester already owns/shares the line
  std::uint64_t same_socket_ns = 40;  // line owned by a sibling core
  std::uint64_t remote_ns = 120;      // line owned by another socket

  // Cost per interpreted BPF instruction when a Concord policy runs on a
  // simulated critical path.
  std::uint64_t bpf_insn_ns = 3;
  // Fixed hook-dispatch cost (RCU deref + indirect call) charged per
  // installed hook invocation on the critical path.
  std::uint64_t hook_dispatch_ns = 15;

  std::uint32_t TotalCpus() const { return num_sockets * cores_per_socket; }
  std::uint32_t SocketOf(std::uint32_t cpu) const {
    return (cpu / cores_per_socket) % num_sockets;
  }
};

class SimEngine {
 public:
  explicit SimEngine(SimConfig config = SimConfig{}) : config_(config) {}
  ~SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  const SimConfig& config() const { return config_; }
  std::uint64_t now() const { return now_; }
  std::uint32_t current_cpu() const { return current_cpu_; }
  std::uint32_t current_socket() const { return config_.SocketOf(current_cpu_); }

  // Spawns a root vthread pinned to `cpu`; it starts when Run() is called.
  void Spawn(std::uint32_t cpu, SimTask<> task);

  // Schedules `handle` to resume at absolute time `when` on `cpu`.
  void ScheduleAt(std::uint64_t when, std::uint32_t cpu,
                  std::coroutine_handle<> handle);

  // Runs events until the queue is empty or virtual time exceeds `until_ns`.
  void Run(std::uint64_t until_ns);

  // Awaitable: suspend the current vthread for `ns` of virtual time.
  auto Delay(std::uint64_t ns) {
    struct Awaiter {
      SimEngine* engine;
      std::uint64_t ns;
      bool await_ready() const noexcept { return ns == 0; }
      void await_suspend(std::coroutine_handle<> handle) {
        engine->ScheduleAt(engine->now_ + ns, engine->current_cpu_, handle);
      }
      void await_resume() noexcept {}
    };
    return Awaiter{this, ns};
  }

  std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    std::uint64_t when;
    std::uint64_t seq;  // tie-break for determinism
    std::uint32_t cpu;
    std::coroutine_handle<> handle;

    bool operator>(const Event& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  SimConfig config_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint32_t current_cpu_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::coroutine_handle<>> roots_;  // owned; destroyed last
};

}  // namespace concord

#endif  // SRC_SIM_ENGINE_H_
