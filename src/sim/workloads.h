// Simulated will-it-scale workload drivers for the paper's Figure 2.
//
// Each driver spins up `threads` vthreads pinned to vCPUs 0..threads-1
// (sockets fill sequentially, as will-it-scale pins) and runs the workload
// for `duration_ns` of virtual time, returning aggregate throughput. The
// flavour enums match the curves in the paper's plots.

#ifndef SRC_SIM_WORKLOADS_H_
#define SRC_SIM_WORKLOADS_H_

#include <cstdint>

#include "src/bpf/program.h"
#include "src/sim/engine.h"

namespace concord {

struct SimRunResult {
  std::uint64_t total_ops = 0;
  double ops_per_msec = 0.0;
  std::uint64_t events = 0;
};

// --- Figure 2(b): lock2 — short writer critical sections on one lock --------

enum class Lock2Flavor {
  kStockTicket,     // "Stock": ticket spinlock
  kMcs,             // extra curve: plain MCS (FIFO queue lock)
  kCna,             // extra curve: compact NUMA-aware lock
  kShflLock,        // "ShflLock": NUMA policy compiled in
  kConcordShflLock, // "Concord-ShflLock": NUMA policy via attached BPF
};

struct Lock2Params {
  std::uint32_t threads = 1;
  std::uint64_t duration_ns = 3'000'000;  // 3ms of virtual time
  std::uint64_t cs_ns = 200;              // critical-section body
  std::uint64_t think_ns = 150;           // out-of-CS work
  // Shared cache lines mutated inside the critical section. These are the
  // *protected data*: with NUMA-grouped handoffs they stay socket-local,
  // which is where hierarchical/shuffling locks actually win.
  std::uint32_t data_words = 2;
  // Used by kConcordShflLock: the verified NUMA cmp_node program.
  const Program* cmp_program = nullptr;
};

SimRunResult SimLock2(Lock2Flavor flavor, const Lock2Params& params);

// --- Figure 2(a): page_fault2 — read-mostly mmap_sem traffic -----------------

enum class PageFaultFlavor {
  kStockNeutral,    // "Stock": centralized readers-writer lock
  kBravo,           // "BRAVO": reader bias compiled in (adaptive inhibit)
  kBravoFixedBias,  // ablation: bias always re-armed (no inhibit window)
  kConcordBravo,    // "Concord-BRAVO": rw_mode decided by attached BPF
};

struct PageFaultParams {
  std::uint32_t threads = 1;
  std::uint64_t duration_ns = 3'000'000;
  std::uint64_t fault_work_ns = 800;  // allocate+zero a page under read lock
  std::uint32_t writes_per_1024 = 4;  // munmap-style write-lock fraction
  std::uint64_t write_work_ns = 1500;
  const Program* mode_program = nullptr;  // for kConcordBravo
};

SimRunResult SimPageFault(PageFaultFlavor flavor, const PageFaultParams& params);

// --- Figure 2(c): global-lock hash table — hook overhead worst case ----------

enum class HashFlavor {
  kShflLock,             // precompiled NUMA ShflLock, no hooks
  kConcordEmptyHooks,    // hooks attached, no program ("no userspace code")
  kConcordBpfProfiler,   // hooks attached running BPF tap programs
};

struct HashParams {
  std::uint32_t threads = 1;
  std::uint64_t duration_ns = 3'000'000;
  std::uint64_t op_ns = 150;  // hash-table operation under the lock
  const Program* cmp_program = nullptr;  // NUMA policy for the Concord runs
  const Program* tap_program = nullptr;  // for kConcordBpfProfiler
};

SimRunResult SimHashTable(HashFlavor flavor, const HashParams& params);

// --- Ablation A6: asymmetric multicore (AMP) ---------------------------------
// vCPUs below `fast_core_count` run at full speed; the rest execute their
// critical sections `slow_factor` times slower (big.LITTLE style). The AMP
// policy boosts fast-core waiters so handoff cycles among fast cores.

enum class AmpFlavor {
  kFifo,       // no policy: FIFO queue, slow cores gate every rotation
  kAmpPolicy,  // fast-core preference via cmp_node
};

struct AmpParams {
  std::uint32_t threads = 16;
  std::uint32_t fast_core_count = 8;  // vCPUs [0, fast) are fast
  std::uint32_t slow_factor = 4;
  std::uint64_t duration_ns = 3'000'000;
  std::uint64_t cs_ns = 300;
  std::uint64_t think_ns = 100;
};

struct AmpResult {
  SimRunResult total;
  std::uint64_t fast_ops = 0;
  std::uint64_t slow_ops = 0;
};

AmpResult SimAmp(AmpFlavor flavor, const AmpParams& params);

}  // namespace concord

#endif  // SRC_SIM_WORKLOADS_H_
