// Minimal coroutine task type with symmetric transfer.
//
// Simulated threads (vthreads) are coroutines: `SimTask F()` bodies co_await
// engine awaitables (delays, simulated memory operations) and other SimTasks
// (e.g. `co_await lock.Lock(cpu)`). Awaiting a SimTask suspends the caller
// and resumes it when the callee finishes, via symmetric transfer so deep
// call chains do not grow the host stack.

#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

namespace concord {

template <typename T>
class SimTask;

namespace sim_internal {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

template <typename T>
struct SimPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { std::terminate(); }
};

}  // namespace sim_internal

template <typename T = void>
class [[nodiscard]] SimTask {
 public:
  struct promise_type : sim_internal::SimPromiseBase<T> {
    T value{};
    SimTask get_return_object() {
      return SimTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  SimTask(SimTask&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { Destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  T await_resume() { return std::move(handle_.promise().value); }

  std::coroutine_handle<> handle() const { return handle_; }
  std::coroutine_handle<typename SimTask::promise_type> typed_handle() const {
    return handle_;
  }
  bool done() const { return handle_ == nullptr || handle_.done(); }
  // Detaches ownership (used by the engine for root tasks it tracks itself).
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] SimTask<void> {
 public:
  struct promise_type : sim_internal::SimPromiseBase<void> {
    SimTask get_return_object() {
      return SimTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  SimTask(SimTask&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { Destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) noexcept {
    handle_.promise().continuation = caller;
    return handle_;
  }
  void await_resume() {}

  std::coroutine_handle<promise_type> handle() const { return handle_; }
  bool done() const { return handle_ == nullptr || handle_.done(); }
  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace concord

#endif  // SRC_SIM_TASK_H_
