#include "src/sim/workloads.h"

#include <memory>

#include "src/base/rng.h"
#include "src/sim/locks.h"

namespace concord {
namespace {

double OpsPerMsec(std::uint64_t ops, std::uint64_t duration_ns) {
  return static_cast<double>(ops) /
         (static_cast<double>(duration_ns) / 1'000'000.0);
}

// Scatter pinning: thread t lands on socket t % num_sockets. Sequential
// filling would make FIFO queue order accidentally socket-clustered and hide
// exactly the effect NUMA policies exist for; scatter is also how the NUMA
// lock papers pin their worst-case runs.
std::uint32_t ScatterCpu(const SimConfig& config, std::uint32_t t) {
  const std::uint32_t socket = t % config.num_sockets;
  const std::uint32_t core = (t / config.num_sockets) % config.cores_per_socket;
  return socket * config.cores_per_socket + core;
}

}  // namespace

// --- lock2 -------------------------------------------------------------------

namespace {

template <typename LockT>
SimTask<> Lock2Worker(SimEngine& engine, LockT& lock, const Lock2Params& params,
                      std::uint64_t end_ns,
                      std::vector<std::unique_ptr<SimWord>>& data,
                      std::uint64_t* ops) {
  while (engine.now() < end_ns) {
    if constexpr (std::is_same_v<LockT, SimMcsLock> ||
                  std::is_same_v<LockT, SimCnaLock>) {
      const std::uint64_t token = co_await lock.Lock();
      co_await engine.Delay(params.cs_ns);
      for (auto& word : data) {
        co_await word->FetchAdd(1);  // protected data follows the holder
      }
      co_await lock.Unlock(token);
    } else {
      co_await lock.Lock();
      co_await engine.Delay(params.cs_ns);
      for (auto& word : data) {
        co_await word->FetchAdd(1);
      }
      co_await lock.Unlock();
    }
    ++*ops;
    co_await engine.Delay(params.think_ns);
  }
}

template <typename LockT>
SimRunResult RunLock2With(LockT& lock, SimEngine& engine,
                          const Lock2Params& params) {
  std::vector<std::unique_ptr<SimWord>> data;
  for (std::uint32_t i = 0; i < params.data_words; ++i) {
    data.push_back(std::make_unique<SimWord>(engine));
  }
  std::vector<std::uint64_t> ops(params.threads, 0);
  for (std::uint32_t t = 0; t < params.threads; ++t) {
    engine.Spawn(ScatterCpu(engine.config(), t),
                 Lock2Worker(engine, lock, params, params.duration_ns, data,
                             &ops[t]));
  }
  engine.Run(params.duration_ns);
  SimRunResult result;
  for (std::uint64_t n : ops) {
    result.total_ops += n;
  }
  result.ops_per_msec = OpsPerMsec(result.total_ops, params.duration_ns);
  result.events = engine.events_processed();
  return result;
}

}  // namespace

SimRunResult SimLock2(Lock2Flavor flavor, const Lock2Params& params) {
  SimEngine engine;
  switch (flavor) {
    case Lock2Flavor::kStockTicket: {
      SimTicketLock lock(engine);
      return RunLock2With(lock, engine, params);
    }
    case Lock2Flavor::kMcs: {
      SimMcsLock lock(engine);
      return RunLock2With(lock, engine, params);
    }
    case Lock2Flavor::kCna: {
      SimCnaLock lock(engine);
      return RunLock2With(lock, engine, params);
    }
    case Lock2Flavor::kShflLock: {
      SimShflLock lock(engine, SimPolicy::Builtin());
      return RunLock2With(lock, engine, params);
    }
    case Lock2Flavor::kConcordShflLock: {
      SimShflLock lock(engine, SimPolicy::Bpf(params.cmp_program));
      return RunLock2With(lock, engine, params);
    }
  }
  return SimRunResult{};
}

// --- page_fault2 -------------------------------------------------------------

namespace {

// Deterministic write pacing: accumulate the write budget per op so every
// flavour sees writes at identical op indices (no RNG phase noise).
struct WritePacer {
  std::uint32_t writes_per_1024;
  std::uint32_t acc;
  bool Next() {
    acc += writes_per_1024;
    if (acc >= 1024) {
      acc -= 1024;
      return true;
    }
    return false;
  }
};

SimTask<> PageFaultNeutralWorker(SimEngine& engine, SimNeutralRwLock& sem,
                                 const PageFaultParams& params,
                                 std::uint64_t seed, std::uint64_t* ops) {
  WritePacer pacer{params.writes_per_1024,
                   static_cast<std::uint32_t>(seed * 97 % 1024)};
  while (engine.now() < params.duration_ns) {
    if (pacer.Next()) {
      co_await sem.WriteLock();
      co_await engine.Delay(params.write_work_ns);
      co_await sem.WriteUnlock();
    } else {
      co_await sem.ReadLock();
      co_await engine.Delay(params.fault_work_ns);
      co_await sem.ReadUnlock();
    }
    ++*ops;
  }
}

SimTask<> PageFaultBravoWorker(SimEngine& engine, SimBravoLock& sem,
                               const PageFaultParams& params, std::uint64_t seed,
                               std::uint64_t* ops) {
  WritePacer pacer{params.writes_per_1024,
                   static_cast<std::uint32_t>(seed * 97 % 1024)};
  while (engine.now() < params.duration_ns) {
    if (pacer.Next()) {
      co_await sem.WriteLock();
      co_await engine.Delay(params.write_work_ns);
      co_await sem.WriteUnlock();
    } else {
      const std::uint64_t token = co_await sem.ReadLock();
      co_await engine.Delay(params.fault_work_ns);
      co_await sem.ReadUnlock(token);
    }
    ++*ops;
  }
}

}  // namespace

SimRunResult SimPageFault(PageFaultFlavor flavor, const PageFaultParams& params) {
  SimEngine engine;
  std::vector<std::uint64_t> ops(params.threads, 0);
  std::unique_ptr<SimNeutralRwLock> neutral;
  std::unique_ptr<SimBravoLock> bravo;

  switch (flavor) {
    case PageFaultFlavor::kStockNeutral:
      neutral = std::make_unique<SimNeutralRwLock>(engine);
      break;
    case PageFaultFlavor::kBravo:
      bravo = std::make_unique<SimBravoLock>(engine, SimPolicy::Builtin());
      break;
    case PageFaultFlavor::kBravoFixedBias:
      bravo = std::make_unique<SimBravoLock>(engine, SimPolicy::Builtin(),
                                             nullptr, /*adaptive=*/false);
      break;
    case PageFaultFlavor::kConcordBravo: {
      SimPolicy policy;
      policy.backend = SimPolicy::Backend::kBpf;
      bravo = std::make_unique<SimBravoLock>(engine, policy, params.mode_program);
      break;
    }
  }

  for (std::uint32_t t = 0; t < params.threads; ++t) {
    const std::uint32_t cpu = ScatterCpu(engine.config(), t);
    if (neutral != nullptr) {
      engine.Spawn(cpu, PageFaultNeutralWorker(engine, *neutral, params, t + 1,
                                               &ops[t]));
    } else {
      engine.Spawn(cpu,
                   PageFaultBravoWorker(engine, *bravo, params, t + 1, &ops[t]));
    }
  }
  engine.Run(params.duration_ns);

  SimRunResult result;
  for (std::uint64_t n : ops) {
    result.total_ops += n;
  }
  result.ops_per_msec = OpsPerMsec(result.total_ops, params.duration_ns);
  result.events = engine.events_processed();
  return result;
}

// --- hash table ----------------------------------------------------------------

namespace {

SimTask<> HashWorker(SimEngine& engine, SimShflLock& lock,
                     const HashParams& params, std::uint64_t* ops) {
  while (engine.now() < params.duration_ns) {
    co_await lock.Lock();
    co_await engine.Delay(params.op_ns);
    co_await lock.Unlock();
    ++*ops;
  }
}

}  // namespace

SimRunResult SimHashTable(HashFlavor flavor, const HashParams& params) {
  SimEngine engine;
  SimPolicy policy;
  switch (flavor) {
    case HashFlavor::kShflLock:
      policy = SimPolicy::Builtin();
      break;
    case HashFlavor::kConcordEmptyHooks:
      policy = SimPolicy::Native(/*with_taps=*/true);
      break;
    case HashFlavor::kConcordBpfProfiler:
      policy = SimPolicy::Bpf(params.cmp_program, /*with_taps=*/true,
                              params.tap_program);
      break;
  }
  SimShflLock lock(engine, policy);

  std::vector<std::uint64_t> ops(params.threads, 0);
  for (std::uint32_t t = 0; t < params.threads; ++t) {
    engine.Spawn(ScatterCpu(engine.config(), t),
                 HashWorker(engine, lock, params, &ops[t]));
  }
  engine.Run(params.duration_ns);

  SimRunResult result;
  for (std::uint64_t n : ops) {
    result.total_ops += n;
  }
  result.ops_per_msec = OpsPerMsec(result.total_ops, params.duration_ns);
  result.events = engine.events_processed();
  return result;
}

// --- AMP -----------------------------------------------------------------------

namespace {

SimTask<> AmpWorker(SimEngine& engine, SimShflLock& lock, const AmpParams& params,
                    std::uint32_t cpu, std::uint64_t* ops) {
  const bool fast = cpu < params.fast_core_count;
  const std::uint64_t cs =
      fast ? params.cs_ns : params.cs_ns * params.slow_factor;
  const std::uint64_t think =
      fast ? params.think_ns : params.think_ns * params.slow_factor;
  while (engine.now() < params.duration_ns) {
    co_await lock.Lock();
    co_await engine.Delay(cs);
    co_await lock.Unlock();
    ++*ops;
    co_await engine.Delay(think);
  }
}

}  // namespace

AmpResult SimAmp(AmpFlavor flavor, const AmpParams& params) {
  SimEngine engine;
  SimPolicy policy;
  if (flavor == AmpFlavor::kAmpPolicy) {
    policy = SimPolicy::Builtin();
    policy.decision = SimPolicy::Decision::kFastCore;
    policy.fast_core_count = params.fast_core_count;
  }
  SimShflLock lock(engine, policy);

  std::vector<std::uint64_t> ops(params.threads, 0);
  for (std::uint32_t t = 0; t < params.threads; ++t) {
    // Threads pinned 1:1 onto vCPUs 0..threads-1: the low ones are fast.
    engine.Spawn(t % engine.config().TotalCpus(),
                 AmpWorker(engine, lock, params, t, &ops[t]));
  }
  engine.Run(params.duration_ns);

  AmpResult result;
  for (std::uint32_t t = 0; t < params.threads; ++t) {
    result.total.total_ops += ops[t];
    if (t < params.fast_core_count) {
      result.fast_ops += ops[t];
    } else {
      result.slow_ops += ops[t];
    }
  }
  result.total.ops_per_msec =
      static_cast<double>(result.total.total_ops) /
      (static_cast<double>(params.duration_ns) / 1'000'000.0);
  result.total.events = engine.events_processed();
  return result;
}

}  // namespace concord
